#!/usr/bin/env python
"""Federated routability estimation across data-owning clients.

This example reproduces the core scenario of the paper at a small scale:
three design companies (clients), each owning designs from a different
benchmark suite, collaboratively train one FLNet routability estimator with
FedProx without ever sharing their layouts.  The script compares:

* each client's locally trained model (the traditional setting),
* the FedProx generalized model (privacy-preserving collaboration), and
* centralized training on pooled data (the privacy-free upper bound).

Run with:  python examples/federated_routability.py
"""

from __future__ import annotations

from repro.data import CorpusConfig
from repro.data.clients import ClientSpec, CorpusBuilder
from repro.experiments import format_rows
from repro.fl import (
    Centralized,
    FedProx,
    FederatedClient,
    FLConfig,
    LocalOnly,
    SeededModelFactory,
    evaluate_result,
)
from repro.models import FLNet

#: Three companies, one benchmark suite each (client heterogeneity).
CLIENT_SPECS = (
    ClientSpec(1, "itc99", train_designs=2, test_designs=1, paper_train_placements=12, paper_test_placements=6),
    ClientSpec(2, "iscas89", train_designs=2, test_designs=1, paper_train_placements=12, paper_test_placements=6),
    ClientSpec(3, "iwls05", train_designs=2, test_designs=1, paper_train_placements=12, paper_test_placements=6),
)

CORPUS = CorpusConfig(
    grid_width=16,
    grid_height=16,
    placement_scale=0.5,
    min_placements_per_design=3,
    base_seed=11,
)

FL = FLConfig(
    rounds=4,
    local_steps=6,
    finetune_steps=20,
    learning_rate=2e-3,
    batch_size=4,
    proximal_mu=1e-4,
)


def main() -> None:
    print("Synthesizing per-client data (each client = one benchmark suite)...")
    builder = CorpusBuilder(CORPUS)
    client_data = builder.build_all(CLIENT_SPECS)
    for data in client_data:
        print(
            f"  client {data.client_id} ({data.spec.suite:>8}): "
            f"{data.num_train_samples} train / {data.num_test_samples} test placements"
        )

    channels = len(CORPUS.features)
    factory = SeededModelFactory(lambda seed: FLNet(channels, seed=seed), base_seed=0)
    clients = [FederatedClient.from_client_data(data, factory, FL) for data in client_data]

    rows = []
    for name, algorithm_cls in (("local", LocalOnly), ("fedprox", FedProx), ("centralized", Centralized)):
        print(f"Running {name} training...")
        training = algorithm_cls(clients, factory, FL).run()
        rows.append(evaluate_result(training, clients))

    print()
    print(format_rows(rows, title="Per-client ROC AUC (local vs FedProx vs centralized)"))
    local, fedprox, central = (row.average_auc for row in rows)
    print()
    print(f"Average AUC — local: {local:.3f}, FedProx: {fedprox:.3f}, centralized: {central:.3f}")
    print(
        "FedProx lets the clients benefit from each other's data without sharing it; "
        "centralized training is the reference upper bound that requires giving the data up."
    )


if __name__ == "__main__":
    main()
