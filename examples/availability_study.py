#!/usr/bin/env python
"""Availability, stragglers, and round policies: a client-population study.

Real cross-device federated deployments never see their full client
population: devices come and go (availability), take wildly different times
to report (stragglers), and the server has to decide what to do about both
(round policy).  This walkthrough uses the scheduling subsystem to quantify
those effects on the smoke-scale routability corpus:

1. **Partial participation** — FedAvg with uniform and weighted cohort
   sampling at several participation fractions, next to full participation.
2. **Availability models** — always-on vs. Bernoulli dropout vs. day/night
   duty cycles, and what they do to cohort composition.
3. **Round policies under heavy-tail stragglers** — the synchronous barrier
   vs. a deadline cutoff with over-selection vs. FedBuff-style buffered
   asynchronous aggregation, compared on *simulated wall-clock time*
   (the virtual clock) and accuracy.

Everything is seeded: re-running prints identical cohorts, drops, and
simulated times.

Run with:  python examples/availability_study.py
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

# Allow running straight from a source checkout: python examples/availability_study.py
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import ExperimentRunner, smoke  # noqa: E402


def run(config):
    """One seeded FedAvg run; returns its AlgorithmOutcome."""
    return ExperimentRunner(config).run(["fedavg"]).outcomes[0]


def base_config(rounds: int = 4):
    config = smoke("flnet")
    return replace(config, fl=replace(config.fl, rounds=rounds))


def participation_study() -> None:
    print("=" * 72)
    print("1. Partial participation (4 rounds, 3 clients)")
    print("=" * 72)
    print(f"{'setting':<28}{'selected':>9}{'arrived':>9}{'avg AUC':>9}")
    full = run(base_config())
    print(f"{'full participation':<28}{'12':>9}{'12':>9}{full.evaluation.average_auc:>9.3f}")
    for sampler in ("uniform", "weighted"):
        for fraction in (0.34, 0.67):
            outcome = run(
                base_config().with_scheduling(participation=fraction, sampler=sampler)
            )
            sched = outcome.scheduling
            label = f"{sampler} sampler, C={fraction}"
            print(
                f"{label:<28}{sched.total_selected:>9d}{sched.total_arrived:>9d}"
                f"{outcome.evaluation.average_auc:>9.3f}"
            )
    print()


def availability_study() -> None:
    print("=" * 72)
    print("2. Availability models (uniform C=0.67 sampling, lognormal stragglers)")
    print("=" * 72)
    print(f"{'availability':<28}{'selected':>9}{'arrived':>9}{'sim time':>12}{'avg AUC':>9}")
    for availability, rate in (("always", 0.9), ("bernoulli", 0.6), ("daynight", 0.5)):
        outcome = run(
            base_config().with_scheduling(
                participation=0.67,
                availability=availability,
                availability_rate=rate,
                straggler_model="lognormal",
            )
        )
        sched = outcome.scheduling
        label = f"{availability} (rate {rate})"
        print(
            f"{label:<28}{sched.total_selected:>9d}{sched.total_arrived:>9d}"
            f"{sched.simulated_seconds:>10,.1f} s{outcome.evaluation.average_auc:>9.3f}"
        )
    print()


def round_policy_study() -> None:
    print("=" * 72)
    print("3. Round policies under heavy-tail (Pareto) stragglers")
    print("=" * 72)
    policies = {
        "sync (barrier)": dict(round_policy="sync"),
        "deadline 12s, oversel 1.5": dict(
            round_policy="deadline", deadline=12.0, over_selection=1.5
        ),
        "fedbuff, buffer 2": dict(round_policy="fedbuff", buffer_size=2),
    }
    print(
        f"{'policy':<28}{'arrived':>9}{'dropped':>9}{'sim time':>12}"
        f"{'staleness':>10}{'avg AUC':>9}"
    )
    for label, options in policies.items():
        outcome = run(
            base_config(rounds=6).with_scheduling(
                clients_per_round=2, straggler_model="heavytail", **options
            )
        )
        sched = outcome.scheduling
        staleness = f"{sched.mean_staleness:.2f}" if sched.policy == "fedbuff" else "—"
        print(
            f"{label:<28}{sched.total_arrived:>9d}{sched.total_dropped:>9d}"
            f"{sched.simulated_seconds:>10,.1f} s{staleness:>10}"
            f"{outcome.evaluation.average_auc:>9.3f}"
        )
    print()
    print(
        "The synchronous barrier pays for every straggler; the deadline policy\n"
        "trades a few dropped updates for a bounded schedule, and fedbuff keeps\n"
        "aggregating stale-but-useful updates without any barrier at all."
    )


def main() -> None:
    participation_study()
    availability_study()
    round_policy_study()


if __name__ == "__main__":
    main()
