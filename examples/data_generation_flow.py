#!/usr/bin/env python
"""Inspecting the synthetic physical-design flow.

This example exercises the EDA substrate on its own (no machine learning):
it generates one design per benchmark-suite style, places each one, runs the
global-routing congestion model and the DRC labeler, and prints the summary
statistics that show how the four suites differ — the client-level data
heterogeneity the paper's federated-learning experiments are built on.

Run with:  python examples/data_generation_flow.py
"""

from __future__ import annotations

import numpy as np

from repro.eda import (
    DrcHotspotLabeler,
    PlacementConfig,
    Placer,
    all_maps,
    estimate_congestion,
    generate_design,
    suite_names,
)

GRID = 32


def describe_suite(suite: str, seed: int) -> dict:
    """Run the full flow for one suite and collect summary statistics."""
    design = generate_design(suite, f"{suite}_demo", seed=seed)
    netlist = design.netlist

    placer = Placer()
    config = PlacementConfig(
        grid_width=GRID,
        grid_height=GRID,
        utilization=float(np.mean(design.style.utilization_range)),
        seed=seed,
    )
    placement = placer.place(design, config)

    analysis = all_maps(placement)
    congestion = estimate_congestion(placement, precomputed_maps=analysis)
    drc = DrcHotspotLabeler(label_seed=0).label(placement, precomputed_maps=analysis)

    return {
        "suite": design.style.display_name,
        "cells": netlist.num_cells,
        "nets": netlist.num_nets,
        "macros": netlist.num_macros,
        "avg_net_degree": netlist.average_net_degree(),
        "die_um": f"{placement.die_width_um:.0f}x{placement.die_height_um:.0f}",
        "utilization": placement.utilization_achieved(),
        "peak_congestion": float(congestion["congestion"].max()),
        "overflow_bins": int((congestion["overflow"] > 0).sum()),
        "hotspot_fraction": drc.hotspot_fraction,
    }


def main() -> None:
    rows = [describe_suite(suite, seed=42 + i) for i, suite in enumerate(suite_names())]

    header = (
        f"{'Suite':<10}{'Cells':>7}{'Nets':>7}{'Macros':>8}{'AvgDeg':>8}"
        f"{'Die (um)':>12}{'Util':>7}{'PeakCong':>10}{'OvflBins':>10}{'Hotspot%':>10}"
    )
    print("Synthetic flow summary, one design per benchmark-suite style")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['suite']:<10}{row['cells']:>7}{row['nets']:>7}{row['macros']:>8}"
            f"{row['avg_net_degree']:>8.2f}{row['die_um']:>12}{row['utilization']:>7.2f}"
            f"{row['peak_congestion']:>10.2f}{row['overflow_bins']:>10}"
            f"{100 * row['hotspot_fraction']:>9.1f}%"
        )
    print()
    print(
        "The systematic differences between the rows (size, macro count, fanout, "
        "utilization, congestion profile) are what make the 9 clients of Table 2 "
        "statistically heterogeneous."
    )


if __name__ == "__main__":
    main()
