#!/usr/bin/env python
"""Quickstart: train a routability estimator on one synthetic design.

This example walks through the whole single-machine pipeline of the library
in a couple of minutes:

1. generate a synthetic design in the style of a public benchmark suite,
2. run the placer several times to get multiple placement solutions,
3. extract routability features and ground-truth DRC hotspot labels,
4. train FLNet on a few placements and evaluate ROC AUC on held-out ones.

Run with:  python examples/quickstart.py

Works from a fresh checkout: if the ``repro`` package is not installed
(``pip install -e .``), the repository's ``src/`` directory is put on the
path automatically.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    import repro  # noqa: F401 - probing for an installed package
except ImportError:  # fresh checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.data import DataLoader, PlacementSample, RoutabilityDataset
from repro.eda import DrcHotspotLabeler, all_maps, generate_design, sweep_placements
from repro.features import FeatureExtractor
from repro.fl import LocalTrainer, predict_dataset
from repro.metrics import roc_auc_score
from repro.models import FLNet

GRID = 24
TRAIN_PLACEMENTS = 10
TEST_PLACEMENTS = 4
STEPS = 60


def build_dataset() -> tuple:
    """Generate one design, sweep placements, and label DRC hotspots."""
    design = generate_design("itc99", "quickstart_design", seed=7)
    print(f"Generated design: {design.netlist.num_cells} cells, {design.netlist.num_nets} nets")

    placements = sweep_placements(
        design, count=TRAIN_PLACEMENTS + TEST_PLACEMENTS, grid_width=GRID, grid_height=GRID
    )
    extractor = FeatureExtractor()
    labeler = DrcHotspotLabeler(label_seed=1)

    samples = []
    for index, placement in enumerate(placements):
        analysis = all_maps(placement)
        features = extractor.extract(placement, analysis)
        drc = labeler.label(placement, precomputed_maps=analysis)
        samples.append(
            PlacementSample(
                features=features,
                label=drc.hotspots,
                design_name=design.name,
                suite=design.suite,
                placement_index=index,
            )
        )
    train = RoutabilityDataset(samples[:TRAIN_PLACEMENTS], name="quickstart/train")
    test = RoutabilityDataset(samples[TRAIN_PLACEMENTS:], name="quickstart/test")
    print(f"Dataset: {len(train)} training placements, {len(test)} testing placements")
    print(f"Hotspot fraction: {train.hotspot_fraction():.3f}")
    return train, test, extractor.num_channels


def main() -> None:
    train, test, channels = build_dataset()

    model = FLNet(channels, seed=0)
    print(f"FLNet parameters: {model.num_parameters()}")

    trainer = LocalTrainer(
        loss="mse",
        optimizer="adam",
        learning_rate=2e-3,
        weight_decay=1e-5,
        batch_size=4,
        rng=np.random.default_rng(0),
    )
    stats = trainer.train_steps(model, train, steps=STEPS)
    print(f"Trained {stats.steps} steps; mean loss {stats.mean_loss:.4f} -> final loss {stats.final_loss:.4f}")

    scores, labels = predict_dataset(model, test)
    auc = roc_auc_score(labels, scores)
    print(f"Held-out ROC AUC on unseen placements: {auc:.3f}")

    # For comparison: an untrained model of the same architecture.
    untrained_scores, _ = predict_dataset(FLNet(channels, seed=99), test)
    untrained_auc = roc_auc_score(labels, untrained_scores)
    print(f"Untrained-model ROC AUC (reference):   {untrained_auc:.3f}")


if __name__ == "__main__":
    main()
