#!/usr/bin/env python
"""Comparing federated-learning personalization techniques (Figure 2 / Table 3).

Starting from the same FedProx setup, this example runs the five
personalization techniques the paper studies — FedProx-LG, IFCA, local
fine-tuning, assigned clustering, and alpha-portion sync — on a small
heterogeneous 4-client corpus and reports each technique's per-client ROC AUC
against plain FedProx.

Run with:  python examples/personalization_study.py
"""

from __future__ import annotations

from repro.data import CorpusConfig
from repro.data.clients import ClientSpec, CorpusBuilder
from repro.experiments import ROW_DISPLAY_NAMES, format_rows
from repro.fl import FLConfig, FederatedClient, SeededModelFactory, create_algorithm, evaluate_result
from repro.models import FLNet

CLIENT_SPECS = (
    ClientSpec(1, "itc99", 2, 1, 10, 5),
    ClientSpec(2, "itc99", 2, 1, 10, 5),
    ClientSpec(3, "iscas89", 2, 1, 10, 5),
    ClientSpec(4, "ispd15", 2, 1, 10, 5),
)

CORPUS = CorpusConfig(
    grid_width=16,
    grid_height=16,
    placement_scale=0.4,
    min_placements_per_design=3,
    base_seed=23,
)

FL = FLConfig(
    rounds=3,
    local_steps=6,
    finetune_steps=25,
    learning_rate=2e-3,
    batch_size=4,
    num_clusters=3,
    # Prior knowledge: clients 1-2 share a suite, 3 and 4 are on their own.
    assigned_clusters=((1, 0), (2, 0), (3, 1), (4, 2)),
    ifca_eval_batches=1,
)

METHODS = (
    "fedprox",
    "fedprox_lg",
    "ifca",
    "fedprox_finetune",
    "assigned_clustering",
    "fedprox_alpha",
)


def main() -> None:
    print("Synthesizing a 4-client heterogeneous corpus...")
    client_data = CorpusBuilder(CORPUS).build_all(CLIENT_SPECS)
    channels = len(CORPUS.features)
    factory = SeededModelFactory(lambda seed: FLNet(channels, seed=seed), base_seed=0)
    clients = [FederatedClient.from_client_data(data, factory, FL) for data in client_data]

    rows = []
    for method in METHODS:
        print(f"Running {ROW_DISPLAY_NAMES.get(method, method)}...")
        training = create_algorithm(method, clients, factory, FL).run()
        rows.append(evaluate_result(training, clients))

    print()
    print(format_rows(rows, title="Personalization techniques, per-client ROC AUC"))
    best = max(rows, key=lambda row: row.average_auc)
    print()
    print(
        f"Best-performing technique on this corpus: "
        f"{ROW_DISPLAY_NAMES.get(best.algorithm, best.algorithm)} "
        f"(average AUC {best.average_auc:.3f})"
    )


if __name__ == "__main__":
    main()
