#!/usr/bin/env python
"""Plugging a custom routability estimator into the framework.

The model registry is open: any module with the :class:`RoutabilityModel`
interface can be registered by name and then used everywhere a built-in
estimator can — experiment configurations, the federated algorithms, the
CLI.  This example defines a small GroupNorm-based CNN (group normalization
avoids the aggregated-batch-statistics problem the paper attributes to
BatchNorm), registers it, and compares it against FLNet under local and
FedProx training on a two-client setup.

Run with:  python examples/custom_estimator.py
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data import CorpusConfig
from repro.data.clients import ClientSpec, CorpusBuilder
from repro.experiments import format_rows
from repro.fl import FederatedClient, FLConfig, SeededModelFactory, create_algorithm, evaluate_result
from repro.models import FLNet
from repro.models.base import RoutabilityModel
from repro.models.registry import available_models, create_model, register_model
from repro.nn import Conv2d, GroupNorm, ReLU, Sequential
from repro.utils.rng import new_rng


class GroupNormNet(RoutabilityModel):
    """A 3-layer CNN with group normalization between convolutions."""

    def __init__(
        self,
        in_channels: int,
        hidden_filters: int = 16,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(in_channels)
        rng = rng if rng is not None else new_rng(seed)
        f = int(hidden_filters)
        self.body = Sequential(
            Conv2d(in_channels, f, 5, padding=2, rng=rng),
            GroupNorm(num_groups=4, num_channels=f),
            ReLU(),
            Conv2d(f, f, 5, padding=2, rng=rng),
            GroupNorm(num_groups=4, num_channels=f),
            ReLU(),
            Conv2d(f, 1, 5, padding=2, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.body.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.body.backward(grad_output)


CLIENT_SPECS = (
    ClientSpec(1, "itc99", train_designs=2, test_designs=1, paper_train_placements=10, paper_test_placements=4),
    ClientSpec(2, "iscas89", train_designs=2, test_designs=1, paper_train_placements=10, paper_test_placements=4),
)

CORPUS = CorpusConfig(
    grid_width=16,
    grid_height=16,
    placement_scale=0.5,
    min_placements_per_design=3,
    base_seed=31,
)

FL = FLConfig(
    rounds=3,
    local_steps=5,
    finetune_steps=10,
    learning_rate=2e-3,
    batch_size=4,
    proximal_mu=1e-4,
)


def run_model(model_name: str, client_data, channels: int):
    factory = SeededModelFactory(lambda seed: create_model(model_name, channels, seed=seed), base_seed=0)
    clients = [FederatedClient.from_client_data(data, factory, FL) for data in client_data]
    rows = []
    for algorithm in ("local", "fedprox"):
        training = create_algorithm(algorithm, clients, factory, FL).run()
        row = evaluate_result(training, clients)
        row.algorithm = f"{model_name}/{algorithm}"
        rows.append(row)
    return rows


def main() -> None:
    register_model("groupnorm_net", GroupNormNet, overwrite=True)
    print(f"Registered models: {available_models()}")

    print("\nSynthesizing two clients' private data...")
    client_data = CorpusBuilder(CORPUS).build_all(CLIENT_SPECS)
    channels = len(CORPUS.features)

    rows = []
    for model_name in ("flnet", "groupnorm_net"):
        print(f"Training {model_name} (local + FedProx)...")
        rows.extend(run_model(model_name, client_data, channels))

    print()
    print(format_rows(rows, title="Custom estimator vs FLNet (per-client ROC AUC)"))
    print(
        "\nA custom estimator only needs the RoutabilityModel interface and one "
        "register_model() call to participate in every training algorithm."
    )


if __name__ == "__main__":
    main()
