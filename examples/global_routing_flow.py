#!/usr/bin/env python
"""Physical-design flow demo: place, legalize, globally route, and export.

This example exercises the EDA substrate on its own (no machine learning):

1. generate a synthetic ITC'99-style design,
2. place it, then produce a second placement variant by perturbation and
   legalization (the knob the data-generation flow uses to obtain multiple
   placement solutions per design),
3. compare placement quality (HPWL, density) across the variants,
4. run the capacity-aware global router with negotiated rip-up and reroute,
   and compare its bin-level congestion against the fast probabilistic
   congestion model,
5. export the netlist and the routed placement to Verilog / DEF / Bookshelf
   files that external tools could consume.

Run with:  python examples/global_routing_flow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.eda import (
    GlobalRouterConfig,
    PlacementConfig,
    Placer,
    estimate_congestion,
    generate_design,
    legalize_placement,
    perturb_placement,
    placement_quality,
    quality_table,
    route_placement,
    routing_quality,
    write_bookshelf_pl,
    write_design,
    write_placement_def,
)

GRID = 24


def main() -> None:
    design = generate_design("itc99", "routing_demo", seed=11)
    print(
        f"Design: {design.netlist.num_cells} cells, {design.netlist.num_nets} nets, "
        f"{design.netlist.num_macros} macros"
    )

    # -- placement and variants -------------------------------------------------
    placer = Placer()
    baseline = placer.place(
        design, PlacementConfig(grid_width=GRID, grid_height=GRID, utilization=0.72, seed=1)
    )
    perturbed = perturb_placement(baseline, magnitude=0.08, fraction=0.4, seed=2)
    legalized, report = legalize_placement(perturbed)
    print(
        f"\nLegalization moved {report.num_moved} cells "
        f"(mean displacement {report.mean_displacement_um:.2f} um, "
        f"overlap {report.overlap_area_before_um2:.1f} -> {report.overlap_area_after_um2:.1f} um^2)"
    )

    reports = [placement_quality(p) for p in (baseline, perturbed, legalized)]
    print("\nPlacement quality (baseline / perturbed / legalized):")
    print(quality_table(reports))

    # -- global routing -----------------------------------------------------------
    routed = route_placement(baseline, GlobalRouterConfig(max_ripup_iterations=4))
    quality = routing_quality(routed)
    print("\nGlobal routing quality:")
    for key, value in quality.to_dict().items():
        print(f"  {key:<24} {value}")

    routed_congestion = routed.congestion_maps()["congestion"]
    model_congestion = estimate_congestion(baseline)["congestion"]
    correlation = np.corrcoef(routed_congestion.ravel(), model_congestion.ravel())[0, 1]
    print(f"\nCorrelation between routed and probabilistic congestion maps: {correlation:.3f}")

    # -- export -------------------------------------------------------------------
    out_dir = Path(tempfile.mkdtemp(prefix="repro_routing_demo_"))
    verilog = write_design(design, out_dir / f"{design.name}.v")
    def_file = write_placement_def(baseline, out_dir / f"{design.name}.def")
    pl_file = write_bookshelf_pl(baseline, out_dir / f"{design.name}.pl")
    print("\nExported design artifacts:")
    for path in (verilog, def_file, pl_file):
        print(f"  {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
