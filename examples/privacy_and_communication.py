#!/usr/bin/env python
"""Privacy and communication costs of federated routability estimation.

The paper's framework leaves data where it is and ships model parameters
instead; this example quantifies the two practical costs of that choice:

1. **Differential privacy**: train FLNet with DP-FedProx (per-client update
   clipping + Gaussian noise) at several noise levels and report the
   resulting (epsilon, delta) guarantee next to the achieved ROC AUC, so the
   privacy/utility trade-off is explicit.
2. **Communication**: print the analytic per-round uplink/downlink cost of
   every training algorithm for the three estimators, and show how much
   top-k sparsification and 8-bit quantization would save (and distort).
3. **Measured transport**: run real federated rounds through the wire-level
   transport channel (identity vs. 8-bit quantized delta uploads) and
   compare *measured* payload bytes and accuracy.

Run with:  python examples/privacy_and_communication.py
"""

from __future__ import annotations

import numpy as np

from repro.data import CorpusConfig
from repro.data.clients import ClientSpec, CorpusBuilder
from repro.fl import (
    BYTES_PER_FLOAT32,
    DPFedProx,
    FedProx,
    FederatedClient,
    FLConfig,
    PrivacyConfig,
    SeededModelFactory,
    compression_error,
    create_channel,
    estimate_communication,
    evaluate_result,
    quantize_state,
    state_bytes,
    topk_sparsify,
)
from repro.models import FLNet
from repro.models.registry import available_models, create_model

CLIENT_SPECS = (
    ClientSpec(1, "itc99", train_designs=2, test_designs=1, paper_train_placements=10, paper_test_placements=4),
    ClientSpec(2, "iscas89", train_designs=2, test_designs=1, paper_train_placements=10, paper_test_placements=4),
)

CORPUS = CorpusConfig(
    grid_width=16,
    grid_height=16,
    placement_scale=0.5,
    min_placements_per_design=3,
    base_seed=23,
)

FL = FLConfig(
    rounds=3,
    local_steps=5,
    finetune_steps=10,
    learning_rate=2e-3,
    batch_size=4,
    proximal_mu=1e-4,
)

NOISE_LEVELS = (0.0, 0.3, 1.0)


def privacy_utility_study(clients, factory) -> None:
    print("=== Privacy / utility trade-off (DP-FedProx, client-level DP) ===")
    factory.reset()
    baseline = FedProx(clients, factory, FL).run()
    baseline_auc = evaluate_result(baseline, clients).average_auc
    print(f"{'noise multiplier':>18} {'epsilon':>12} {'avg AUC':>9}")
    print(f"{'(no DP)':>18} {'inf':>12} {baseline_auc:>9.3f}")
    for noise in NOISE_LEVELS:
        factory.reset()
        privacy = PrivacyConfig(clip_norm=0.5, noise_multiplier=noise)
        algorithm = DPFedProx(clients, factory, FL, privacy=privacy)
        result = algorithm.run()
        auc = evaluate_result(result, clients).average_auc
        epsilon = algorithm.accountant.epsilon()
        label = "inf" if np.isinf(epsilon) else f"{epsilon:.2f}"
        print(f"{noise:>18.1f} {label:>12} {auc:>9.3f}")
    print(
        "Clipping alone (noise 0.0) gives no formal guarantee; increasing the noise "
        "tightens epsilon at a growing accuracy cost.\n"
    )


def communication_study(num_channels: int) -> None:
    print("=== Communication cost per algorithm (9 clients, 50 rounds) ===")
    for model_name in available_models():
        state = create_model(model_name, in_channels=num_channels, seed=0).state_dict()
        # Sized at the analytic model's float32 wire precision so the copy
        # size matches the per-algorithm totals printed below it.
        size_mb = state_bytes(state, BYTES_PER_FLOAT32) / 1e6
        print(f"\n{model_name}: {size_mb:.2f} MB per model copy")
        print(f"  {'algorithm':<22} {'total traffic (MB)':>20}")
        for algorithm in ("fedavg", "fedprox", "fedprox_lg", "ifca", "fedprox_finetune"):
            report = estimate_communication(algorithm, state, num_clients=9, rounds=50, global_fraction=0.8, num_clusters=4)
            print(f"  {algorithm:<22} {report.total_bytes / 1e6:>20.1f}")

    print("\n=== Update compression on one FLNet state ===")
    state = create_model("flnet", in_channels=num_channels, seed=0).state_dict()
    for label, result in (
        ("top-10% sparsification", topk_sparsify(state, keep_fraction=0.10)),
        ("8-bit quantization", quantize_state(state, num_bits=8)),
        ("4-bit quantization", quantize_state(state, num_bits=4)),
    ):
        error = compression_error(state, result.state)
        print(
            f"  {label:<24} {result.compression_ratio:>6.1f}x smaller, "
            f"relative L2 error {error:.4f}"
        )


def measured_transport_study(client_data, factory) -> None:
    print("\n=== Measured transport: identity wire vs 8-bit quantized delta uploads ===")
    print(f"{'compression':>12} {'uplink B':>12} {'downlink B':>12} {'avg AUC':>9}")
    for compression in ("none", "quantize"):
        # Fresh clients per setting: per-client RNG streams are stateful, so
        # reusing a roster would compare different batch-sampling sequences
        # instead of isolating the codec's effect.
        factory.reset()
        clients = [FederatedClient.from_client_data(data, factory, FL) for data in client_data]
        channel = create_channel(compression, compression_bits=8)
        result = FedProx(clients, factory, FL, channel=channel).run()
        auc = evaluate_result(result, clients).average_auc
        summary = channel.summary()
        print(
            f"{compression:>12} {summary.total_uplink_bytes:>12,d} "
            f"{summary.total_downlink_bytes:>12,d} {auc:>9.3f}"
        )
    print(
        "Every byte above is the length of a payload that was actually encoded; "
        "quantized uploads are delta-encoded against the received broadcast."
    )


def main() -> None:
    print("Synthesizing two clients' private data...")
    client_data = CorpusBuilder(CORPUS).build_all(CLIENT_SPECS)
    channels = len(CORPUS.features)
    factory = SeededModelFactory(lambda seed: FLNet(channels, hidden_filters=16, seed=seed), base_seed=0)
    clients = [FederatedClient.from_client_data(data, factory, FL) for data in client_data]

    privacy_utility_study(clients, factory)
    communication_study(channels)
    measured_transport_study(client_data, factory)


if __name__ == "__main__":
    main()
