"""Tests for routability feature extraction."""

import numpy as np
import pytest

from repro.features import DEFAULT_FEATURES, FeatureExtractor, available_features


class TestFeatureExtractor:
    def test_default_channel_order(self):
        extractor = FeatureExtractor()
        assert extractor.feature_names == DEFAULT_FEATURES
        assert extractor.num_channels == len(DEFAULT_FEATURES)

    def test_extract_shape(self, small_placement):
        extractor = FeatureExtractor()
        features = extractor.extract(small_placement)
        assert features.shape == (len(DEFAULT_FEATURES),) + small_placement.grid_shape

    def test_per_sample_normalization_bounds(self, small_placement, analysis_maps):
        features = FeatureExtractor(normalization="per_sample").extract(small_placement, analysis_maps)
        assert np.all(features <= 1.0 + 1e-12)
        assert np.all(features >= 0.0)
        # Every channel with any signal should reach exactly 1 after scaling.
        for channel in features:
            if channel.max() > 0:
                assert channel.max() == pytest.approx(1.0)

    def test_none_normalization_returns_raw_values(self, small_placement, analysis_maps):
        raw = FeatureExtractor(normalization="none").extract(small_placement, analysis_maps)
        index = DEFAULT_FEATURES.index("cell_density")
        np.testing.assert_allclose(raw[index], analysis_maps["cell_density"])

    def test_log1p_normalization_compresses(self, small_placement, analysis_maps):
        log_features = FeatureExtractor(normalization="log1p").extract(small_placement, analysis_maps)
        assert np.all(log_features <= 1.0 + 1e-12)

    def test_subset_of_features(self, small_placement, analysis_maps):
        extractor = FeatureExtractor(["rudy", "cell_density"])
        features = extractor.extract(small_placement, analysis_maps)
        assert features.shape[0] == 2

    def test_congestion_features_available(self, small_placement, analysis_maps):
        extractor = FeatureExtractor(["congestion_horizontal", "congestion_vertical"])
        features = extractor.extract(small_placement, analysis_maps)
        assert features.shape[0] == 2
        assert np.all(features >= 0)

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(["timing_slack"])

    def test_empty_feature_list_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor([])

    def test_unknown_normalization_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(normalization="zscore")

    def test_extract_batch(self, small_placement):
        extractor = FeatureExtractor()
        batch = extractor.extract_batch([small_placement, small_placement])
        assert batch.shape == (2, extractor.num_channels) + small_placement.grid_shape

    def test_extract_batch_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor().extract_batch([])

    def test_available_features_superset_of_defaults(self):
        assert set(DEFAULT_FEATURES).issubset(set(available_features()))

    def test_macro_channel_reflects_macros(self, macro_placement):
        extractor = FeatureExtractor(["macro"], normalization="none")
        features = extractor.extract(macro_placement)
        assert features.max() > 0.5
