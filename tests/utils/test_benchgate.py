"""Tests for the perf-regression gate (`repro bench diff`)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.utils.benchgate import (
    IMPROVED,
    MISSING,
    NEW,
    OK,
    REGRESSION,
    SKIPPED_ENV,
    DiffRow,
    diff_benchmark,
    diff_directories,
    environment_mismatch,
    format_table,
    has_regression,
    load_records,
)

ENV = {"machine": "x86_64", "cpu_count": 8, "blas_vendor": "openblas", "python": "3.11.7"}


def record_file(name, records, environment=ENV):
    return {"benchmark": name, "environment": dict(environment), "records": records}


def ms_record(op, config, ms, **extra):
    return {"op": op, "config": config, "ms": ms, **extra}


def write(directory: Path, payload) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{payload['benchmark']}.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestDiffBenchmark:
    def test_within_tolerance_is_ok(self):
        baseline = record_file("b", [ms_record("round", "serial", 100.0)])
        fresh = record_file("b", [ms_record("round", "serial", 110.0)])
        (row,) = diff_benchmark(baseline, fresh, tolerance=0.25)
        assert row.status == OK
        assert row.ratio == pytest.approx(1.1)

    def test_slowdown_beyond_tolerance_regresses(self):
        baseline = record_file("b", [ms_record("round", "serial", 100.0)])
        fresh = record_file("b", [ms_record("round", "serial", 200.0)])
        (row,) = diff_benchmark(baseline, fresh, tolerance=0.25)
        assert row.status == REGRESSION
        assert has_regression([row])

    def test_boundary_is_not_a_regression(self):
        baseline = record_file("b", [ms_record("round", "serial", 100.0)])
        fresh = record_file("b", [ms_record("round", "serial", 125.0)])
        (row,) = diff_benchmark(baseline, fresh, tolerance=0.25)
        assert row.status == OK

    def test_large_speedup_reports_improved(self):
        baseline = record_file("b", [ms_record("round", "serial", 100.0)])
        fresh = record_file("b", [ms_record("round", "serial", 50.0)])
        (row,) = diff_benchmark(baseline, fresh, tolerance=0.25)
        assert row.status == IMPROVED
        assert not has_regression([row])

    def test_keys_matched_per_op_and_config(self):
        baseline = record_file(
            "b",
            [ms_record("round", "serial", 100.0), ms_record("round", "process_4w", 40.0)],
        )
        fresh = record_file(
            "b",
            [ms_record("round", "process_4w", 39.0), ms_record("round", "serial", 101.0)],
        )
        rows = diff_benchmark(baseline, fresh, tolerance=0.25)
        assert {(r.op, r.config, r.status) for r in rows} == {
            ("round", "serial", OK),
            ("round", "process_4w", OK),
        }

    def test_missing_and_new_keys_warn_but_pass(self):
        baseline = record_file("b", [ms_record("old_op", "serial", 10.0)])
        fresh = record_file("b", [ms_record("new_op", "serial", 10.0)])
        rows = diff_benchmark(baseline, fresh, tolerance=0.25)
        assert {r.status for r in rows} == {MISSING, NEW}
        assert not has_regression(rows)

    def test_environment_mismatch_skips_with_warning(self):
        baseline = record_file("b", [ms_record("round", "serial", 100.0)])
        other_env = dict(ENV, cpu_count=2)
        fresh = record_file("b", [ms_record("round", "serial", 900.0)], environment=other_env)
        (row,) = diff_benchmark(baseline, fresh, tolerance=0.25)
        assert row.status == SKIPPED_ENV
        assert "cpu_count" in row.note
        assert not has_regression([row])

    def test_environment_comparison_ignores_keys_missing_on_one_side(self):
        # Baselines recorded before a header key existed stay comparable.
        old_env = {"machine": "x86_64", "cpu_count": 8}
        assert environment_mismatch(old_env, ENV) is None
        assert environment_mismatch(dict(ENV), dict(ENV, blas_vendor="mkl")) == (
            "blas_vendor: baseline 'openblas' vs current 'mkl'"
        )

    def test_python_version_does_not_block_comparison(self):
        assert environment_mismatch(dict(ENV), dict(ENV, python="3.12.1")) is None

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_benchmark(record_file("b", []), record_file("b", []), tolerance=-0.1)


class TestDirectoriesAndCli:
    def make_dirs(self, tmp_path, baseline_ms, fresh_ms):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        write(baselines, record_file("engine", [ms_record("round", "serial", baseline_ms)]))
        write(results, record_file("engine", [ms_record("round", "serial", fresh_ms)]))
        return baselines, results

    def test_clean_directories_pass(self, tmp_path):
        baselines, results = self.make_dirs(tmp_path, 100.0, 102.0)
        rows, warnings = diff_directories(baselines, results, tolerance=0.25)
        assert not warnings
        assert not has_regression(rows)

    def test_baseline_without_fresh_results_warns_not_fails(self, tmp_path):
        baselines, results = self.make_dirs(tmp_path, 100.0, 100.0)
        write(baselines, record_file("not_rerun", [ms_record("x", "y", 1.0)]))
        rows, warnings = diff_directories(baselines, results, tolerance=0.25)
        assert any("not_rerun" in warning for warning in warnings)
        assert not has_regression(rows)

    def test_names_filter(self, tmp_path):
        baselines, results = self.make_dirs(tmp_path, 100.0, 100.0)
        rows, _ = diff_directories(baselines, results, names=["engine"])
        assert rows
        with pytest.raises(FileNotFoundError):
            diff_directories(baselines, results, names=["unknown_bench"])

    def test_missing_baselines_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            diff_directories(tmp_path / "nope", tmp_path)

    def test_load_records_rejects_non_record_files(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"not": "records"}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_records(path)

    def test_cli_exits_zero_when_clean(self, tmp_path, capsys):
        baselines, results = self.make_dirs(tmp_path, 100.0, 104.0)
        code = main(
            ["bench", "diff", "--baselines", str(baselines), "--results", str(results)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK: no regression" in out
        assert "engine" in out

    def test_cli_exits_nonzero_on_injected_regression(self, tmp_path, capsys):
        # The negative test the CI job mirrors: inject a fake 2x-slower
        # record and assert the gate fails.
        baselines, results = self.make_dirs(tmp_path, 100.0, 200.0)
        code = main(
            [
                "bench",
                "diff",
                "--baselines",
                str(baselines),
                "--results",
                str(results),
                "--tolerance",
                "0.25",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out
        assert "FAIL" in captured.err

    def test_cli_errors_on_missing_baselines(self, tmp_path, capsys):
        code = main(["bench", "diff", "--baselines", str(tmp_path / "none"), "--results", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFormatting:
    def test_table_lists_all_rows_and_summary(self):
        rows = [
            DiffRow("b", "round", "serial", 100.0, 150.0, REGRESSION, "slower"),
            DiffRow("b", "round", "process_4w", 50.0, 49.0, OK),
            DiffRow("a", "step", "f32", None, 3.0, NEW, "no baseline for this key"),
        ]
        text = format_table(rows)
        assert "1 new" in text and "1 ok" in text and "1 regression" in text
        # Sorted by (benchmark, op, config): benchmark 'a' first.
        lines = text.splitlines()
        assert lines[2].startswith("a")
        assert "1.50x" in text

    def test_empty_table(self):
        assert "nothing compared" in format_table([])
