"""Tests for BLAS thread detection, control, and policy resolution."""

from __future__ import annotations

import pytest

from repro.utils import threadpools
from repro.utils.threadpools import (
    BLAS_AUTO,
    BLAS_ENV_VARS,
    BlasInfo,
    blas_info,
    blas_thread_limit,
    check_blas_policy,
    get_blas_threads,
    parse_blas_threads,
    resolve_blas_threads,
    set_blas_threads,
)


class TestPolicyParsing:
    def test_auto(self):
        assert parse_blas_threads("auto") == BLAS_AUTO
        assert parse_blas_threads("AUTO") == BLAS_AUTO
        assert parse_blas_threads(" auto ") == BLAS_AUTO

    def test_integers(self):
        assert parse_blas_threads("1") == 1
        assert parse_blas_threads("16") == 16

    @pytest.mark.parametrize("bad", ["0", "-2", "many", "1.5", ""])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_blas_threads(bad)

    def test_check_policy_accepts_valid(self):
        for policy in (None, BLAS_AUTO, 1, 8):
            assert check_blas_policy(policy) == policy

    @pytest.mark.parametrize("bad", [0, -1, True, 2.0, "four", "Auto"])
    def test_check_policy_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            check_blas_policy(bad)


class TestResolution:
    def test_none_never_manages(self):
        assert resolve_blas_threads(None, 1, 16) is None
        assert resolve_blas_threads(None, 8, 16) is None

    def test_auto_leaves_serial_alone(self):
        # Serial execution keeps BLAS's own all-core default.
        assert resolve_blas_threads(BLAS_AUTO, 1, 16) is None
        assert resolve_blas_threads(BLAS_AUTO, 0, 16) is None

    def test_auto_divides_cores_across_workers(self):
        assert resolve_blas_threads(BLAS_AUTO, 4, 16) == 4
        assert resolve_blas_threads(BLAS_AUTO, 3, 16) == 5
        # Never below one thread, even oversubscribed.
        assert resolve_blas_threads(BLAS_AUTO, 8, 4) == 1
        assert resolve_blas_threads(BLAS_AUTO, 16, 1) == 1

    def test_explicit_count_pins_exactly(self):
        assert resolve_blas_threads(2, 1, 16) == 2
        assert resolve_blas_threads(2, 8, 16) == 2

    def test_workers_times_threads_never_exceeds_cores(self):
        for cores in (1, 2, 4, 6, 32):
            for workers in range(2, 12):
                resolved = resolve_blas_threads(BLAS_AUTO, workers, cores)
                assert resolved >= 1
                # The product bound only holds up to the worker count itself
                # exceeding the cores (each worker still needs >= 1 thread).
                assert min(workers, cores) * resolved <= cores


class TestDetectionAndControl:
    def test_blas_info_shape(self):
        info = blas_info()
        assert isinstance(info, BlasInfo)
        assert info.vendor in ("openblas", "mkl", "blis", "unknown")
        if info.vendor == "unknown":
            assert not info.controllable

    def test_runtime_set_get_round_trip(self):
        info = blas_info()
        if not info.controllable:
            pytest.skip("BLAS library exposes no runtime thread setter")
        previous = get_blas_threads()
        assert previous is not None and previous >= 1
        try:
            assert set_blas_threads(2)
            assert get_blas_threads() == 2
        finally:
            set_blas_threads(previous)
        assert get_blas_threads() == previous

    def test_set_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_blas_threads(0)

    def test_thread_limit_restores(self):
        info = blas_info()
        if not info.controllable:
            pytest.skip("BLAS library exposes no runtime thread setter")
        previous = get_blas_threads()
        with blas_thread_limit(3):
            assert get_blas_threads() == 3
        assert get_blas_threads() == previous

    def test_thread_limit_none_is_noop(self):
        before = get_blas_threads()
        with blas_thread_limit(None):
            assert get_blas_threads() == before
        assert get_blas_threads() == before

    def test_env_var_fallback_when_uncontrollable(self, monkeypatch):
        # Simulate a BLAS without a runtime setter: the knob must degrade to
        # exporting the conventional env vars (affecting future pools only)
        # and report that the runtime set did not take effect.
        for name in BLAS_ENV_VARS:
            monkeypatch.delenv(name, raising=False)
        monkeypatch.setattr(threadpools, "_CONTROL", None)
        import os

        assert set_blas_threads(3) is False
        for name in BLAS_ENV_VARS:
            assert os.environ[name] == "3"
        assert get_blas_threads() is None
        info = blas_info()
        assert info.vendor == "unknown" and not info.controllable

    def test_detection_cache_reset(self, monkeypatch):
        monkeypatch.setattr(threadpools, "_CONTROL", None)
        assert blas_info().vendor == "unknown"
        threadpools.reset_blas_detection()
        # Re-probes the real library after the reset.
        assert blas_info().vendor in ("openblas", "mkl", "blis", "unknown")
