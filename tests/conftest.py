"""Shared fixtures for the test suite.

Fixtures that synthesize EDA data are session-scoped and deliberately tiny
(small ISCAS'89-style designs, 16x16 grids) so the whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import PlacementSample, RoutabilityDataset
from repro.eda import maps as map_ext
from repro.eda.benchmarks import generate_design
from repro.eda.drc import DrcHotspotLabeler
from repro.eda.placement import PlacementConfig, Placer, sweep_placements
from repro.features.extraction import FeatureExtractor

GRID = 16


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_design():
    """A small ISCAS'89-style design (fast to place and analyze)."""
    return generate_design("iscas89", "fixture_design", seed=11, cell_count=320)


@pytest.fixture(scope="session")
def small_placement(small_design):
    """One placement of the small design on a 16x16 grid."""
    placer = Placer()
    config = PlacementConfig(grid_width=GRID, grid_height=GRID, utilization=0.72, seed=3)
    return placer.place(small_design, config)


@pytest.fixture(scope="session")
def analysis_maps(small_placement):
    """Pre-computed analysis maps of the small placement."""
    return map_ext.all_maps(small_placement)


@pytest.fixture(scope="session")
def macro_placement():
    """A placement of an ISPD'15-style design containing macros."""
    design = generate_design("ispd15", "fixture_macro_design", seed=5, cell_count=1900)
    placer = Placer()
    config = PlacementConfig(grid_width=GRID, grid_height=GRID, utilization=0.55, seed=7)
    return placer.place(design, config)


def _build_dataset(suite: str, design_seed: int, n_designs: int, placements_per_design: int, name: str):
    extractor = FeatureExtractor()
    labeler = DrcHotspotLabeler(label_seed=1)
    dataset = RoutabilityDataset(name=name)
    for d in range(n_designs):
        design = generate_design(suite, f"{name}_d{d}", seed=design_seed + d, cell_count=300)
        placements = sweep_placements(
            design, count=placements_per_design, grid_width=GRID, grid_height=GRID, base_seed=d
        )
        for index, placement in enumerate(placements):
            analysis = map_ext.all_maps(placement)
            features = extractor.extract(placement, analysis)
            drc = labeler.label(placement, precomputed_maps=analysis)
            dataset.add(
                PlacementSample(
                    features=features,
                    label=drc.hotspots,
                    design_name=design.name,
                    suite=suite,
                    placement_index=index,
                )
            )
    return dataset


@pytest.fixture(scope="session")
def tiny_train_dataset():
    """A small training dataset: 2 ISCAS'89-style designs x 3 placements."""
    return _build_dataset("iscas89", design_seed=100, n_designs=2, placements_per_design=3, name="tiny_train")


@pytest.fixture(scope="session")
def tiny_test_dataset():
    """A small test dataset: 2 different designs x 2 placements."""
    return _build_dataset("iscas89", design_seed=200, n_designs=2, placements_per_design=2, name="tiny_test")


@pytest.fixture(scope="session")
def tiny_train_dataset_itc():
    """A second-suite training dataset to exercise heterogeneity-sensitive paths."""
    return _build_dataset("itc99", design_seed=300, n_designs=2, placements_per_design=3, name="tiny_train_itc")


@pytest.fixture(scope="session")
def tiny_test_dataset_itc():
    return _build_dataset("itc99", design_seed=400, n_designs=1, placements_per_design=2, name="tiny_test_itc")


@pytest.fixture(scope="session")
def num_channels(tiny_train_dataset):
    return tiny_train_dataset.num_channels
