"""Tests for the local trainer, the federated client, and the FL config."""

import numpy as np
import pytest

from repro.fl import FLConfig, FederatedClient, LocalTrainer, predict_dataset, scaled_fl_config
from repro.fl.config import PAPER_ASSIGNED_CLUSTERS, paper_fl_config
from repro.fl.parameters import state_distance
from repro.models import FLNet


SMALL_FL_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
)


def small_flnet_factory(num_channels):
    return lambda: FLNet(num_channels, hidden_filters=8, kernel_size=5, seed=0)


class TestFLConfig:
    def test_paper_defaults(self):
        config = paper_fl_config()
        assert config.rounds == 50
        assert config.local_steps == 100
        assert config.finetune_steps == 5000
        assert config.learning_rate == pytest.approx(2e-4)
        assert config.weight_decay == pytest.approx(1e-5)
        assert config.proximal_mu == pytest.approx(1e-4)
        assert config.alpha == pytest.approx(0.5)
        assert config.num_clusters == 4
        assert config.optimizer == "adam"

    def test_paper_assigned_clusters(self):
        mapping = paper_fl_config().assigned_cluster_map()
        assert mapping == PAPER_ASSIGNED_CLUSTERS
        assert mapping[1] == mapping[2] == mapping[3]
        assert mapping[9] not in (mapping[1], mapping[4], mapping[7])

    def test_effective_step_budgets(self):
        config = FLConfig(rounds=5, local_steps=10)
        assert config.total_federated_steps == 50
        assert config.effective_centralized_steps == 50
        assert config.effective_local_steps == 50
        overridden = FLConfig(rounds=5, local_steps=10, centralized_steps=7, local_steps_total=9)
        assert overridden.effective_centralized_steps == 7
        assert overridden.effective_local_steps == 9

    def test_scaled_config_is_valid(self):
        config = scaled_fl_config()
        assert config.rounds < 50
        assert config.learning_rate > 2e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            FLConfig(rounds=0)
        with pytest.raises(ValueError):
            FLConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            FLConfig(alpha=2.0)


class TestLocalTrainer:
    def test_training_reduces_loss(self, tiny_train_dataset, num_channels):
        trainer = LocalTrainer(learning_rate=3e-3, batch_size=2, rng=np.random.default_rng(0))
        model = small_flnet_factory(num_channels)()
        before = trainer.evaluate_loss(model, tiny_train_dataset)
        trainer.train_steps(model, tiny_train_dataset, steps=12)
        after = trainer.evaluate_loss(model, tiny_train_dataset)
        assert after < before

    def test_step_statistics(self, tiny_train_dataset, num_channels):
        trainer = LocalTrainer(batch_size=2, rng=np.random.default_rng(0))
        model = small_flnet_factory(num_channels)()
        stats = trainer.train_steps(model, tiny_train_dataset, steps=3)
        assert stats.steps == 3
        assert np.isfinite(stats.mean_loss) and np.isfinite(stats.final_loss)

    def test_proximal_term_limits_drift(self, tiny_train_dataset, num_channels):
        """A huge proximal mu keeps the trained model near the reference."""
        factory = small_flnet_factory(num_channels)
        reference = factory().state_dict()

        def train_with_mu(mu):
            trainer = LocalTrainer(learning_rate=5e-3, batch_size=2, rng=np.random.default_rng(1))
            model = factory()
            model.load_state_dict(reference)
            trainer.train_steps(
                model, tiny_train_dataset, steps=10, proximal_mu=mu, proximal_reference=reference
            )
            return state_distance(model.state_dict(), reference)

        assert train_with_mu(10.0) < train_with_mu(0.0)

    def test_proximal_requires_reference(self, tiny_train_dataset, num_channels):
        trainer = LocalTrainer(batch_size=2)
        model = small_flnet_factory(num_channels)()
        with pytest.raises(ValueError):
            trainer.train_steps(model, tiny_train_dataset, steps=1, proximal_mu=0.1)

    def test_invalid_steps(self, tiny_train_dataset, num_channels):
        trainer = LocalTrainer(batch_size=2)
        model = small_flnet_factory(num_channels)()
        with pytest.raises(ValueError):
            trainer.train_steps(model, tiny_train_dataset, steps=0)

    def test_predict_dataset_shapes(self, tiny_test_dataset, num_channels):
        model = small_flnet_factory(num_channels)()
        scores, labels = predict_dataset(model, tiny_test_dataset, batch_size=3)
        expected = len(tiny_test_dataset) * np.prod(tiny_test_dataset.grid_shape)
        assert scores.shape == labels.shape == (expected,)


class TestFederatedClient:
    @pytest.fixture
    def client(self, tiny_train_dataset, tiny_test_dataset, num_channels):
        return FederatedClient(
            client_id=1,
            train_dataset=tiny_train_dataset,
            test_dataset=tiny_test_dataset,
            model_factory=small_flnet_factory(num_channels),
            config=SMALL_FL_CONFIG,
        )

    def test_num_samples(self, client, tiny_train_dataset):
        assert client.num_samples == len(tiny_train_dataset)

    def test_local_train_returns_new_state(self, client, num_channels):
        initial = small_flnet_factory(num_channels)().state_dict()
        state, stats = client.local_train(initial, steps=2)
        assert set(state) == set(initial)
        assert state_distance(state, initial) > 0
        assert stats.steps == 2

    def test_fine_tune_moves_parameters(self, client, num_channels):
        initial = small_flnet_factory(num_channels)().state_dict()
        state, _ = client.fine_tune(initial, steps=2)
        assert state_distance(state, initial) > 0

    def test_training_loss_finite(self, client, num_channels):
        initial = small_flnet_factory(num_channels)().state_dict()
        assert np.isfinite(client.training_loss(initial))

    def test_evaluate_auc_in_unit_interval(self, client, num_channels):
        initial = small_flnet_factory(num_channels)().state_dict()
        auc = client.evaluate_auc(initial)
        assert 0.0 <= auc <= 1.0

    def test_rejects_empty_training_data(self, tiny_test_dataset, num_channels):
        from repro.data import RoutabilityDataset

        with pytest.raises(ValueError):
            FederatedClient(
                client_id=2,
                train_dataset=RoutabilityDataset(),
                test_dataset=tiny_test_dataset,
                model_factory=small_flnet_factory(num_channels),
                config=SMALL_FL_CONFIG,
            )

    def test_from_client_data(self, tiny_train_dataset, tiny_test_dataset, num_channels):
        from repro.data.clients import ClientData, ClientSpec

        data = ClientData(
            spec=ClientSpec(4, "iscas89", 2, 2, 10, 5),
            train=tiny_train_dataset,
            test=tiny_test_dataset,
        )
        client = FederatedClient.from_client_data(
            data, small_flnet_factory(num_channels), SMALL_FL_CONFIG
        )
        assert client.client_id == 4
