"""Fuzz/property tests for the wire frame codec and message vocabulary.

The frame layer is the trust boundary of the federation runtime: every
byte that arrives from a socket passes through :class:`FrameReader`
before anything is unpickled. The properties under test:

* encode/decode round-trips bit for bit, regardless of how the byte
  stream is chunked (byte-at-a-time == one-shot),
* corruption anywhere in a frame (every single byte position) raises a
  typed :class:`FrameError` or delivers nothing — it never produces a
  wrong payload and never hangs a reader,
* truncation at every possible split point either waits for more bytes
  or raises ``truncated`` from ``finish()`` — no partial frames leak,
* an oversized length prefix fails immediately, before any payload
  arrives (no unbounded buffering),
* a poisoned reader stays poisoned (feeding more bytes re-raises),
* message encode/decode rejects unknown types and garbage bodies with
  :class:`MessageDecodeError`, never a bare pickle error.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.fl.net import FrameError, FrameReader, MessageDecodeError, encode_frame
from repro.fl.net.framing import HEADER_BYTES, MAGIC, MAX_PAYLOAD_BYTES, TRAILER_BYTES
from repro.fl.net.messages import (
    Ack,
    Goodbye,
    Heartbeat,
    HeartbeatAck,
    Hello,
    MESSAGE_TYPES,
    TaskEnvelope,
    UpdateEnvelope,
    Welcome,
    decode_message,
    encode_message,
)


def decode_all(data: bytes, chunk: int = 0):
    """Decode ``data`` fully; ``chunk`` > 0 feeds that many bytes at a time."""
    reader = FrameReader()
    frames = []
    if chunk <= 0:
        frames.extend(reader.feed(data))
    else:
        for start in range(0, len(data), chunk):
            frames.extend(reader.feed(data[start : start + chunk]))
    reader.finish()
    return frames


class TestRoundTrip:
    def test_single_frame(self):
        payload = b"hello federation"
        frames = decode_all(encode_frame(0x10, payload))
        assert frames == [(0x10, payload)]

    def test_empty_payload(self):
        assert decode_all(encode_frame(0x20, b"")) == [(0x20, b"")]

    def test_many_frames_back_to_back(self):
        rng = np.random.default_rng(7)
        originals = [(int(t), bytes(rng.integers(0, 256, size=int(n), dtype=np.uint8))) for t, n in zip(rng.integers(1, 127, size=20), rng.integers(0, 300, size=20))]
        stream = b"".join(encode_frame(t, p) for t, p in originals)
        assert decode_all(stream) == originals

    @pytest.mark.parametrize("chunk", [1, 2, 3, 5, 7, 64])
    def test_chunking_invariance(self, chunk):
        rng = np.random.default_rng(chunk)
        originals = [(3, bytes(rng.integers(0, 256, size=200, dtype=np.uint8))), (9, b""), (77, b"x" * 31)]
        stream = b"".join(encode_frame(t, p) for t, p in originals)
        assert decode_all(stream, chunk=chunk) == originals

    def test_large_payload(self):
        payload = bytes(np.random.default_rng(0).integers(0, 256, size=1 << 18, dtype=np.uint8))
        assert decode_all(encode_frame(1, payload), chunk=4096) == [(1, payload)]

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FrameError, match="oversized"):
            encode_frame(1, b"x", max_payload_bytes=0)

    def test_encode_rejects_bad_type(self):
        with pytest.raises(ValueError):
            encode_frame(256, b"")
        with pytest.raises(ValueError):
            encode_frame(-1, b"")


class TestCorruption:
    def test_flip_every_byte_never_yields_wrong_payload(self):
        """Exhaustive single-byte corruption sweep over a whole frame.

        Every position must end in a typed FrameError (bad magic, crc
        mismatch, oversized, or truncated via finish) or, in the rare
        case a flipped length byte makes the frame *shorter* and the
        tail still checks out, deliver nothing silently wrong: any frame
        that IS delivered must fail CRC comparison against the original
        only if payload bytes differ. In practice the CRC catches all.
        """
        payload = b"routability over the wire"
        frame = bytearray(encode_frame(0x11, payload))
        for position in range(len(frame)):
            corrupted = bytearray(frame)
            corrupted[position] ^= 0xFF
            reader = FrameReader()
            try:
                frames = reader.feed(bytes(corrupted))
                reader.finish()
            except FrameError as error:
                assert error.reason in {"bad magic", "crc mismatch", "oversized", "truncated"}
                continue
            # A shorter-length corruption can decode a prefix; it must not
            # silently deliver the original payload as intact.
            for _, body in frames:
                assert body != payload or bytes(corrupted) == bytes(frame)

    def test_crc_mismatch_is_typed(self):
        frame = bytearray(encode_frame(5, b"abcdef"))
        frame[-1] ^= 0x01
        with pytest.raises(FrameError, match="crc mismatch"):
            decode_all(bytes(frame))

    def test_bad_magic_reports_offset(self):
        good = encode_frame(5, b"abc")
        with pytest.raises(FrameError, match="bad magic") as excinfo:
            decode_all(b"GARBAGE" + good)
        assert excinfo.value.offset == 0

    def test_garbage_between_frames_is_fatal(self):
        stream = encode_frame(1, b"one") + b"\x00\x00" + encode_frame(2, b"two")
        reader = FrameReader()
        with pytest.raises(FrameError, match="bad magic"):
            reader.feed(stream)

    def test_interleaved_garbage_after_clean_frame_preserves_it(self):
        first = encode_frame(1, b"one")
        reader = FrameReader()
        frames = reader.feed(first)
        assert frames == [(1, b"one")]
        with pytest.raises(FrameError):
            reader.feed(b"\xff" * 16)


class TestTruncation:
    def test_every_split_point_waits_then_fails_finish(self):
        frame = encode_frame(0x12, b"partial delivery")
        for cut in range(len(frame)):
            reader = FrameReader()
            assert reader.feed(frame[:cut]) == []
            if cut == 0:
                reader.finish()  # an empty buffer is a clean close
                continue
            with pytest.raises(FrameError, match="truncated"):
                reader.finish()

    def test_completed_stream_finishes_cleanly(self):
        reader = FrameReader()
        reader.feed(encode_frame(1, b"done"))
        reader.finish()

    def test_resume_across_split_completes_frame(self):
        frame = encode_frame(9, b"resume me")
        for cut in range(1, len(frame)):
            reader = FrameReader()
            assert reader.feed(frame[:cut]) == []
            assert reader.feed(frame[cut:]) == [(9, b"resume me")]


class TestOversizedAndPoison:
    def test_oversized_length_prefix_fails_before_payload(self):
        """A hostile length must fail from the header alone (no hang)."""
        header = MAGIC + bytes([1]) + (MAX_PAYLOAD_BYTES + 1).to_bytes(4, "big")
        reader = FrameReader()
        with pytest.raises(FrameError, match="oversized"):
            reader.feed(header)

    def test_max_length_is_accepted_at_header_time(self):
        header = MAGIC + bytes([1]) + MAX_PAYLOAD_BYTES.to_bytes(4, "big")
        reader = FrameReader()
        assert reader.feed(header) == []  # waiting for payload, not rejected

    def test_poisoned_reader_re_raises(self):
        reader = FrameReader()
        with pytest.raises(FrameError):
            reader.feed(b"\x00" * HEADER_BYTES)
        with pytest.raises(FrameError):
            reader.feed(encode_frame(1, b"fine"))
        with pytest.raises(FrameError):
            reader.finish()

    def test_reader_accounting(self):
        reader = FrameReader()
        frame = encode_frame(1, b"abc")
        reader.feed(frame)
        assert reader.frames_decoded == 1
        assert reader.offset == len(frame)
        assert reader.buffered_bytes == 0

    def test_header_trailer_constants(self):
        # The frame layout documented in docs/deployment.md.
        assert HEADER_BYTES == len(MAGIC) + 1 + 4
        assert TRAILER_BYTES == 4
        assert len(encode_frame(1, b"xyz")) == HEADER_BYTES + 3 + TRAILER_BYTES


class TestMessages:
    @pytest.mark.parametrize(
        "message",
        [
            Hello(client_ids=(1, 2, 3), cursors={1: 4}, fingerprint={"seed": 0}),
            Welcome(heartbeat_interval=2.0, client_timeout=10.0, replayed=3),
            TaskEnvelope(client_id=1, seq=9, op="train", blob=b"blob", is_wire=True, steps=2),
            UpdateEnvelope(client_id=1, seq=9, stats={"loss": 1.0}),
            Ack(client_id=2, seq=5),
            Heartbeat(seq=1),
            HeartbeatAck(seq=1),
            Goodbye(reason="done"),
        ],
    )
    def test_round_trip(self, message):
        frame_type, body = encode_message(message)
        assert decode_message(frame_type, body) == message

    def test_vocabulary_is_bijective(self):
        assert len(set(MESSAGE_TYPES.values())) == len(MESSAGE_TYPES)

    def test_unknown_type_is_typed_error(self):
        with pytest.raises(MessageDecodeError):
            decode_message(0x5A, pickle.dumps(Ack(client_id=1, seq=1)))

    def test_garbage_body_is_typed_error(self):
        frame_type, _ = encode_message(Ack(client_id=1, seq=1))
        with pytest.raises(MessageDecodeError):
            decode_message(frame_type, b"\x00not a pickle")

    def test_wrong_body_for_type_is_typed_error(self):
        frame_type, _ = encode_message(Heartbeat(seq=1))
        with pytest.raises(MessageDecodeError):
            decode_message(frame_type, pickle.dumps(Ack(client_id=1, seq=1)))
