"""Tests for the local-training compute engine across the federated stack.

Pins the PR's cross-layer guarantees:

* **Warm executors** — the process pool and the thread pool each spawn
  workers exactly once per backend lifetime, however many rounds run.
* **Thread backend** — bit-identical to serial (with and without a wire
  channel), because each client's operation sequence is independent of
  scheduling.
* **float32 engine** — identical across backends, loss curves within
  tolerance of float64, float64 at every state boundary (FlatState, wire
  codecs, checkpoints), and checkpoint fingerprints that refuse to resume
  across a dtype switch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import (
    CheckpointManager,
    ClientTask,
    FederatedClient,
    FLConfig,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    create_algorithm,
    create_channel,
)
from repro.fl.parameters import FlatState

from test_execution import (
    TINY_CONFIG,
    make_factory,
    run_named,
    states_equal,
)

TINY_FLOAT32 = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
    compute_dtype="float32",
)


@pytest.fixture
def make_clients(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
    num_channels,
):
    def build(config: FLConfig = TINY_CONFIG):
        factory = make_factory(num_channels)
        return [
            FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, config),
            FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, config),
        ]

    return build


class TestWarmPoolLifecycle:
    def test_process_pool_spawns_once_across_rounds(self, make_clients, num_channels):
        backend = ProcessPoolBackend(workers=2)
        assert backend.spawn_count == 0
        run_named("fedavg", make_clients(), num_channels, backend=backend)
        # TINY_CONFIG runs 2 rounds => at least 2 map calls on one pool.
        assert backend.spawn_count == 1

    def test_process_pool_spawns_once_across_map_calls(self, make_clients, num_channels):
        backend = ProcessPoolBackend(workers=2)
        clients = make_clients()
        backend.bind(clients)
        state = clients[0].initial_state()
        with backend:
            for _ in range(3):
                backend.map(
                    [ClientTask(client_index=i, state=state, steps=1) for i in range(2)]
                )
            assert backend.spawn_count == 1

    def test_close_then_map_respawns(self, make_clients, num_channels):
        backend = ProcessPoolBackend(workers=2)
        clients = make_clients()
        backend.bind(clients)
        state = clients[0].initial_state()
        try:
            backend.map([ClientTask(client_index=0, state=state, steps=1)])
            backend.close()
            backend.map([ClientTask(client_index=0, state=state, steps=1)])
            assert backend.spawn_count == 2
        finally:
            backend.close()

    def test_rebind_same_roster_keeps_pool(self, make_clients, num_channels):
        backend = ProcessPoolBackend(workers=2)
        clients = make_clients()
        backend.bind(clients)
        state = clients[0].initial_state()
        try:
            backend.map([ClientTask(client_index=0, state=state, steps=1)])
            backend.bind(clients)  # identical roster: the warm pool survives
            backend.map([ClientTask(client_index=0, state=state, steps=1)])
            assert backend.spawn_count == 1
            backend.bind(list(reversed(clients)))  # different roster: recycle
            backend.map([ClientTask(client_index=0, state=state, steps=1)])
            assert backend.spawn_count == 2
        finally:
            backend.close()

    def test_thread_pool_spawns_once(self, make_clients, num_channels):
        backend = ThreadPoolBackend(workers=2)
        run_named("fedavg", make_clients(), num_channels, backend=backend)
        assert backend.spawn_count == 1

    def test_thread_pool_context_manager(self, make_clients, num_channels):
        clients = make_clients()
        state = clients[0].initial_state()
        with ThreadPoolBackend(workers=2) as backend:
            backend.bind(clients)
            updates = backend.map(
                [ClientTask(client_index=i, state=state, steps=1) for i in range(2)]
            )
            assert [update.client_index for update in updates] == [0, 1]
        assert backend._executor is None


class TestThreadBackendBitIdentity:
    @pytest.mark.parametrize("algorithm", ["fedavg", "fedprox", "fedavgm"])
    def test_matches_serial(self, algorithm, make_clients, num_channels):
        serial = run_named(algorithm, make_clients(), num_channels, backend=SerialBackend())
        threaded = run_named(
            algorithm, make_clients(), num_channels, backend=ThreadPoolBackend(workers=2)
        )
        assert states_equal(serial.global_state, threaded.global_state)
        assert [r.mean_loss for r in serial.history] == [r.mean_loss for r in threaded.history]

    def test_matches_serial_through_channel(self, make_clients, num_channels):
        def run(backend):
            algorithm = create_algorithm(
                "fedavg",
                make_clients(),
                make_factory(num_channels),
                TINY_CONFIG,
                backend=backend,
                channel=create_channel("quantize", compression_bits=8),
            )
            try:
                return algorithm.run()
            finally:
                backend.close()

        serial = run(SerialBackend())
        threaded = run(ThreadPoolBackend(workers=2))
        assert states_equal(serial.global_state, threaded.global_state)


class TestFloat32Engine:
    def test_identical_across_backends(self, make_clients, num_channels):
        serial = run_named(
            "fedavg", make_clients(TINY_FLOAT32), num_channels,
            config=TINY_FLOAT32, backend=SerialBackend(),
        )
        process = run_named(
            "fedavg", make_clients(TINY_FLOAT32), num_channels,
            config=TINY_FLOAT32, backend=ProcessPoolBackend(workers=2),
        )
        threaded = run_named(
            "fedavg", make_clients(TINY_FLOAT32), num_channels,
            config=TINY_FLOAT32, backend=ThreadPoolBackend(workers=2),
        )
        assert states_equal(serial.global_state, process.global_state)
        assert states_equal(serial.global_state, threaded.global_state)

    @pytest.mark.parametrize("algorithm", ["fedavg", "fedprox"])
    def test_loss_curve_tracks_float64(self, algorithm, make_clients, num_channels):
        f64 = run_named(algorithm, make_clients(), num_channels, backend=SerialBackend())
        f32 = run_named(
            algorithm, make_clients(TINY_FLOAT32), num_channels,
            config=TINY_FLOAT32, backend=SerialBackend(),
        )
        np.testing.assert_allclose(
            [r.mean_loss for r in f32.history],
            [r.mean_loss for r in f64.history],
            rtol=1e-3,
        )

    def test_states_stay_float64_at_every_boundary(self, make_clients, num_channels):
        training = run_named(
            "fedavg", make_clients(TINY_FLOAT32), num_channels,
            config=TINY_FLOAT32, backend=SerialBackend(),
        )
        state = training.global_state
        assert isinstance(state, FlatState)
        assert state.vector.dtype == np.float64
        assert all(value.dtype == np.float64 for value in state.values())

    def test_state_round_trips_through_codecs(self, make_clients, num_channels):
        training = run_named(
            "fedavg", make_clients(TINY_FLOAT32), num_channels,
            config=TINY_FLOAT32, backend=SerialBackend(),
        )
        state = training.global_state
        from repro.fl.transport import IdentityCodec

        codec = IdentityCodec()
        decoded = codec.decode(codec.encode(state))
        assert states_equal(state, decoded)
        assert all(value.dtype == np.float64 for value in decoded.values())

    def test_checkpoint_resume_bit_identical(self, make_clients, num_channels, tmp_path):
        from dataclasses import replace

        long_config = TINY_FLOAT32
        short_config = replace(long_config, rounds=1)
        uninterrupted = run_named(
            "fedavg", make_clients(long_config), num_channels, config=long_config,
            backend=SerialBackend(),
        )
        run_named(
            "fedavg", make_clients(short_config), num_channels, config=short_config,
            backend=SerialBackend(), checkpoint=CheckpointManager(tmp_path),
        )
        resumed = run_named(
            "fedavg", make_clients(long_config), num_channels, config=long_config,
            backend=SerialBackend(), checkpoint=CheckpointManager(tmp_path),
        )
        assert states_equal(uninterrupted.global_state, resumed.global_state)

    def test_resume_across_dtype_switch_rejected(self, make_clients, num_channels, tmp_path):
        run_named(
            "fedavg", make_clients(TINY_FLOAT32), num_channels, config=TINY_FLOAT32,
            backend=SerialBackend(), checkpoint=CheckpointManager(tmp_path),
        )
        with pytest.raises(ValueError):
            run_named(
                "fedavg", make_clients(), num_channels, config=TINY_CONFIG,
                backend=SerialBackend(), checkpoint=CheckpointManager(tmp_path),
            )

    def test_float64_default_untouched_by_dtype_machinery(self, make_clients, num_channels):
        """A default-config run never casts: params stay float64 throughout."""
        clients = make_clients()
        run_named("fedavg", clients, num_channels, backend=SerialBackend())
        model = clients[0]._model
        assert model.compute_dtype == np.float64
        assert all(p.data.dtype == np.float64 for p in model.parameters())


class TestConfigPlumbing:
    def test_flconfig_validates_dtype(self):
        with pytest.raises(ValueError):
            FLConfig(compute_dtype="float16")

    def test_experiment_config_with_execution(self):
        from repro.experiments import smoke

        config = smoke("flnet")
        assert config.fl.compute_dtype == "float64"
        fast = config.with_execution(compute_dtype="float32", backend="thread", workers=2)
        assert fast.fl.compute_dtype == "float32"
        assert fast.backend == "thread"
        reset = fast.with_execution(compute_dtype=None)
        assert reset.fl.compute_dtype == "float64"
        assert reset.backend == "thread"  # untouched

    def test_experiment_config_accepts_thread_backend(self):
        from repro.experiments import ExperimentRunner, smoke

        config = smoke("flnet").with_execution(backend="thread", workers=3)
        runner = ExperimentRunner(config)
        built = runner.execution_backend()
        assert isinstance(built, ThreadPoolBackend)
        assert built.workers == 3
