"""End-to-end tests for population-scale federation.

Lazy client virtualization (:mod:`repro.fl.population`) promises two things:

* **laziness** — nothing is materialized before the sampler selects a
  client, and streaming rounds release each client right after its update
  is folded, so peak materialization is bounded by the cohort;
* **bit-parity** — a sampled run over a virtualized population under
  ``--aggregation streaming``/``sharded`` produces the *identical* global
  state as the historical GEMV path, across execution backends and through
  checkpoint resume (the parity buffer covers every small cohort).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.clients import ClientData, ClientSpec
from repro.fl import (
    CheckpointManager,
    ClientDirectory,
    FederatedClient,
    FederatedServer,
    FLConfig,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    create_aggregator,
    create_algorithm,
    create_scheduler,
    initial_rng_state,
)
from repro.fl import SeededModelFactory
from repro.models import FLNet

POPULATION_ALGORITHMS = ("fedavg", "fedprox", "fedavgm", "dp_fedprox")

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


class TinyModelBuilder:
    """Module-level builder so handles stay picklable for the process pool."""

    def __init__(self, channels: int):
        self.channels = channels

    def __call__(self, seed: int) -> FLNet:
        return FLNet(self.channels, hidden_filters=8, kernel_size=5, seed=seed)


def make_factory(num_channels: int) -> SeededModelFactory:
    return SeededModelFactory(TinyModelBuilder(num_channels), base_seed=0)


def states_equal(left, right) -> bool:
    """Bit-exact equality of two state dictionaries."""
    return set(left) == set(right) and all(np.array_equal(left[k], right[k]) for k in left)


@pytest.fixture
def client_data(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
):
    """Two base data partitions the population cycles through."""
    return [
        ClientData(
            ClientSpec(1, "iscas89", 2, 2, 6, 4), tiny_train_dataset, tiny_test_dataset
        ),
        ClientData(
            ClientSpec(2, "itc99", 2, 1, 6, 2), tiny_train_dataset_itc, tiny_test_dataset_itc
        ),
    ]


@pytest.fixture
def make_directory(client_data, num_channels):
    def build(population, config=TINY_CONFIG):
        return ClientDirectory(
            client_data, make_factory(num_channels), config, population=population
        )

    return build


def run_population(
    name,
    directory,
    num_channels,
    config=TINY_CONFIG,
    aggregation="gemv",
    backend=None,
    checkpoint=None,
    scheduler=None,
):
    """One algorithm run over a virtualized population; returns (training, server)."""
    server = FederatedServer(aggregator=create_aggregator(aggregation))
    algorithm = create_algorithm(
        name,
        list(directory.handles),
        make_factory(num_channels),
        config,
        server=server,
        backend=backend,
        checkpoint=checkpoint,
        scheduler=scheduler,
    )
    try:
        return algorithm.run(), server
    finally:
        if backend is not None:
            backend.close()


def sampling_scheduler(clients_per_round=3, **options):
    return create_scheduler(clients_per_round=clients_per_round, seed=0, **options)


class TestLaziness:
    def test_directory_builds_nothing_eagerly(self, make_directory):
        directory = make_directory(10_000)
        assert len(directory) == 10_000
        assert directory.eager_clients == 0
        # Every eager roster read a round loop performs stays virtual.
        handle = directory[4321]
        assert handle.client_id == 4322
        assert handle.num_samples == directory[4321 % 2].num_samples
        assert handle.rng_state == initial_rng_state(4322)
        assert not handle.is_materialized
        assert directory.eager_clients == 0
        assert directory.total_materializations == 0

    def test_population_cycles_base_partitions(self, make_directory):
        directory = make_directory(7)
        assert [h.spec.base_index for h in directory] == [0, 1, 0, 1, 0, 1, 0]
        assert [h.client_id for h in directory] == [1, 2, 3, 4, 5, 6, 7]

    def test_handle_matches_eager_client_rng(self, make_directory, client_data, num_channels):
        directory = make_directory(5)
        handle = directory[2]
        eager = FederatedClient.from_client_data(
            ClientData(ClientSpec(3, "iscas89", 2, 2, 6, 4), client_data[0].train, client_data[0].test),
            make_factory(num_channels),
            TINY_CONFIG,
        )
        assert handle.rng_state == eager.rng_state

    def test_release_persists_the_rng_stream(self, make_directory):
        directory = make_directory(3)
        handle = directory[0]
        client = handle.materialize()
        assert directory.eager_clients == 1
        # Advance the client's private RNG, as local training would.
        client._rng.standard_normal(17)
        advanced = client.rng_state
        handle.release()
        assert directory.eager_clients == 0
        assert not handle.is_materialized
        assert handle.rng_state == advanced  # captured, not reset
        rebuilt = handle.materialize()
        assert rebuilt is not client  # a genuinely fresh client...
        assert rebuilt.rng_state == advanced  # ...continuing the same stream
        assert directory.total_materializations == 2
        assert directory.total_releases == 1
        assert directory.peak_materialized == 1

    def test_invalid_directories_are_rejected(self, client_data, num_channels):
        with pytest.raises(ValueError, match="population must be positive"):
            ClientDirectory(client_data, make_factory(num_channels), TINY_CONFIG, population=0)
        with pytest.raises(ValueError, match="base client partition"):
            ClientDirectory([], make_factory(num_channels), TINY_CONFIG, population=5)

    def test_streaming_run_bounds_materialization(self, make_directory, num_channels):
        directory = make_directory(10_000)
        training, server = run_population(
            "fedavg",
            directory,
            num_channels,
            aggregation="streaming",
            scheduler=sampling_scheduler(clients_per_round=3),
        )
        assert training.global_state is not None
        # Folded-and-released one at a time: never more than one client alive.
        assert directory.eager_clients == 0
        assert directory.peak_materialized <= 3
        assert directory.total_materializations == directory.total_releases
        assert server.folded_updates == TINY_CONFIG.rounds * 3


class TestStreamingParity:
    @pytest.mark.parametrize("algorithm", POPULATION_ALGORITHMS)
    def test_streaming_matches_gemv_bitwise(self, algorithm, make_directory, num_channels):
        """The tentpole guarantee: sampled population runs are mode-invariant."""
        population = 10_000 if algorithm == "fedavg" else 200
        gemv, _ = run_population(
            algorithm,
            make_directory(population),
            num_channels,
            scheduler=sampling_scheduler(clients_per_round=9),
        )
        streamed, _ = run_population(
            algorithm,
            make_directory(population),
            num_channels,
            aggregation="streaming",
            scheduler=sampling_scheduler(clients_per_round=9),
        )
        assert states_equal(gemv.global_state, streamed.global_state)
        assert [r.mean_loss for r in gemv.history] == [r.mean_loss for r in streamed.history]

    def test_sharded_matches_gemv_bitwise(self, make_directory, num_channels):
        gemv, _ = run_population(
            "fedavg",
            make_directory(200),
            num_channels,
            scheduler=sampling_scheduler(clients_per_round=9),
        )
        sharded, _ = run_population(
            "fedavg",
            make_directory(200),
            num_channels,
            aggregation="sharded",
            scheduler=sampling_scheduler(clients_per_round=9),
        )
        assert states_equal(gemv.global_state, sharded.global_state)

    @pytest.mark.parametrize(
        "backend_factory", [ThreadPoolBackend, lambda: ProcessPoolBackend(workers=2)]
    )
    def test_streaming_identical_across_backends(
        self, backend_factory, make_directory, num_channels
    ):
        serial, _ = run_population(
            "fedavg",
            make_directory(200),
            num_channels,
            aggregation="streaming",
            backend=SerialBackend(),
            scheduler=sampling_scheduler(clients_per_round=5),
        )
        parallel, _ = run_population(
            "fedavg",
            make_directory(200),
            num_channels,
            aggregation="streaming",
            backend=backend_factory(),
            scheduler=sampling_scheduler(clients_per_round=5),
        )
        assert states_equal(serial.global_state, parallel.global_state)

    def test_streaming_matches_gemv_under_deadline_policy(
        self, make_directory, num_channels
    ):
        """Dropped stragglers are skipped by the arrival-order fold too."""

        def scheduler():
            return sampling_scheduler(
                clients_per_round=5,
                straggler="lognormal",
                round_policy="deadline",
                deadline=12.0,
            )

        gemv, _ = run_population(
            "fedavg", make_directory(50), num_channels, scheduler=scheduler()
        )
        streamed, _ = run_population(
            "fedavg",
            make_directory(50),
            num_channels,
            aggregation="streaming",
            scheduler=scheduler(),
        )
        assert states_equal(gemv.global_state, streamed.global_state)

    def test_streaming_matches_gemv_under_fedbuff(self, make_directory, num_channels):
        """The staleness-weighted delta fold agrees at parity buffer sizes."""

        def scheduler():
            return sampling_scheduler(
                clients_per_round=4,
                round_policy="fedbuff",
                buffer_size=2,
                straggler="lognormal",
            )

        gemv, _ = run_population(
            "fedavg", make_directory(50), num_channels, scheduler=scheduler()
        )
        streamed, _ = run_population(
            "fedavg",
            make_directory(50),
            num_channels,
            aggregation="streaming",
            scheduler=scheduler(),
        )
        assert states_equal(gemv.global_state, streamed.global_state)
        assert [r.mean_loss for r in gemv.history] == [r.mean_loss for r in streamed.history]


class TestCheckpointResume:
    def test_streaming_resume_is_bit_identical(
        self, tmp_path, make_directory, num_channels
    ):
        """Interrupt a streaming population run; resume must match gemv."""
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=4)
        short_config = replace(TINY_CONFIG, rounds=2)

        def scheduler():
            return sampling_scheduler(clients_per_round=3, straggler="lognormal")

        uninterrupted, _ = run_population(
            "fedavg",
            make_directory(50, long_config),
            num_channels,
            config=long_config,
            scheduler=scheduler(),
        )
        run_population(
            "fedavg",
            make_directory(50, short_config),
            num_channels,
            config=short_config,
            aggregation="streaming",
            checkpoint=CheckpointManager(tmp_path),
            scheduler=scheduler(),
        )
        resumed, _ = run_population(
            "fedavg",
            make_directory(50, long_config),
            num_channels,
            config=long_config,
            aggregation="streaming",
            checkpoint=CheckpointManager(tmp_path),
            scheduler=scheduler(),
        )
        assert states_equal(uninterrupted.global_state, resumed.global_state)
        assert [r.round_index for r in resumed.history] == [2, 3]

    def test_fedbuff_resume_parity_between_modes(
        self, tmp_path, make_directory, num_channels
    ):
        """FedBuff resume is deterministic (not uninterrupted-identical);
        the streaming delta fold must land exactly where the gemv fold does."""
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=4)
        short_config = replace(TINY_CONFIG, rounds=2)

        def scheduler():
            return sampling_scheduler(
                clients_per_round=3,
                round_policy="fedbuff",
                buffer_size=2,
                straggler="lognormal",
            )

        def interrupted_then_resumed(aggregation, directory_path):
            run_population(
                "fedavg",
                make_directory(50, short_config),
                num_channels,
                config=short_config,
                aggregation=aggregation,
                checkpoint=CheckpointManager(directory_path),
                scheduler=scheduler(),
            )
            resumed, _ = run_population(
                "fedavg",
                make_directory(50, long_config),
                num_channels,
                config=long_config,
                aggregation=aggregation,
                checkpoint=CheckpointManager(directory_path),
                scheduler=scheduler(),
            )
            return resumed

        gemv = interrupted_then_resumed("gemv", tmp_path / "gemv")
        streamed = interrupted_then_resumed("streaming", tmp_path / "streaming")
        assert states_equal(gemv.global_state, streamed.global_state)
        assert [r.round_index for r in streamed.history] == [2, 3]

    def test_aggregation_mode_is_fingerprinted(
        self, tmp_path, make_directory, num_channels
    ):
        """A sharded checkpoint must not silently resume a streaming run."""
        run_population(
            "fedavg",
            make_directory(20),
            num_channels,
            aggregation="sharded",
            checkpoint=CheckpointManager(tmp_path),
            scheduler=sampling_scheduler(clients_per_round=3),
        )
        with pytest.raises(ValueError, match="written by a different run"):
            run_population(
                "fedavg",
                make_directory(20),
                num_channels,
                aggregation="streaming",
                checkpoint=CheckpointManager(tmp_path),
                scheduler=sampling_scheduler(clients_per_round=3),
            )


class TestHandleTransport:
    def test_handle_pickles_as_spec_plus_rng(self, make_directory):
        import pickle

        directory = make_directory(5)
        handle = directory[3]
        client = handle.materialize()
        client._rng.standard_normal(5)
        expected_rng = client.rng_state
        clone = pickle.loads(pickle.dumps(handle))
        assert not clone.is_materialized  # ships virtual, rebuilt on demand
        assert clone.client_id == handle.client_id
        assert clone.rng_state == expected_rng
        handle.release()

    def test_directory_pickle_drops_counters(self, make_directory):
        import pickle

        directory = make_directory(6)
        directory[0].materialize()
        clone = pickle.loads(pickle.dumps(directory))
        assert clone.population == 6
        assert clone.eager_clients == 0
        assert clone.total_materializations == 0
