"""Tests for BLAS-thread-aware scheduling in the execution backends.

Covers the worker-count clamp (requested > cores must not silently
oversubscribe), the per-backend BLAS policy resolution, the post-fork
worker pinning hook, and the config/runner/CLI plumbing of
``--blas-threads``.
"""

from __future__ import annotations

import logging

import pytest

from repro.experiments import ExperimentRunner, smoke
from repro.fl import ProcessPoolBackend, SerialBackend, ThreadPoolBackend, create_backend
from repro.fl.execution import clamp_workers
from repro.fl.execution import backend as backend_module
from repro.fl.execution.backend import ClientTask, _init_worker
from repro.utils.threadpools import blas_info, get_blas_threads, set_blas_threads


def controllable() -> bool:
    return blas_info().controllable


class ProbeClient:
    """Stub client recording the BLAS thread count its training step saw."""

    def __init__(self, client_id: int = 1):
        self.client_id = client_id
        self.observed = None

    def local_train(self, state, steps=None, proximal_mu=None):
        self.observed = get_blas_threads()
        return state, None


class TestWorkerClamp:
    def test_within_cores_unchanged(self, monkeypatch):
        monkeypatch.setattr(backend_module.os, "cpu_count", lambda: 8)
        assert clamp_workers(4) == 4
        assert clamp_workers(8) == 8

    def test_above_cores_clamped_with_warning(self, monkeypatch, caplog):
        monkeypatch.setattr(backend_module.os, "cpu_count", lambda: 4)
        with caplog.at_level(logging.WARNING, logger="repro.fl.execution.backend"):
            assert clamp_workers(16) == 4
        assert any("clamping" in record.message for record in caplog.records)

    @pytest.mark.parametrize("backend_cls", [ProcessPoolBackend, ThreadPoolBackend])
    def test_backends_keep_requested_but_clamp_effective(self, monkeypatch, backend_cls):
        monkeypatch.setattr(backend_module.os, "cpu_count", lambda: 2)
        backend = backend_cls(workers=6)
        # The request stays visible; the pool size is clamped.
        assert backend.workers == 6
        assert backend.effective_workers == 2


class TestPolicyResolution:
    def test_serial_auto_leaves_blas_alone(self):
        assert SerialBackend().resolved_blas_threads(1) is None

    def test_pools_divide_cores_across_workers(self, monkeypatch):
        monkeypatch.setattr(backend_module.os, "cpu_count", lambda: 8)
        backend = ProcessPoolBackend(workers=4)
        assert backend.effective_workers == 4
        # resolve uses the real machine's cores; patch the resolver's view too.
        monkeypatch.setattr("repro.utils.threadpools.os.cpu_count", lambda: 8)
        assert backend.resolved_blas_threads(4) == 2

    def test_explicit_policy_pins_exactly(self):
        backend = ThreadPoolBackend(workers=2, blas_threads=3)
        assert backend.resolved_blas_threads(2) == 3

    def test_none_policy_disables_management(self):
        backend = ThreadPoolBackend(workers=2, blas_threads=None)
        assert backend.resolved_blas_threads(2) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=2, blas_threads=0)
        with pytest.raises(ValueError):
            SerialBackend(blas_threads="fast")

    def test_create_backend_plumbs_policy(self):
        assert create_backend("serial", blas_threads=2).blas_threads == 2
        assert create_backend("process", workers=2, blas_threads=1).blas_threads == 1
        assert create_backend("thread", workers=2, blas_threads=None).blas_threads is None
        # Default stays auto.
        assert create_backend("process", workers=2).blas_threads == "auto"


class TestRuntimePinning:
    def test_worker_initializer_pins_blas(self):
        if not controllable():
            pytest.skip("BLAS library exposes no runtime thread setter")
        previous = get_blas_threads()
        try:
            _init_worker([], blas_threads=2)
            assert get_blas_threads() == 2
        finally:
            set_blas_threads(previous)

    def test_worker_initializer_none_leaves_blas(self):
        before = get_blas_threads()
        _init_worker([], blas_threads=None)
        assert get_blas_threads() == before

    def test_serial_explicit_policy_pins_round_and_restores(self):
        if not controllable():
            pytest.skip("BLAS library exposes no runtime thread setter")
        previous = get_blas_threads()
        probe = ProbeClient()
        backend = SerialBackend(blas_threads=2)
        backend.bind([probe])
        backend.map([ClientTask(client_index=0, state={})])
        assert probe.observed == 2
        assert get_blas_threads() == previous

    def test_thread_pool_pins_during_map_and_restores(self):
        if not controllable():
            pytest.skip("BLAS library exposes no runtime thread setter")
        previous = get_blas_threads()
        probes = [ProbeClient(1), ProbeClient(2)]
        backend = ThreadPoolBackend(workers=2, blas_threads=1)
        backend.bind(probes)
        try:
            backend.map(
                [ClientTask(client_index=0, state={}), ClientTask(client_index=1, state={})]
            )
        finally:
            backend.close()
        assert [probe.observed for probe in probes] == [1, 1]
        assert get_blas_threads() == previous


class TestConfigPlumbing:
    def test_config_validates_policy(self):
        with pytest.raises(ValueError):
            smoke().with_execution(blas_threads=-1)
        with pytest.raises(ValueError):
            smoke().with_execution(blas_threads="turbo")

    def test_with_execution_round_trip(self):
        config = smoke()
        assert config.blas_threads == "auto"
        pinned = config.with_execution(blas_threads=2)
        assert pinned.blas_threads == 2
        # Omitting the option keeps the current value; None resets it.
        assert pinned.with_execution(workers=2).blas_threads == 2
        assert pinned.with_execution(blas_threads=None).blas_threads is None

    def test_runner_hands_policy_to_backend(self):
        config = smoke().with_execution(backend="thread", workers=2, blas_threads=1)
        backend = ExperimentRunner(config).execution_backend()
        try:
            assert isinstance(backend, ThreadPoolBackend)
            assert backend.blas_threads == 1
        finally:
            backend.close()

    def test_cli_parses_blas_threads(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["reproduce"]).blas_threads == "auto"
        assert parser.parse_args(["reproduce", "--blas-threads", "2"]).blas_threads == 2
        assert parser.parse_args(["reproduce", "--blas-threads", "auto"]).blas_threads == "auto"
