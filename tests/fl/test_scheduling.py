"""Tests for the client-population scheduling subsystem.

The central guarantees under test:

* samplers / availability / latency models are deterministic, seeded, and
  checkpointable (state round-trips),
* a scheduler configured to full-sync / no-straggler behavior is
  **bit-identical** to running without a scheduler at all,
* sampled cohorts are identical across execution backends (serial vs.
  process pool), and across checkpoint resume under partial participation
  with stragglers,
* the deadline policy drops stragglers (recorded, discarded) and aggregates
  only the survivors,
* FedBuff with buffer size K and zero latency is bit-identical to
  synchronous FedAvg over the same cohort.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import (
    CheckpointManager,
    FederatedClient,
    FLConfig,
    ProcessPoolBackend,
    SeededModelFactory,
    SerialBackend,
    create_algorithm,
    create_scheduler,
)
from repro.fl.scheduling import (
    AlwaysAvailable,
    BernoulliAvailability,
    DayNightAvailability,
    FullParticipation,
    LogNormalLatency,
    ParetoLatency,
    RoundScheduler,
    UniformSampler,
    VirtualClock,
    WeightedSampler,
    ZeroLatency,
    create_availability,
    create_latency,
    create_sampler,
)
from repro.models import FLNet

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


class TinyModelBuilder:
    """Module-level builder so clients stay picklable for the process pool."""

    def __init__(self, channels: int):
        self.channels = channels

    def __call__(self, seed: int) -> FLNet:
        return FLNet(self.channels, hidden_filters=8, kernel_size=5, seed=seed)


def make_factory(num_channels: int) -> SeededModelFactory:
    return SeededModelFactory(TinyModelBuilder(num_channels), base_seed=0)


@pytest.fixture
def make_clients(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
    num_channels,
):
    """A callable producing a *fresh* 2-client roster (fresh RNG streams)."""

    def build(config: FLConfig = TINY_CONFIG):
        factory = make_factory(num_channels)
        return [
            FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, config),
            FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, config),
        ]

    return build


def states_equal(left, right) -> bool:
    """Bit-exact equality of two state dictionaries."""
    return set(left) == set(right) and all(np.array_equal(left[k], right[k]) for k in left)


def run_named(
    name,
    clients,
    num_channels,
    config=TINY_CONFIG,
    backend=None,
    checkpoint=None,
    scheduler=None,
):
    algorithm = create_algorithm(
        name,
        clients,
        make_factory(num_channels),
        config,
        backend=backend,
        checkpoint=checkpoint,
        scheduler=scheduler,
    )
    try:
        return algorithm.run()
    finally:
        if backend is not None:
            backend.close()


class TestSamplers:
    def test_full_participation_returns_all_available(self):
        sampler = FullParticipation()
        sampler.bind(5)
        assert sampler.select(0, [3, 1, 4]) == [1, 3, 4]

    def test_full_participation_size_constrained_is_round_robin(self):
        # Constrained refills (the fedbuff loop) rotate through the roster
        # instead of always picking the lowest indices.
        sampler = FullParticipation()
        sampler.bind(4)
        assert sampler.select(0, [0, 1, 2, 3], size=2) == [0, 1]
        assert sampler.select(1, [0, 1, 2, 3], size=2) == [2, 3]
        assert sampler.select(2, [0, 1, 2, 3], size=2) == [0, 1]
        snapshot = sampler.state()
        first = sampler.select(3, [0, 1, 2, 3], size=3)
        sampler.set_state(snapshot)
        assert sampler.select(3, [0, 1, 2, 3], size=3) == first

    def test_uniform_fraction_size(self):
        sampler = UniformSampler(fraction=0.5, seed=0)
        sampler.bind(10)
        cohort = sampler.select(0, list(range(10)))
        assert len(cohort) == 5
        assert cohort == sorted(cohort)
        assert all(0 <= index < 10 for index in cohort)

    def test_uniform_clients_per_round(self):
        sampler = UniformSampler(clients_per_round=3, seed=0)
        sampler.bind(10)
        assert len(sampler.select(0, list(range(10)))) == 3
        # Capped at availability.
        assert len(sampler.select(1, [0, 1])) == 2

    def test_same_seed_same_cohorts(self):
        draws_a = UniformSampler(fraction=0.3, seed=7)
        draws_b = UniformSampler(fraction=0.3, seed=7)
        for sampler in (draws_a, draws_b):
            sampler.bind(20)
        rounds_a = [draws_a.select(r, list(range(20))) for r in range(5)]
        rounds_b = [draws_b.select(r, list(range(20))) for r in range(5)]
        assert rounds_a == rounds_b
        # ... and the sequence actually varies between rounds.
        assert len({tuple(c) for c in rounds_a}) > 1

    def test_state_roundtrip_replays_draws(self):
        sampler = UniformSampler(fraction=0.4, seed=3)
        sampler.bind(12)
        sampler.select(0, list(range(12)))
        snapshot = sampler.state()
        first = [sampler.select(r, list(range(12))) for r in range(1, 4)]
        sampler.set_state(snapshot)
        replay = [sampler.select(r, list(range(12))) for r in range(1, 4)]
        assert first == replay

    def test_weighted_sampler_prefers_heavy_clients(self):
        sampler = WeightedSampler(clients_per_round=1, seed=0)
        sampler.bind(3, weights=[1.0, 1.0, 50.0])
        picks = [sampler.select(r, [0, 1, 2])[0] for r in range(200)]
        counts = np.bincount(picks, minlength=3)
        assert counts[2] > 150

    def test_over_selection_inflates_cohort(self):
        sampler = UniformSampler(clients_per_round=4, seed=0)
        sampler.bind(10)
        assert len(sampler.select(0, list(range(10)), multiplier=1.5)) == 6

    def test_zero_size_request_is_empty(self):
        sampler = UniformSampler(fraction=0.5, seed=0)
        sampler.bind(4)
        assert sampler.select(0, [0, 1, 2, 3], size=0) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            UniformSampler(fraction=0.0)
        with pytest.raises(ValueError, match="clients_per_round"):
            UniformSampler(clients_per_round=0)
        with pytest.raises(ValueError, match="unknown client sampler"):
            create_sampler("roulette")

    def test_create_sampler_inference(self):
        assert isinstance(create_sampler(None), FullParticipation)
        assert isinstance(create_sampler(None, fraction=0.5), UniformSampler)
        assert isinstance(create_sampler("weighted", clients_per_round=2), WeightedSampler)


class TestAvailability:
    def test_always(self):
        model = AlwaysAvailable()
        assert model.available(0, 1, 0.0) and model.available(5, 9, 1e9)

    def test_bernoulli_deterministic_and_restorable(self):
        model_a = BernoulliAvailability(rate=0.5, seed=11)
        model_b = BernoulliAvailability(rate=0.5, seed=11)
        seq_a = [model_a.available(i, i, 0.0) for i in range(50)]
        seq_b = [model_b.available(i, i, 0.0) for i in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        snapshot = model_a.state()
        first = [model_a.available(i, i, 0.0) for i in range(20)]
        model_a.set_state(snapshot)
        assert [model_a.available(i, i, 0.0) for i in range(20)] == first

    def test_daynight_duty_cycle(self):
        model = DayNightAvailability(duty_fraction=0.5, period=100.0)
        # Client 0 has phase 0: available for the first half of each period.
        assert model.available(0, 1, 10.0)
        assert not model.available(0, 1, 60.0)
        assert model.available(0, 1, 110.0)
        # Phases differ across clients, so cohorts rotate.
        fractions = [
            np.mean([model.available(c, c, t) for t in np.linspace(0, 99, 100)])
            for c in range(4)
        ]
        assert all(0.4 < f < 0.6 for f in fractions)

    def test_create_availability(self):
        assert isinstance(create_availability(None), AlwaysAvailable)
        assert isinstance(create_availability("bernoulli", rate=0.5), BernoulliAvailability)
        assert isinstance(create_availability("daynight"), DayNightAvailability)
        with pytest.raises(ValueError, match="unknown availability"):
            create_availability("weekends")


class TestLatency:
    def test_zero(self):
        assert ZeroLatency().sample(0, 1) == 0.0

    def test_lognormal_positive_and_deterministic(self):
        model_a = LogNormalLatency(median=10.0, sigma=0.8, seed=4)
        model_b = LogNormalLatency(median=10.0, sigma=0.8, seed=4)
        draws_a = [model_a.sample(i, i) for i in range(100)]
        draws_b = [model_b.sample(i, i) for i in range(100)]
        assert draws_a == draws_b
        assert all(d > 0 for d in draws_a)

    def test_heavytail_has_outliers(self):
        model = ParetoLatency(scale=5.0, shape=1.5, seed=0)
        draws = np.array([model.sample(i, i) for i in range(2000)])
        assert draws.min() >= 5.0
        # The heavy tail produces draws an order of magnitude over the scale.
        assert draws.max() > 50.0

    def test_state_roundtrip(self):
        model = LogNormalLatency(seed=9)
        model.sample(0, 0)
        snapshot = model.state()
        first = [model.sample(i, i) for i in range(10)]
        model.set_state(snapshot)
        assert [model.sample(i, i) for i in range(10)] == first

    def test_create_latency(self):
        assert isinstance(create_latency(None), ZeroLatency)
        assert isinstance(create_latency("lognormal"), LogNormalLatency)
        assert isinstance(create_latency("heavytail"), ParetoLatency)
        with pytest.raises(ValueError, match="unknown straggler"):
            create_latency("tortoise")


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(5.0)
        clock.advance_to(3.0)  # never rewinds
        assert clock.now == 5.0
        clock.advance_to(7.5)
        assert clock.now == 7.5
        with pytest.raises(ValueError, match="negative"):
            clock.advance(-1.0)

    def test_state_roundtrip(self):
        clock = VirtualClock()
        clock.advance(12.5)
        snapshot = clock.state()
        clock.advance(100.0)
        clock.set_state(snapshot)
        assert clock.now == 12.5


class TestCreateScheduler:
    def test_defaults_build_no_scheduler(self):
        assert create_scheduler() is None
        assert create_scheduler(round_policy="sync", availability="always", straggler="none") is None

    def test_any_option_builds_one(self):
        assert isinstance(create_scheduler(participation=0.5), RoundScheduler)
        assert isinstance(create_scheduler(straggler="lognormal"), RoundScheduler)
        assert isinstance(
            create_scheduler(round_policy="deadline", deadline=10.0), RoundScheduler
        )

    def test_deadline_policy_requires_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            create_scheduler(round_policy="deadline")

    def test_fingerprint_describes_configuration(self):
        scheduler = create_scheduler(
            participation=0.5, straggler="heavytail", round_policy="deadline", deadline=30.0
        )
        description = scheduler.describe()
        assert description["policy"] == "deadline"
        assert description["deadline"] == 30.0
        assert "uniform" in description["sampler"]
        assert "heavytail" in description["straggler"]


class TestScheduledRounds:
    def test_explicit_full_sync_matches_schedulerless_run(self, make_clients, num_channels):
        """A scheduler at its most trivial must not change a single bit."""
        plain = run_named("fedavg", make_clients(), num_channels)
        scheduled = run_named(
            "fedavg",
            make_clients(),
            num_channels,
            scheduler=create_scheduler(sampler="full"),
        )
        assert states_equal(plain.global_state, scheduled.global_state)
        assert [r.mean_loss for r in plain.history] == [r.mean_loss for r in scheduled.history]

    @pytest.mark.parametrize("algorithm", ["fedavg", "fedprox", "fedavgm", "dp_fedprox"])
    def test_sampled_cohorts_identical_across_backends(
        self, algorithm, make_clients, num_channels
    ):
        def scheduler():
            return create_scheduler(participation=0.5, straggler="lognormal", seed=0)

        serial = run_named(
            algorithm,
            make_clients(),
            num_channels,
            backend=SerialBackend(),
            scheduler=scheduler(),
        )
        parallel = run_named(
            algorithm,
            make_clients(),
            num_channels,
            backend=ProcessPoolBackend(workers=2),
            scheduler=scheduler(),
        )
        assert states_equal(serial.global_state, parallel.global_state)
        for left, right in zip(serial.history, parallel.history):
            assert left.mean_loss == right.mean_loss
            assert left.extra == right.extra

    def test_partial_participation_trains_subset(self, make_clients, num_channels):
        scheduler = create_scheduler(clients_per_round=1, seed=0)
        training = run_named("fedavg", make_clients(), num_channels, scheduler=scheduler)
        for record in training.history:
            assert record.extra["selected"] == 1
            assert record.extra["arrived"] == 1
            assert len(record.per_client_loss) == 1
        summary = scheduler.summary()
        assert summary.total_selected == 2
        assert summary.total_dropped == 0

    def test_straggler_latency_advances_virtual_clock(self, make_clients, num_channels):
        scheduler = create_scheduler(straggler="lognormal", seed=0)
        training = run_named("fedavg", make_clients(), num_channels, scheduler=scheduler)
        times = [record.extra["simulated_time_s"] for record in training.history]
        assert times == sorted(times)
        assert times[-1] > 0.0
        assert scheduler.summary().simulated_seconds == times[-1]

    def test_deadline_drops_stragglers(self, make_clients, num_channels):
        # The heavy tail guarantees some draw exceeds a tight deadline over
        # a few rounds; dropped stragglers are recorded and discarded.
        from dataclasses import replace

        config = replace(TINY_CONFIG, rounds=4)
        scheduler = create_scheduler(
            straggler="heavytail", round_policy="deadline", deadline=10.0, seed=0
        )
        training = run_named(
            "fedavg", make_clients(config), num_channels, config=config, scheduler=scheduler
        )
        summary = scheduler.summary()
        assert summary.total_selected == summary.total_arrived + summary.total_dropped
        assert summary.total_dropped > 0
        assert summary.simulated_seconds <= 4 * 10.0 + 1e-9
        dropped_rounds = [r for r in training.history if r.extra["dropped"]]
        assert dropped_rounds
        for record in dropped_rounds:
            # The dropped client's loss is not part of the round record.
            assert len(record.per_client_loss) == record.extra["arrived"]

    def test_unsupported_algorithm_warns_and_ignores_scheduler(
        self, make_clients, num_channels
    ):
        with pytest.warns(UserWarning, match="does not support client scheduling"):
            algorithm = create_algorithm(
                "local",
                make_clients(),
                make_factory(num_channels),
                TINY_CONFIG,
                scheduler=create_scheduler(participation=0.5),
            )
        assert algorithm.scheduler is None

    def test_fedbuff_rejected_for_non_delta_algorithms(self, make_clients, num_channels):
        with pytest.raises(ValueError, match="fedbuff"):
            create_algorithm(
                "fedavgm",
                make_clients(),
                make_factory(num_channels),
                TINY_CONFIG,
                scheduler=create_scheduler(round_policy="fedbuff"),
            )


class TestFedBuff:
    def test_zero_latency_full_buffer_matches_fedavg(self, make_clients, num_channels):
        """FedBuff with buffer size K and no latency *is* synchronous FedAvg."""
        plain = run_named("fedavg", make_clients(), num_channels)
        scheduler = create_scheduler(round_policy="fedbuff", buffer_size=2, seed=0)
        buffered = run_named("fedavg", make_clients(), num_channels, scheduler=scheduler)
        assert states_equal(plain.global_state, buffered.global_state)
        assert [r.mean_loss for r in plain.history] == [r.mean_loss for r in buffered.history]
        summary = scheduler.summary()
        assert summary.buffered_aggregations == TINY_CONFIG.rounds
        assert summary.mean_staleness == 0.0

    def test_stragglers_produce_staleness(self, make_clients, num_channels):
        from dataclasses import replace

        config = replace(TINY_CONFIG, rounds=4)
        scheduler = create_scheduler(
            round_policy="fedbuff", buffer_size=1, straggler="lognormal", seed=0
        )
        training = run_named(
            "fedavg", make_clients(config), num_channels, config=config, scheduler=scheduler
        )
        summary = scheduler.summary()
        assert summary.buffered_aggregations == 4
        assert summary.updates_buffered == 4
        # Buffer size 1 with two concurrent clients: the second arrival of
        # each batch is one aggregation stale.
        assert summary.max_staleness >= 1
        assert summary.simulated_seconds > 0.0
        assert len(training.history) == 4
        for record in training.history:
            assert "mean_staleness" in record.extra

    def test_fedbuff_measures_transport_bytes(self, make_clients, num_channels):
        from repro.fl import create_channel

        channel = create_channel("none")
        scheduler = create_scheduler(round_policy="fedbuff", buffer_size=2, seed=0)
        algorithm = create_algorithm(
            "fedavg",
            make_clients(),
            make_factory(num_channels),
            TINY_CONFIG,
            channel=channel,
            scheduler=scheduler,
        )
        training = algorithm.run()
        assert training.global_state is not None
        summary = channel.summary()
        assert summary.total_uplink_bytes > 0
        assert summary.total_downlink_bytes > 0

    def test_fedbuff_identical_across_backends(self, make_clients, num_channels):
        def scheduler():
            return create_scheduler(
                round_policy="fedbuff", buffer_size=1, straggler="lognormal", seed=0
            )

        serial = run_named(
            "fedavg", make_clients(), num_channels, backend=SerialBackend(), scheduler=scheduler()
        )
        parallel = run_named(
            "fedavg",
            make_clients(),
            num_channels,
            backend=ProcessPoolBackend(workers=2),
            scheduler=scheduler(),
        )
        assert states_equal(serial.global_state, parallel.global_state)


class TestScheduledCheckpointResume:
    @pytest.mark.parametrize("algorithm", ["fedavg", "dp_fedprox"])
    @pytest.mark.parametrize("policy_options", [
        {"participation": 0.5, "straggler": "lognormal"},
        {"participation": 0.5, "straggler": "heavytail", "round_policy": "deadline", "deadline": 12.0},
    ])
    def test_resume_matches_uninterrupted_run(
        self, algorithm, policy_options, tmp_path, make_clients, num_channels
    ):
        """Interrupt a sampled, straggling run; the resume must be bit-identical.

        Extends the RNG-state resume guarantee to the scheduler: the
        sampler / latency RNG states and the virtual clock are restored
        from the checkpoint, so the resumed run draws the same cohorts and
        latencies as an uninterrupted one.
        """
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=4)
        short_config = replace(TINY_CONFIG, rounds=2)

        def scheduler():
            return create_scheduler(seed=0, **policy_options)

        uninterrupted = run_named(
            algorithm,
            make_clients(long_config),
            num_channels,
            config=long_config,
            scheduler=scheduler(),
        )
        # Phase 1: half the rounds with checkpointing, then "crash".
        interrupted_scheduler = scheduler()
        run_named(
            algorithm,
            make_clients(short_config),
            num_channels,
            config=short_config,
            checkpoint=CheckpointManager(tmp_path),
            scheduler=interrupted_scheduler,
        )
        # Phase 2: a fresh process resumes from the checkpoint directory
        # with a *fresh* scheduler whose state comes from the checkpoint.
        resumed_scheduler = scheduler()
        resumed = run_named(
            algorithm,
            make_clients(long_config),
            num_channels,
            config=long_config,
            checkpoint=CheckpointManager(tmp_path),
            scheduler=resumed_scheduler,
        )

        assert states_equal(uninterrupted.global_state, resumed.global_state)
        assert [r.round_index for r in resumed.history] == [2, 3]
        reference = {r.round_index: r for r in uninterrupted.history}
        for record in resumed.history:
            expected = reference[record.round_index]
            # A round whose every selected client missed the deadline has no
            # losses (NaN mean); NaN != NaN, so compare per-client dicts.
            assert record.per_client_loss == expected.per_client_loss
            assert record.extra == expected.extra

    def test_resumed_summary_matches_uninterrupted(
        self, tmp_path, make_clients, num_channels
    ):
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=4)
        short_config = replace(TINY_CONFIG, rounds=2)

        def scheduler():
            return create_scheduler(participation=0.5, straggler="lognormal", seed=0)

        full_scheduler = scheduler()
        run_named(
            "fedavg",
            make_clients(long_config),
            num_channels,
            config=long_config,
            scheduler=full_scheduler,
        )
        run_named(
            "fedavg",
            make_clients(short_config),
            num_channels,
            config=short_config,
            checkpoint=CheckpointManager(tmp_path),
            scheduler=scheduler(),
        )
        resumed_scheduler = scheduler()
        run_named(
            "fedavg",
            make_clients(long_config),
            num_channels,
            config=long_config,
            checkpoint=CheckpointManager(tmp_path),
            scheduler=resumed_scheduler,
        )
        assert resumed_scheduler.summary() == full_scheduler.summary()

    def test_different_scheduling_fingerprint_rejected(
        self, tmp_path, make_clients, num_channels
    ):
        run_named(
            "fedavg",
            make_clients(),
            num_channels,
            checkpoint=CheckpointManager(tmp_path),
            scheduler=create_scheduler(participation=0.5, seed=0),
        )
        with pytest.raises(ValueError, match="written by a different run"):
            run_named(
                "fedavg",
                make_clients(),
                num_channels,
                checkpoint=CheckpointManager(tmp_path),
                scheduler=create_scheduler(participation=0.99, seed=0),
            )


class TestClientInitialState:
    """Satellite: cached, client-RNG-seeded ``FederatedClient.initial_state``."""

    def test_cached_not_rebuilt(self, make_clients):
        client = make_clients()[0]
        calls = {"n": 0}
        factory = client._model_factory
        original = factory.build_with_seed

        def counting(seed):
            calls["n"] += 1
            return original(seed)

        factory.build_with_seed = counting
        try:
            first = client.initial_state()
            second = client.initial_state()
        finally:
            factory.build_with_seed = original
        assert calls["n"] == 1
        assert states_equal(first, second)
        # Returned copies are independent: mutating one leaves the cache alone.
        name = next(iter(first))
        first[name] += 1.0
        assert states_equal(second, client.initial_state())

    def test_seeded_from_client_rng(self, make_clients):
        roster_a = make_clients()
        roster_b = make_clients()
        # Same client (same RNG stream) -> same initialization...
        assert states_equal(roster_a[0].initial_state(), roster_b[0].initial_state())
        # ...different clients -> different initializations.
        assert not states_equal(roster_a[0].initial_state(), roster_a[1].initial_state())

    def test_does_not_consume_training_rng(self, make_clients):
        # The init seed comes from a dedicated per-client stream; calling
        # initial_state must never perturb the batch-shuffling RNG the
        # trainer shares.
        client = make_clients()[0]
        before = client.rng_state
        client.initial_state()
        assert client.rng_state == before

    def test_independent_of_factory_counter(
        self, tiny_train_dataset, tiny_test_dataset, num_channels
    ):
        # Pulling extra models from the shared factory must not perturb a
        # client's own initialization.
        factory_a = make_factory(num_channels)
        client_a = FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory_a, TINY_CONFIG)
        factory_b = make_factory(num_channels)
        client_b = FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory_b, TINY_CONFIG)
        factory_b()  # advance the shared counter
        assert states_equal(client_a.initial_state(), client_b.initial_state())
