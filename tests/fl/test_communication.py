"""Tests for communication-cost accounting and update compression."""

import numpy as np
import pytest

from repro.fl.communication import (
    BYTES_PER_FLOAT32,
    CommunicationTracker,
    compression_error,
    estimate_communication,
    quantize_state,
    state_bytes,
    state_num_parameters,
    topk_sparsify,
)
from repro.models import FLNet


def _state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": rng.normal(size=(8, 4, 3, 3)),
        "conv.bias": rng.normal(size=8),
    }


class TestStateSizing:
    def test_num_parameters(self):
        state = _state()
        assert state_num_parameters(state) == 8 * 4 * 3 * 3 + 8

    def test_bytes_default_uses_real_itemsize(self):
        # The pipeline stores float64, so a state really costs 8 bytes per
        # value — not the 4 an assumed-float32 sizing would claim.
        state = _state()
        assert state_bytes(state) == state_num_parameters(state) * 8

    def test_bytes_mixed_dtypes(self):
        state = {
            "w64": np.zeros(10, dtype=np.float64),
            "w32": np.zeros(10, dtype=np.float32),
            "w16": np.zeros(10, dtype=np.float16),
        }
        assert state_bytes(state) == 10 * (8 + 4 + 2)

    def test_bytes_at_explicit_precision(self):
        state = _state()
        expected = state_num_parameters(state) * BYTES_PER_FLOAT32
        assert state_bytes(state, bytes_per_value=BYTES_PER_FLOAT32) == expected

    def test_bytes_validates_precision(self):
        with pytest.raises(ValueError):
            state_bytes(_state(), bytes_per_value=0)

    def test_flnet_size_matches_parameter_count(self):
        model = FLNet(6, seed=0)
        state = model.state_dict()
        assert state_num_parameters(state) == sum(p.data.size for _, p in model.named_parameters())


class TestEstimateCommunication:
    def test_fedprox_symmetric_cost(self):
        report = estimate_communication("fedprox", _state(), num_clients=9, rounds=50)
        assert report.uplink_bytes_per_round == report.downlink_bytes_per_round
        assert report.total_bytes == 2 * report.uplink_bytes_per_round * 50

    def test_local_and_centralized_free(self):
        for name in ("local", "centralized"):
            report = estimate_communication(name, _state(), num_clients=9, rounds=50)
            assert report.total_bytes == 0

    def test_lg_cheaper_than_fedprox(self):
        full = estimate_communication("fedprox", _state(), num_clients=9, rounds=50)
        partial = estimate_communication("fedprox_lg", _state(), num_clients=9, rounds=50, global_fraction=0.6)
        assert partial.total_bytes < full.total_bytes

    def test_ifca_downlink_scales_with_clusters(self):
        few = estimate_communication("ifca", _state(), num_clients=9, rounds=10, num_clusters=2)
        many = estimate_communication("ifca", _state(), num_clients=9, rounds=10, num_clusters=4)
        assert many.downlink_bytes_per_round == 2 * few.downlink_bytes_per_round

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            estimate_communication("gossip", _state(), num_clients=2, rounds=1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            estimate_communication("fedprox", _state(), num_clients=0, rounds=1)
        with pytest.raises(ValueError):
            estimate_communication("fedprox", _state(), num_clients=2, rounds=1, global_fraction=0.0)

    def test_to_dict(self):
        report = estimate_communication("fedavg", _state(), num_clients=3, rounds=2)
        data = report.to_dict()
        assert data["algorithm"] == "fedavg"
        assert data["total_bytes"] == report.total_bytes


class TestCommunicationTracker:
    def test_totals_and_breakdowns(self):
        tracker = CommunicationTracker()
        state = _state()
        size = state_bytes(state)
        tracker.log_download(0, 1, state)
        tracker.log_upload(0, 1, state)
        tracker.log_upload(1, 2, state)
        assert tracker.total_uplink_bytes == 2 * size
        assert tracker.total_downlink_bytes == size
        assert tracker.total_bytes == 3 * size
        assert tracker.per_round() == {0: 2 * size, 1: size}
        assert tracker.per_client() == {1: 2 * size, 2: size}

    def test_log_sizes_from_real_itemsize(self):
        # log_upload/log_download must size from the arrays' actual dtype,
        # not an assumed 4 bytes per value.
        tracker = CommunicationTracker()
        state = {"w": np.zeros((4, 4), dtype=np.float64)}
        assert tracker.log_upload(0, 1, state) == 16 * 8
        assert tracker.log_download(0, 1, {"w": np.zeros(6, dtype=np.float32)}) == 6 * 4

    def test_measured_payload_records(self):
        tracker = CommunicationTracker()
        tracker.record_upload(0, 1, 100)
        tracker.record_upload(1, 1, 150)
        tracker.record_download(0, 2, 70)
        assert tracker.total_uplink_bytes == 250
        assert tracker.total_downlink_bytes == 70
        assert tracker.per_round_uplink() == {0: 100, 1: 150}
        assert tracker.per_round_downlink() == {0: 70}
        with pytest.raises(ValueError):
            tracker.record_upload(0, 1, -1)


class TestTopkSparsify:
    def test_keeps_requested_fraction(self):
        state = _state(1)
        result = topk_sparsify(state, keep_fraction=0.1)
        total = state_num_parameters(state)
        kept = sum(int(np.count_nonzero(values)) for values in result.state.values())
        assert kept <= int(0.15 * total)
        assert result.payload_bytes < result.baseline_bytes

    def test_full_fraction_is_lossless(self):
        state = _state(2)
        result = topk_sparsify(state, keep_fraction=1.0)
        assert compression_error(state, result.state) == pytest.approx(0.0, abs=1e-12)

    def test_keeps_largest_magnitudes(self):
        state = {"w": np.array([0.01, -5.0, 0.02, 4.0, -0.03])}
        result = topk_sparsify(state, keep_fraction=0.4)
        surviving = set(np.flatnonzero(result.state["w"]))
        assert surviving == {1, 3}

    def test_exact_count_under_ties(self):
        # Every entry has the same magnitude; a threshold-based selection
        # would keep all of them and understate the advertised byte budget.
        # Exact selection keeps precisely round(0.5 * 8) = 4 entries,
        # breaking ties toward the lower flat index.
        state = {"w": np.full(8, 3.0)}
        result = topk_sparsify(state, keep_fraction=0.5)
        surviving = np.flatnonzero(result.state["w"])
        assert list(surviving) == [0, 1, 2, 3]
        # 4-byte count header + 4 survivors at (4-byte index + 8-byte value).
        assert result.payload_bytes == 4 + 4 * (4 + 8)

    def test_selection_is_deterministic(self):
        rng = np.random.default_rng(9)
        state = {"w": rng.normal(size=257)}
        first = topk_sparsify(state, keep_fraction=0.13)
        second = topk_sparsify(state, keep_fraction=0.13)
        np.testing.assert_array_equal(first.state["w"], second.state["w"])
        expected_keep = max(int(round(257 * 0.13)), 1)
        assert int(np.count_nonzero(first.state["w"])) == expected_keep

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            topk_sparsify(_state(), keep_fraction=0.0)

    def test_compression_ratio_improves_with_sparsity(self):
        state = _state(3)
        aggressive = topk_sparsify(state, keep_fraction=0.05)
        mild = topk_sparsify(state, keep_fraction=0.5)
        assert aggressive.compression_ratio > mild.compression_ratio


class TestQuantizeState:
    def test_error_decreases_with_bits(self):
        state = _state(4)
        coarse = quantize_state(state, num_bits=2)
        fine = quantize_state(state, num_bits=12)
        assert compression_error(state, fine.state) < compression_error(state, coarse.state)

    def test_constant_tensor_exact(self):
        state = {"w": np.full((4, 4), 3.14)}
        result = quantize_state(state, num_bits=4)
        np.testing.assert_allclose(result.state["w"], state["w"])

    def test_values_stay_in_range(self):
        state = _state(5)
        result = quantize_state(state, num_bits=6)
        for name, values in result.state.items():
            assert values.min() >= state[name].min() - 1e-9
            assert values.max() <= state[name].max() + 1e-9

    def test_payload_smaller_than_baseline(self):
        state = _state(6)
        result = quantize_state(state, num_bits=8)
        assert result.payload_bytes < result.baseline_bytes
        assert result.compression_ratio > 1.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_state(_state(), num_bits=0)
        with pytest.raises(ValueError):
            quantize_state(_state(), num_bits=32)

    def test_compression_error_zero_state(self):
        state = {"w": np.zeros(3)}
        assert compression_error(state, {"w": np.zeros(3)}) == 0.0
