"""Tests for the extension algorithms: FedBN, FedAvgM, and DP-FedProx."""

import numpy as np
import pytest

from repro.fl import (
    ALGORITHMS,
    DPFedProx,
    FedAvgM,
    FedBN,
    FederatedClient,
    FLConfig,
    PrivacyConfig,
    SeededModelFactory,
    create_algorithm,
    evaluate_result,
    normalization_parameter_names,
)
from repro.fl.parameters import state_distance
from repro.models import FLNet, RouteNet

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


@pytest.fixture(scope="module")
def flnet_factory(num_channels):
    return SeededModelFactory(
        lambda seed: FLNet(num_channels, hidden_filters=8, kernel_size=5, seed=seed), base_seed=0
    )


@pytest.fixture(scope="module")
def routenet_factory(num_channels):
    return SeededModelFactory(lambda seed: RouteNet(num_channels, base_filters=4, seed=seed), base_seed=0)


@pytest.fixture(scope="module")
def two_clients_flnet(
    tiny_train_dataset, tiny_test_dataset, tiny_train_dataset_itc, tiny_test_dataset_itc, flnet_factory
):
    return [
        FederatedClient(1, tiny_train_dataset, tiny_test_dataset, flnet_factory, TINY_CONFIG),
        FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, flnet_factory, TINY_CONFIG),
    ]


@pytest.fixture(scope="module")
def two_clients_routenet(
    tiny_train_dataset, tiny_test_dataset, tiny_train_dataset_itc, tiny_test_dataset_itc, routenet_factory
):
    return [
        FederatedClient(1, tiny_train_dataset, tiny_test_dataset, routenet_factory, TINY_CONFIG),
        FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, routenet_factory, TINY_CONFIG),
    ]


class TestRegistry:
    def test_extensions_registered(self):
        assert ALGORITHMS["fedbn"] is FedBN
        assert ALGORITHMS["fedavgm"] is FedAvgM
        assert ALGORITHMS["dp_fedprox"] is DPFedProx

    def test_create_by_name(self, two_clients_flnet, flnet_factory):
        algorithm = create_algorithm("fedavgm", two_clients_flnet, flnet_factory, TINY_CONFIG)
        assert isinstance(algorithm, FedAvgM)


class TestNormalizationParameterNames:
    def test_flnet_has_none(self, num_channels):
        model = FLNet(num_channels, hidden_filters=8, kernel_size=5, seed=0)
        assert normalization_parameter_names(model) == set()

    def test_routenet_norm_keys_detected(self, num_channels):
        model = RouteNet(num_channels, base_filters=4, seed=0)
        names = normalization_parameter_names(model)
        assert names, "RouteNet contains BatchNorm layers"
        assert all(name in model.state_dict() for name in names)
        assert any(name.endswith("running_mean") for name in names)


class TestFedBN:
    def test_personalizes_every_client(self, two_clients_routenet, routenet_factory):
        result = FedBN(two_clients_routenet, routenet_factory, TINY_CONFIG).run()
        assert set(result.client_states) == {1, 2}
        assert result.global_state is not None

    def test_clients_share_non_norm_parameters(self, two_clients_routenet, routenet_factory):
        result = FedBN(two_clients_routenet, routenet_factory, TINY_CONFIG).run()
        norm_names = normalization_parameter_names(routenet_factory())
        state1 = result.client_states[1]
        state2 = result.client_states[2]
        for name in state1:
            if name in norm_names:
                continue
            np.testing.assert_allclose(state1[name], state2[name])

    def test_clients_keep_distinct_norm_statistics(self, two_clients_routenet, routenet_factory):
        result = FedBN(two_clients_routenet, routenet_factory, TINY_CONFIG).run()
        norm_names = normalization_parameter_names(routenet_factory())
        state1 = result.client_states[1]
        state2 = result.client_states[2]
        differences = [
            float(np.abs(state1[name] - state2[name]).max())
            for name in norm_names
            if name.endswith(("running_mean", "running_var"))
        ]
        assert max(differences) > 0.0

    def test_without_norm_layers_behaves_like_shared_model(self, two_clients_flnet, flnet_factory):
        result = FedBN(two_clients_flnet, flnet_factory, TINY_CONFIG).run()
        assert state_distance(result.client_states[1], result.client_states[2]) == pytest.approx(0.0)

    def test_history_reports_partition_sizes(self, two_clients_routenet, routenet_factory):
        result = FedBN(two_clients_routenet, routenet_factory, TINY_CONFIG).run()
        extra = result.history[0].extra
        assert extra["local_parameters"] > 0
        assert extra["global_parameters"] > 0

    def test_evaluates_cleanly(self, two_clients_flnet, flnet_factory):
        result = FedBN(two_clients_flnet, flnet_factory, TINY_CONFIG).run()
        row = evaluate_result(result, two_clients_flnet)
        for auc in row.per_client_auc.values():
            assert 0.0 <= auc <= 1.0


class TestFedAvgM:
    def test_runs_configured_rounds(self, two_clients_flnet, flnet_factory):
        result = FedAvgM(two_clients_flnet, flnet_factory, TINY_CONFIG).run()
        assert len(result.history) == TINY_CONFIG.rounds
        assert result.global_state is not None

    def test_momentum_changes_trajectory(self, two_clients_flnet, flnet_factory):
        plain = create_algorithm("fedprox", two_clients_flnet, flnet_factory, TINY_CONFIG)
        flnet_factory.reset()
        plain_result = plain.run()
        flnet_factory.reset()
        momentum = FedAvgM(two_clients_flnet, flnet_factory, TINY_CONFIG)
        momentum_result = momentum.run()
        assert state_distance(plain_result.global_state, momentum_result.global_state) > 0.0

    def test_invalid_momentum_rejected(self, two_clients_flnet, flnet_factory):
        algorithm = FedAvgM(two_clients_flnet, flnet_factory, TINY_CONFIG)
        algorithm.server_momentum = 1.0
        with pytest.raises(ValueError):
            algorithm.run()


class TestDPFedProx:
    def test_runs_and_accounts_privacy(self, two_clients_flnet, flnet_factory):
        algorithm = DPFedProx(
            two_clients_flnet,
            flnet_factory,
            TINY_CONFIG,
            privacy=PrivacyConfig(clip_norm=0.5, noise_multiplier=0.5),
        )
        result = algorithm.run()
        assert result.global_state is not None
        assert algorithm.accountant.steps == TINY_CONFIG.rounds
        assert 0.0 < algorithm.accountant.epsilon() < float("inf")

    def test_history_carries_epsilon(self, two_clients_flnet, flnet_factory):
        algorithm = DPFedProx(
            two_clients_flnet,
            flnet_factory,
            TINY_CONFIG,
            privacy=PrivacyConfig(clip_norm=0.5, noise_multiplier=1.0),
        )
        result = algorithm.run()
        epsilons = [record.extra["epsilon"] for record in result.history]
        assert epsilons == sorted(epsilons)
        assert epsilons[-1] > epsilons[0]

    def test_noise_changes_model_relative_to_fedprox(self, two_clients_flnet, flnet_factory):
        flnet_factory.reset()
        plain = create_algorithm("fedprox", two_clients_flnet, flnet_factory, TINY_CONFIG).run()
        flnet_factory.reset()
        noisy = DPFedProx(
            two_clients_flnet,
            flnet_factory,
            TINY_CONFIG,
            privacy=PrivacyConfig(clip_norm=0.1, noise_multiplier=1.0),
        ).run()
        assert state_distance(plain.global_state, noisy.global_state) > 0.0

    def test_default_privacy_config_used_from_registry(self, two_clients_flnet, flnet_factory):
        algorithm = create_algorithm("dp_fedprox", two_clients_flnet, flnet_factory, TINY_CONFIG)
        assert isinstance(algorithm, DPFedProx)
        assert algorithm.privacy.enabled

    def test_clipping_logged(self, two_clients_flnet, flnet_factory):
        algorithm = DPFedProx(
            two_clients_flnet,
            flnet_factory,
            TINY_CONFIG,
            privacy=PrivacyConfig(clip_norm=1e-4, noise_multiplier=0.0),
        )
        algorithm.run()
        assert algorithm.update_log.num_updates == TINY_CONFIG.rounds * len(two_clients_flnet)
        assert algorithm.update_log.clipped_fraction == 1.0
