"""Tests for the flat-buffer parameter engine.

The guarantees under test:

* layout/flat-state round trips are exact and zero-copy,
* the GEMV ``weighted_average`` matches the pre-refactor stack/tensordot
  reference to 1e-12 and is **bit-identical** for flat vs. dict inputs,
* every elementwise flat op (interpolate, deltas, noise, clipping,
  alpha-portion sync, momentum, FedBuff folds) is bit-identical to the
  per-name dict loop,
* all wire codecs produce bit-identical payload bytes for flat and dict
  states,
* the four checkpointable algorithms are bit-identical between the flat
  path and the plain-dict path, on both backends, under every codec,
* checkpoints written by the pre-refactor dict path resume onto the flat
  engine bit-identically.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.fl import (
    CheckpointManager,
    FederatedClient,
    FederatedServer,
    FLConfig,
    FlatState,
    ProcessPoolBackend,
    SeededModelFactory,
    SerialBackend,
    StateLayout,
    create_algorithm,
    create_channel,
)
from repro.fl import parameters as P
from repro.fl.parameters import (
    as_flat_state,
    clone_state,
    flat_states_disabled,
    interpolate,
    reference_mode,
    reference_weighted_average,
    state_vector,
    weighted_average,
    zeros_like_state,
)
from repro.fl.privacy import (
    PrivacyConfig,
    add_gaussian_noise,
    apply_update,
    clip_update,
    privatize_update,
    state_update,
)
from repro.fl.transport.codecs import IdentityCodec, QuantizationCodec, TopKCodec
from repro.models import FLNet

SHAPES = (("conv.weight", (4, 2, 3, 3)), ("conv.bias", (4,)), ("head.weight", (1, 4)), ("alpha", ()))


def random_state(seed: int, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return {name: rng.normal(size=shape).astype(dtype) for name, shape in SHAPES}


def states_equal(left, right) -> bool:
    return set(left) == set(right) and all(np.array_equal(left[k], right[k]) for k in left)


class TestStateLayout:
    def test_interned_per_entry_sequence(self):
        state = random_state(0)
        assert StateLayout.from_state(state) is StateLayout.from_state(random_state(1))

    def test_offsets_and_sizes(self):
        layout = StateLayout.from_state(random_state(0))
        assert layout.total_size == sum(
            int(np.prod(shape)) if shape else 1 for _, shape in SHAPES
        )
        assert layout.offsets[0] == 0
        assert layout.names == tuple(name for name, _ in SHAPES)

    def test_sorted_permutation_roundtrip(self):
        state = random_state(3)
        flat = FlatState.from_state(state)
        perm = flat.layout.sorted_permutation()
        expected = np.concatenate([state[name].ravel() for name in sorted(state)])
        got = flat.vector if perm is None else flat.vector[perm]
        np.testing.assert_array_equal(got, expected)

    def test_gather_between_orders(self):
        state = random_state(4)
        forward = FlatState.from_state(state)
        reversed_state = FlatState.from_items(list(state.items())[::-1])
        perm = forward.layout.gather_from(reversed_state.layout)
        np.testing.assert_array_equal(reversed_state.vector[perm], forward.vector)

    def test_incompatible_gather_rejected(self):
        a = StateLayout.of([("w", (2, 2))])
        b = StateLayout.of([("w", (4,))])
        with pytest.raises(ValueError, match="different names/shapes"):
            a.gather_from(b)


class TestFlatState:
    def test_roundtrip_exact_and_order_preserving(self):
        state = random_state(0)
        flat = FlatState.from_state(state)
        assert list(flat) == list(state)
        assert states_equal(flat, state)
        # float32 inputs are packed at the pipeline's float64.
        flat32 = FlatState.from_state(random_state(1, dtype=np.float32))
        assert flat32.vector.dtype == np.float64

    def test_values_are_views_into_the_buffer(self):
        flat = FlatState.from_state(random_state(0))
        for name in flat:
            assert flat[name].base is flat.vector or flat[name] is flat.vector

    def test_setitem_writes_through(self):
        flat = FlatState.from_state(random_state(0))
        flat["conv.bias"] = np.array([9.0, 8.0, 7.0, 6.0])
        offset = flat.layout.offsets[1]
        np.testing.assert_array_equal(flat.vector[offset : offset + 4], [9.0, 8.0, 7.0, 6.0])

    def test_frozen_key_set(self):
        flat = FlatState.from_state(random_state(0))
        with pytest.raises(ValueError, match="frozen"):
            flat["new"] = np.zeros(3)
        with pytest.raises(ValueError):
            flat.pop("conv.bias")
        with pytest.raises(ValueError, match="shape"):
            flat["conv.bias"] = np.zeros(5)

    def test_pickle_ships_one_buffer_and_reinterns_layout(self):
        flat = FlatState.from_state(random_state(0))
        blob = pickle.dumps(flat)
        # The payload must not contain one pickled ndarray per tensor.
        assert blob.count(b"numpy.core.multiarray") + blob.count(b"numpy._core.multiarray") <= 2
        restored = pickle.loads(blob)
        assert restored.layout is flat.layout
        assert states_equal(restored, flat)

    def test_clone_and_zeros(self):
        flat = FlatState.from_state(random_state(0))
        cloned = clone_state(flat)
        cloned["conv.bias"] = np.zeros(4)
        assert not np.array_equal(cloned["conv.bias"], flat["conv.bias"])
        zeros = zeros_like_state(flat)
        assert isinstance(zeros, FlatState) and zeros.vector.sum() == 0.0


class TestWeightedAverageGEMV:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("count", [1, 2, 8])
    def test_matches_reference_loop(self, count, dtype):
        states = [random_state(seed, dtype) for seed in range(count)]
        weights = np.random.default_rng(count).random(count) + 0.1
        reference = reference_weighted_average(states, weights)
        flat = weighted_average([FlatState.from_state(s) for s in states], weights)
        for name in reference:
            np.testing.assert_allclose(flat[name], reference[name], rtol=0, atol=1e-12)

    def test_flat_and_dict_inputs_bit_identical(self):
        states = [random_state(seed) for seed in range(6)]
        weights = [3.0, 1.0, 2.0, 5.0, 0.5, 1.5]
        from_dicts = weighted_average(states, weights)
        from_flats = weighted_average([FlatState.from_state(s) for s in states], weights)
        assert states_equal(from_dicts, from_flats)

    def test_mixed_layout_orders_bit_identical(self):
        states = [random_state(seed) for seed in range(4)]
        weights = [1.0, 2.0, 3.0, 4.0]
        flats = [FlatState.from_state(s) for s in states]
        mixed = [flats[0], FlatState.from_items(list(states[1].items())[::-1])] + flats[2:]
        assert states_equal(weighted_average(flats, weights), weighted_average(mixed, weights))

    def test_reference_mode_routes_to_old_loop(self):
        states = [random_state(seed) for seed in range(3)]
        weights = [1.0, 2.0, 3.0]
        with reference_mode():
            via_mode = weighted_average(states, weights)
        assert states_equal(via_mode, reference_weighted_average(states, weights))

    def test_result_is_plain_dict_when_engine_disabled(self):
        states = [random_state(seed) for seed in range(3)]
        flat_result = weighted_average(states, [1.0, 1.0, 1.0])
        with flat_states_disabled():
            dict_result = weighted_average(states, [1.0, 1.0, 1.0])
        assert not isinstance(dict_result, FlatState)
        assert states_equal(dict_result, flat_result)


class TestElementwiseBitParity:
    """Flat vector ops must equal the per-name dict loops bit for bit."""

    def setup_method(self):
        self.a = random_state(10)
        self.b = random_state(11)
        self.fa = FlatState.from_state(self.a)
        self.fb = FlatState.from_state(self.b)

    def test_interpolate(self):
        assert states_equal(interpolate(self.a, self.b, 0.3), interpolate(self.fa, self.fb, 0.3))

    def test_state_update_and_apply(self):
        assert states_equal(state_update(self.a, self.b), state_update(self.fa, self.fb))
        assert states_equal(apply_update(self.a, self.b), apply_update(self.fa, self.fb))

    def test_clip_update(self):
        clipped_dict, norm_dict = clip_update(self.a, 0.5)
        clipped_flat, norm_flat = clip_update(self.fa, 0.5)
        assert norm_dict == norm_flat
        assert states_equal(clipped_dict, clipped_flat)

    def test_noise_draws_identical_stream(self):
        rng_dict = np.random.default_rng(7)
        rng_flat = np.random.default_rng(7)
        noisy_dict = add_gaussian_noise(self.a, 0.25, rng_dict)
        noisy_flat = add_gaussian_noise(self.fa, 0.25, rng_flat)
        assert states_equal(noisy_dict, noisy_flat)
        assert rng_dict.bit_generator.state == rng_flat.bit_generator.state

    def test_privatize_update(self):
        config = PrivacyConfig(clip_norm=0.4, noise_multiplier=0.3)
        got_dict, norm_dict = privatize_update(self.a, self.b, config, np.random.default_rng(3))
        got_flat, norm_flat = privatize_update(self.fa, self.fb, config, np.random.default_rng(3))
        assert norm_dict == norm_flat
        assert states_equal(got_dict, got_flat)

    def test_alpha_portion_sync(self):
        server = FederatedServer()
        ids = [1, 2, 3, 4]
        dict_states = {cid: random_state(cid) for cid in ids}
        flat_states = {cid: FlatState.from_state(dict_states[cid]) for cid in ids}
        weights = {1: 2.0, 2: 1.0, 3: 4.0, 4: 0.5}
        for alpha in (0.0, 0.4, 1.0):
            mixed_dict = server.alpha_portion_sync(dict_states, weights, alpha)
            mixed_flat = server.alpha_portion_sync(flat_states, weights, alpha)
            for cid in ids:
                assert states_equal(mixed_dict[cid], mixed_flat[cid])


class TestCodecFlatParity:
    """Each codec must produce identical bytes for flat and dict states."""

    CODECS = [
        IdentityCodec("float64"),
        IdentityCodec("float32"),
        IdentityCodec("float16"),
        QuantizationCodec(num_bits=8, deflate=False),
        QuantizationCodec(num_bits=8, deflate=True),
        QuantizationCodec(num_bits=5, deflate=False),
        QuantizationCodec(num_bits=16, deflate=False),
        TopKCodec(keep_fraction=0.25),
    ]

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.describe())
    def test_payload_bytes_identical(self, codec):
        state = random_state(21)
        flat = FlatState.from_state(state)
        payload_dict = codec.encode(state)
        payload_flat = codec.encode(flat)
        assert payload_dict.data == payload_flat.data
        assert payload_dict.schema == payload_flat.schema

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.describe())
    def test_decode_returns_flat_views(self, codec):
        state = random_state(22)
        decoded = codec.decode(codec.encode(state))
        assert isinstance(decoded, FlatState)
        # Sorted wire order: the decoded layout is already in sorted order.
        assert decoded.layout.sorted_permutation() is None
        # Round-trip values agree with a dict-path decode under the
        # disabled engine (value parity of the two representations).
        with flat_states_disabled():
            plain = codec.decode(codec.encode(state))
        assert not isinstance(plain, FlatState)
        assert states_equal(decoded, plain)


TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=2,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


class TinyModelBuilder:
    def __init__(self, channels: int):
        self.channels = channels

    def __call__(self, seed: int) -> FLNet:
        return FLNet(self.channels, hidden_filters=8, kernel_size=5, seed=seed)


def make_factory(num_channels: int) -> SeededModelFactory:
    return SeededModelFactory(TinyModelBuilder(num_channels), base_seed=0)


@pytest.fixture
def make_clients(tiny_train_dataset, tiny_test_dataset, tiny_train_dataset_itc, tiny_test_dataset_itc, num_channels):
    def build(config: FLConfig = TINY_CONFIG):
        factory = make_factory(num_channels)
        return [
            FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, config),
            FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, config),
        ]

    return build


def run_algorithm(name, make_clients, num_channels, backend=None, channel=None, checkpoint=None, config=TINY_CONFIG):
    algorithm = create_algorithm(
        name,
        make_clients(config),
        make_factory(num_channels),
        config,
        backend=backend,
        channel=channel,
        checkpoint=checkpoint,
    )
    try:
        return algorithm.run()
    finally:
        if backend is not None:
            backend.close()


def results_bit_identical(left, right) -> bool:
    if (left.global_state is None) != (right.global_state is None):
        return False
    if left.global_state is not None and not states_equal(left.global_state, right.global_state):
        return False
    if [r.mean_loss for r in left.history] != [r.mean_loss for r in right.history]:
        return False
    if set(left.client_states) != set(right.client_states):
        return False
    return all(
        states_equal(left.client_states[cid], right.client_states[cid])
        for cid in left.client_states
    )


ALGORITHMS = ["fedavg", "fedprox", "fedavgm", "dp_fedprox"]
COMPRESSIONS = [None, "none", "float16", "quantize", "topk"]


class TestFlatVsDictPathBitIdentity:
    """The flat engine and the plain-dict representation must agree bit for
    bit on every checkpointable algorithm, backend, and codec."""

    @pytest.mark.parametrize("compression", COMPRESSIONS, ids=lambda c: str(c))
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_serial(self, algorithm, compression, make_clients, num_channels):
        flat = run_algorithm(
            algorithm, make_clients, num_channels, channel=create_channel(compression)
        )
        assert isinstance(flat.global_state, FlatState)
        with flat_states_disabled():
            plain = run_algorithm(
                algorithm, make_clients, num_channels, channel=create_channel(compression)
            )
        assert not isinstance(plain.global_state, FlatState)
        assert results_bit_identical(flat, plain)

    @pytest.mark.parametrize("compression", [None, "quantize", "topk"], ids=lambda c: str(c))
    def test_process_backend(self, compression, make_clients, num_channels):
        flat = run_algorithm(
            "fedavg",
            make_clients,
            num_channels,
            backend=ProcessPoolBackend(workers=2),
            channel=create_channel(compression),
        )
        with flat_states_disabled():
            plain = run_algorithm(
                "fedavg",
                make_clients,
                num_channels,
                backend=ProcessPoolBackend(workers=2),
                channel=create_channel(compression),
            )
        assert results_bit_identical(flat, plain)


class TestCheckpointCompatibility:
    def test_resume_from_pre_refactor_checkpoint(self, tmp_path, make_clients, num_channels):
        """A checkpoint written by the plain-dict path (the pre-refactor
        on-disk format: one per-tensor .npz archive) must resume onto the
        flat engine bit-identically to an uninterrupted dict-path run."""
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=4)
        short_config = replace(TINY_CONFIG, rounds=2)

        with flat_states_disabled():
            uninterrupted = run_algorithm(
                "fedavg", make_clients, num_channels, config=long_config
            )
            run_algorithm(
                "fedavg",
                make_clients,
                num_channels,
                config=short_config,
                checkpoint=CheckpointManager(tmp_path),
            )

        resumed = run_algorithm(
            "fedavg",
            make_clients,
            num_channels,
            config=long_config,
            checkpoint=CheckpointManager(tmp_path),
        )
        assert isinstance(resumed.global_state, FlatState)
        assert states_equal(uninterrupted.global_state, resumed.global_state)

    def test_fedavgm_velocity_resumes_flat(self, tmp_path, make_clients, num_channels):
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=3)
        short_config = replace(TINY_CONFIG, rounds=1)
        uninterrupted = run_algorithm(
            "fedavgm", make_clients, num_channels, config=long_config
        )
        run_algorithm(
            "fedavgm",
            make_clients,
            num_channels,
            config=short_config,
            checkpoint=CheckpointManager(tmp_path),
        )
        resumed = run_algorithm(
            "fedavgm",
            make_clients,
            num_channels,
            config=long_config,
            checkpoint=CheckpointManager(tmp_path),
        )
        assert states_equal(uninterrupted.global_state, resumed.global_state)


class TestTopKSelection:
    def test_argpartition_matches_stable_sort(self):
        from repro.fl.transport.codecs import topk_flat_indices

        rng = np.random.default_rng(0)
        for trial in range(100):
            size = int(rng.integers(1, 300))
            if trial % 2:
                flat = rng.normal(size=size)
            else:
                flat = rng.integers(-3, 4, size=size).astype(float)  # heavy ties
            keep = int(rng.integers(1, size + 1))
            reference = np.sort(np.argsort(-np.abs(flat), kind="stable")[:keep])
            np.testing.assert_array_equal(topk_flat_indices(flat, keep), reference)

    def test_nan_entries_rank_last(self):
        # A NaN in a diverging update must not poison the selection: the
        # top-k finite entries survive, exactly as the stable sort ranks.
        from repro.fl.transport.codecs import topk_flat_indices

        flat = np.array([5.0, np.nan, 3.0, 1.0, 4.0])
        np.testing.assert_array_equal(topk_flat_indices(flat, 2), [0, 4])
        reference = np.sort(np.argsort(-np.abs(flat), kind="stable")[:4])
        np.testing.assert_array_equal(topk_flat_indices(flat, 4), reference)


class TestEngineHelpers:
    def test_state_vector_alignment(self):
        state = random_state(30)
        flat = FlatState.from_state(state)
        np.testing.assert_array_equal(state_vector(flat), flat.vector)
        reversed_layout = StateLayout.of(list(flat.layout.entries)[::-1])
        aligned = state_vector(flat, reversed_layout)
        np.testing.assert_array_equal(
            aligned, np.concatenate([state[n].ravel() for n, _ in reversed_layout.entries])
        )

    def test_as_flat_state_respects_flag(self):
        state = random_state(31)
        assert isinstance(as_flat_state(state), FlatState)
        with flat_states_disabled():
            assert as_flat_state(state) is state

    def test_flat_model_state_matches_state_dict(self, num_channels):
        model = FLNet(num_channels, hidden_filters=8, kernel_size=5, seed=0)
        flat = P.flat_model_state(model)
        assert isinstance(flat, FlatState)
        assert states_equal(flat, model.state_dict())
        assert list(flat) == list(model.state_dict())
