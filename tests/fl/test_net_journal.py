"""Tests for the append-only message journal behind reconnect-with-resume.

The journal is the server's source of truth for "what might a client
have missed": a TASK record is written before any socket send, an ACK
record once the update is folded. The properties under test:

* record/ack round-trips and the pending map mirror each other,
* ``pending_after`` is exactly the replay set for a cursor,
* state survives a close/reopen cycle (server restart),
* a torn tail (crash mid-append) is detected, dropped, and accounted
  in ``truncated_bytes`` — everything before it loads clean,
* ACKs for tasks never journaled are harmless (abandoned-task acks).
"""

from __future__ import annotations

import pytest

from repro.fl.net import JournalError, MessageJournal


class TestJournalBasics:
    def test_record_and_ack(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            journal.record_task(1, 1, b"task-one")
            journal.record_task(1, 2, b"task-two")
            assert journal.pending(1) == {1: b"task-one", 2: b"task-two"}
            journal.record_ack(1, 1)
            assert journal.pending(1) == {2: b"task-two"}
            assert journal.high_seq(1) == 2

    def test_clients_are_independent(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            journal.record_task(1, 1, b"a")
            journal.record_task(2, 1, b"b")
            journal.record_ack(1, 1)
            assert journal.pending(1) == {}
            assert journal.pending(2) == {1: b"b"}

    def test_pending_after_is_the_replay_set(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            for seq in (1, 2, 3, 4):
                journal.record_task(7, seq, b"body-%d" % seq)
            journal.record_ack(7, 2)
            # Cursor 1: seqs 3 and 4 are pending and newer; 2 was acked.
            assert journal.pending_after(7, 1) == [(3, b"body-3"), (4, b"body-4")]
            assert journal.pending_after(7, 4) == []
            # A zero cursor replays every pending record, in seq order.
            assert [seq for seq, _ in journal.pending_after(7, 0)] == [1, 3, 4]

    def test_ack_without_task_is_harmless(self, tmp_path):
        # The server acks abandoned (reaped) tasks so replay never resends
        # them; the ack may race a task record that was never written.
        with MessageJournal(tmp_path) as journal:
            journal.record_ack(3, 9)
            assert journal.pending(3) == {}
            assert journal.high_seq(3) == 9

    def test_unknown_client_queries_are_empty(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            assert journal.pending(99) == {}
            assert journal.pending_after(99, 0) == []
            assert journal.high_seq(99) == 0


class TestJournalPersistence:
    def test_reload_after_close(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            journal.record_task(1, 1, b"one")
            journal.record_task(1, 2, b"two")
            journal.record_ack(1, 1)
        with MessageJournal(tmp_path) as reloaded:
            assert reloaded.pending(1) == {2: b"two"}
            assert reloaded.high_seq(1) == 2
            assert reloaded.truncated_bytes == 0

    def test_append_after_reload(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            journal.record_task(1, 1, b"one")
        with MessageJournal(tmp_path) as reloaded:
            reloaded.record_task(1, 2, b"two")
            assert reloaded.pending(1) == {1: b"one", 2: b"two"}

    def test_torn_tail_is_dropped_and_counted(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            journal.record_task(1, 1, b"kept")
            journal.record_task(1, 2, b"lost to the crash")
        path = tmp_path / "client-1.journal"
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])  # crash mid-append of the second record
        with MessageJournal(tmp_path) as reloaded:
            assert reloaded.pending(1) == {1: b"kept"}
            assert reloaded.truncated_bytes > 0

    def test_corrupt_middle_keeps_clean_prefix(self, tmp_path):
        with MessageJournal(tmp_path) as journal:
            journal.record_task(1, 1, b"kept")
        path = tmp_path / "client-1.journal"
        good = path.read_bytes()
        path.write_bytes(good + b"\x00garbage tail\xff")
        with MessageJournal(tmp_path) as reloaded:
            assert reloaded.pending(1) == {1: b"kept"}
            assert reloaded.truncated_bytes == len(b"\x00garbage tail\xff")

    def test_foreign_files_are_ignored(self, tmp_path):
        (tmp_path / "client-notanumber.journal").write_bytes(b"junk")
        (tmp_path / "unrelated.txt").write_bytes(b"junk")
        with MessageJournal(tmp_path) as journal:
            assert journal.pending(1) == {}

    def test_unwritable_directory_is_typed_error(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_bytes(b"not a directory")
        with pytest.raises(JournalError):
            MessageJournal(target)
