"""Tests for every decentralized training algorithm and the evaluation layer.

These use a 2-client setup with two different benchmark suites (ISCAS'89 and
ITC'99 style data) and a deliberately tiny FLNet so every algorithm runs in a
few seconds while still exercising its full code path.
"""

import numpy as np
import pytest

from repro.fl import (
    ALGORITHMS,
    AlphaPortionSync,
    AssignedClustering,
    Centralized,
    FedAvg,
    FedProx,
    FedProxFineTuning,
    FedProxLG,
    FederatedClient,
    FLConfig,
    IFCA,
    LocalOnly,
    SeededModelFactory,
    create_algorithm,
    evaluate_cross_client,
    evaluate_result,
    local_average_row,
    rows_to_table,
)
from repro.fl.parameters import state_distance
from repro.models import FLNet

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


@pytest.fixture(scope="module")
def model_factory_builder():
    def build(num_channels):
        return SeededModelFactory(
            lambda seed: FLNet(num_channels, hidden_filters=8, kernel_size=5, seed=seed),
            base_seed=0,
        )

    return build


@pytest.fixture(scope="module")
def two_clients(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
    num_channels,
    model_factory_builder,
):
    factory = model_factory_builder(num_channels)
    client1 = FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, TINY_CONFIG)
    client2 = FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, TINY_CONFIG)
    return [client1, client2]


@pytest.fixture(scope="module")
def factory(num_channels, model_factory_builder):
    return model_factory_builder(num_channels)


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        expected = {
            "local",
            "centralized",
            "fedavg",
            "fedprox",
            "fedprox_lg",
            "ifca",
            "fedprox_finetune",
            "assigned_clustering",
            "fedprox_alpha",
        }
        assert expected.issubset(set(ALGORITHMS))

    def test_create_algorithm_by_name(self, two_clients, factory):
        algorithm = create_algorithm("fedprox", two_clients, factory, TINY_CONFIG)
        assert isinstance(algorithm, FedProx)

    def test_unknown_algorithm_rejected(self, two_clients, factory):
        with pytest.raises(ValueError):
            create_algorithm("fedsgd", two_clients, factory, TINY_CONFIG)

    def test_requires_clients(self, factory):
        with pytest.raises(ValueError):
            FedProx([], factory, TINY_CONFIG)


class TestBaselines:
    def test_local_only_produces_one_model_per_client(self, two_clients, factory):
        result = LocalOnly(two_clients, factory, TINY_CONFIG).run()
        assert set(result.client_states) == {1, 2}
        assert result.global_state is None
        assert result.is_personalized
        # The two clients see different data, so their models must differ.
        assert state_distance(result.client_states[1], result.client_states[2]) > 0

    def test_centralized_produces_single_global_model(self, two_clients, factory):
        result = Centralized(two_clients, factory, TINY_CONFIG).run()
        assert result.global_state is not None
        assert not result.client_states
        assert result.history[0].extra["pooled_samples"] == sum(c.num_samples for c in two_clients)


class TestFedProx:
    def test_runs_configured_rounds(self, two_clients, factory):
        result = FedProx(two_clients, factory, TINY_CONFIG).run()
        assert len(result.history) == TINY_CONFIG.rounds
        assert result.global_state is not None

    def test_history_records_per_client_losses(self, two_clients, factory):
        result = FedProx(two_clients, factory, TINY_CONFIG).run()
        for record in result.history:
            assert set(record.per_client_loss) == {1, 2}
            assert np.isfinite(record.mean_loss)
            assert "client_drift" in record.extra

    def test_fedavg_uses_zero_mu(self, two_clients, factory):
        algorithm = FedAvg(two_clients, factory, TINY_CONFIG)
        assert algorithm.proximal_mu() == 0.0

    def test_global_state_differs_from_init(self, two_clients, factory):
        algorithm = FedProx(two_clients, factory, TINY_CONFIG)
        initial = algorithm.initial_state()
        result = algorithm.run()
        assert state_distance(result.global_state, initial) > 0


class TestPersonalization:
    def test_fine_tuning_personalizes_every_client(self, two_clients, factory):
        result = FedProxFineTuning(two_clients, factory, TINY_CONFIG).run()
        assert set(result.client_states) == {1, 2}
        assert result.global_state is not None
        for client_id, state in result.client_states.items():
            assert state_distance(state, result.global_state) > 0
        # Fine-tuning appends one extra history record after the rounds.
        assert len(result.history) == TINY_CONFIG.rounds + 1

    def test_fedprox_lg_keeps_output_layer_local(self, two_clients, factory):
        result = FedProxLG(two_clients, factory, TINY_CONFIG).run()
        assert set(result.client_states) == {1, 2}
        reference = factory()
        local_names = reference.local_parameter_names()
        global_names = reference.global_parameter_names()
        state1, state2 = result.client_states[1], result.client_states[2]
        # Global part identical across clients, local part different.
        for name in global_names:
            np.testing.assert_allclose(state1[name], state2[name])
        assert any(not np.allclose(state1[name], state2[name]) for name in local_names)

    def test_ifca_assigns_clusters_and_personalizes(self, two_clients, factory):
        result = IFCA(two_clients, factory, TINY_CONFIG).run()
        assert set(result.client_states) == {1, 2}
        assignment = result.history[-1].extra["assignment"]
        assert set(assignment) == {1, 2}
        assert all(0 <= c < TINY_CONFIG.num_clusters for c in assignment.values())

    def test_assigned_clustering_respects_mapping(self, two_clients, factory):
        algorithm = AssignedClustering(two_clients, factory, TINY_CONFIG)
        result = algorithm.run()
        assignment = result.history[-1].extra["assignment"]
        assert assignment == {1: 0, 2: 1}

    def test_assigned_clustering_rejects_out_of_range_cluster(self, two_clients, factory):
        bad_config = FLConfig(
            rounds=1,
            local_steps=1,
            num_clusters=2,
            assigned_clusters=((1, 5), (2, 1)),
            batch_size=2,
        )
        algorithm = AssignedClustering(two_clients, factory, bad_config)
        with pytest.raises(ValueError):
            algorithm.run()

    def test_alpha_portion_sync_personalizes(self, two_clients, factory):
        result = AlphaPortionSync(two_clients, factory, TINY_CONFIG).run()
        assert set(result.client_states) == {1, 2}
        assert state_distance(result.client_states[1], result.client_states[2]) > 0


class TestEvaluation:
    def test_evaluate_result_produces_unit_interval_aucs(self, two_clients, factory):
        result = FedProx(two_clients, factory, TINY_CONFIG).run()
        row = evaluate_result(result, two_clients)
        assert set(row.per_client_auc) == {1, 2}
        assert all(0.0 <= auc <= 1.0 for auc in row.per_client_auc.values())
        assert 0.0 <= row.average_auc <= 1.0

    def test_personalized_result_uses_client_states(self, two_clients, factory):
        result = LocalOnly(two_clients, factory, TINY_CONFIG).run()
        assert result.state_for_client(1) is result.client_states[1]

    def test_state_for_client_without_any_state_raises(self):
        from repro.fl.algorithms.base import TrainingResult

        with pytest.raises(KeyError):
            TrainingResult(algorithm="empty").state_for_client(1)

    def test_local_average_row_label(self, two_clients, factory):
        result = LocalOnly(two_clients, factory, TINY_CONFIG).run()
        row = local_average_row(result, two_clients, label="local")
        assert row.algorithm == "local"

    def test_cross_client_matrix(self, two_clients, factory):
        result = LocalOnly(two_clients, factory, TINY_CONFIG).run()
        matrix = evaluate_cross_client(result, two_clients)
        assert set(matrix) == {1, 2}
        assert set(matrix[1]) == {1, 2}

    def test_rows_to_table_rounding(self, two_clients, factory):
        result = FedProx(two_clients, factory, TINY_CONFIG).run()
        table = rows_to_table([evaluate_result(result, two_clients)], digits=2)
        assert table[0]["method"] == "fedprox"
        assert isinstance(table[0]["average"], float)


class TestSeededModelFactory:
    def test_distinct_then_reset(self, num_channels):
        factory = SeededModelFactory(lambda seed: FLNet(num_channels, hidden_filters=4, kernel_size=3, seed=seed), base_seed=0)
        first = factory().state_dict()
        second = factory().state_dict()
        assert state_distance(first, second) > 0
        factory.reset()
        again = factory().state_dict()
        assert state_distance(first, again) == 0.0
