"""Loopback integration tests for the wire federation runtime.

The anchor guarantees of the PR:

* a full wire run (server + joiner over a real TCP loopback socket,
  identity codec, no faults) is **bit-for-bit identical** to the serial
  backend — the wire is a transparent transport,
* a client that disconnects mid-round reconnects, replays its journal
  cursor, and resumes to the *same* final model (cached updates are
  resent without retraining),
* injected wire faults (disconnects, delays, frame corruption) heal to
  the fault-free model,
* network-level failures surface as first-class ``TaskFailure`` kinds
  (``disconnect``, ``heartbeat``) that the resilience machinery retries,
  and ``imap_outcomes`` never hangs even with ``timeout=None``,
* handshake rejections (fingerprint, unknown ids, protocol version) are
  typed and immediate,
* the resilience summary of a wire run carries the network counters.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.fl import (
    ClientTask,
    FederatedClient,
    FLConfig,
    ResilienceManager,
    SeededModelFactory,
    TaskFailure,
    create_algorithm,
)
from repro.fl.net import (
    FrameError,
    FrameReader,
    HandshakeError,
    NETWORK_COUNTER_KEYS,
    WireBackend,
    WireFaultPlan,
    encode_frame,
    run_client,
)
from repro.fl.net.faults import corrupt_frame
from repro.fl.net.messages import MSG_ERROR, MSG_WELCOME, Hello, decode_message, encode_message
from repro.fl.parameters import state_digest
from repro.models import FLNet

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)

# Short deadlines keep the loopback tests fast; loopback latency is tiny.
HEARTBEAT = 0.2
TIMEOUT = 1.5


class TinyModelBuilder:
    def __init__(self, channels: int):
        self.channels = channels

    def __call__(self, seed: int) -> FLNet:
        return FLNet(self.channels, hidden_filters=8, kernel_size=5, seed=seed)


def make_factory(num_channels: int) -> SeededModelFactory:
    return SeededModelFactory(TinyModelBuilder(num_channels), base_seed=0)


@pytest.fixture
def make_clients(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
    num_channels,
):
    """A callable producing a *fresh* 2-client roster (fresh RNG streams)."""

    def build():
        factory = make_factory(num_channels)
        return [
            FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, TINY_CONFIG),
            FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, TINY_CONFIG),
        ]

    return build


def states_equal(left, right) -> bool:
    return set(left) == set(right) and all(np.array_equal(left[k], right[k]) for k in left)


def serial_reference(make_clients, num_channels, name="fedprox"):
    algorithm = create_algorithm(name, make_clients(), make_factory(num_channels), TINY_CONFIG)
    return algorithm.run()


def run_over_wire(
    make_clients,
    num_channels,
    name="fedprox",
    fault_plan=None,
    drop_after=None,
    heartbeat=HEARTBEAT,
    timeout=TIMEOUT,
    reconnect_delay=0.05,
):
    """One wire run: server-side algorithm + an in-thread loopback joiner.

    Returns ``(training_result, network_summary, join_report)``.
    """
    backend = WireBackend(
        port=0, heartbeat_interval=heartbeat, client_timeout=timeout, fault_plan=fault_plan
    )
    server_clients = make_clients()
    port = backend.listen([client.client_id for client in server_clients])
    joiner_clients = make_clients()
    holder = {}

    def join():
        holder["report"] = run_client(
            joiner_clients,
            "127.0.0.1",
            port,
            reconnect_delay=reconnect_delay,
            drop_after=drop_after,
        )

    thread = threading.Thread(target=join, daemon=True)
    thread.start()
    try:
        algorithm = create_algorithm(
            name,
            server_clients,
            make_factory(num_channels),
            TINY_CONFIG,
            backend=backend,
            resilience=ResilienceManager(),
        )
        result = algorithm.run()
        network = backend.network_summary()
    finally:
        backend.close()
    thread.join(timeout=30)
    assert not thread.is_alive(), "joiner thread failed to wind down after GOODBYE"
    return result, network, holder["report"]


class TestLoopbackParity:
    def test_fault_free_wire_run_is_bit_identical_to_serial(self, make_clients, num_channels):
        reference = serial_reference(make_clients, num_channels)
        result, network, report = run_over_wire(make_clients, num_channels)
        assert states_equal(result.global_state, reference.global_state)
        assert state_digest(result.global_state) == state_digest(reference.global_state)
        assert network["dispatched"] == network["completed"] > 0
        assert network["disconnects"] == network["heartbeat_losses"] == 0
        assert report.tasks_run == network["dispatched"]
        assert report.acks == report.updates_sent

    def test_wire_parity_holds_for_fedavg(self, make_clients, num_channels):
        reference = serial_reference(make_clients, num_channels, name="fedavg")
        result, _, _ = run_over_wire(make_clients, num_channels, name="fedavg")
        assert states_equal(result.global_state, reference.global_state)

    def test_network_summary_has_every_counter(self, make_clients, num_channels):
        _, network, _ = run_over_wire(make_clients, num_channels)
        for key in NETWORK_COUNTER_KEYS:
            assert key in network
        assert network["bytes_sent"] > 0 and network["bytes_received"] > 0


class TestReconnectResume:
    def test_mid_round_disconnect_heals_bit_identically(self, make_clients, num_channels):
        reference = serial_reference(make_clients, num_channels)
        result, network, report = run_over_wire(make_clients, num_channels, drop_after=2)
        assert states_equal(result.global_state, reference.global_state)
        assert report.drops_simulated == 1
        assert report.reconnects >= 1
        assert network["reconnects"] >= 1
        assert network["replays"] >= 1

    def test_resilience_summary_carries_network_counters(self, make_clients, num_channels):
        algorithm_clients = make_clients()
        backend = WireBackend(port=0, heartbeat_interval=HEARTBEAT, client_timeout=TIMEOUT)
        port = backend.listen([client.client_id for client in algorithm_clients])
        joiner_clients = make_clients()
        thread = threading.Thread(
            target=lambda: run_client(joiner_clients, "127.0.0.1", port, reconnect_delay=0.05),
            daemon=True,
        )
        thread.start()
        manager = ResilienceManager()
        try:
            algorithm = create_algorithm(
                "fedprox",
                algorithm_clients,
                make_factory(num_channels),
                TINY_CONFIG,
                backend=backend,
                resilience=manager,
            )
            algorithm.run()
            summary = manager.summary(backend)
        finally:
            backend.close()
        thread.join(timeout=30)
        assert summary.network is not None
        assert summary.network["completed"] == summary.network["dispatched"]
        assert "network" in summary.to_dict()


class TestInjectedWireFaults:
    def test_chaos_run_heals_to_the_fault_free_model(self, make_clients, num_channels):
        reference = serial_reference(make_clients, num_channels)
        plan = WireFaultPlan(
            disconnect_rate=0.25, corrupt_rate=0.2, delay_rate=0.1, delay_seconds=0.01, seed=3
        )
        result, network, _ = run_over_wire(make_clients, num_channels, fault_plan=plan)
        assert states_equal(result.global_state, reference.global_state)
        injected = (
            network["injected_disconnects"]
            + network["injected_delays"]
            + network["injected_corruptions"]
        )
        assert injected >= 1

    def test_fault_plan_is_deterministic_for_a_seed(self):
        draws = []
        for _ in range(2):
            plan = WireFaultPlan(disconnect_rate=0.3, corrupt_rate=0.3, seed=11)
            draws.append([plan.draw(1).kind for _ in range(20)] + [plan.draw(2).kind for _ in range(20)])
        assert draws[0] == draws[1]
        assert any(kind is not None for kind in draws[0])

    def test_zero_rate_plan_never_fires(self):
        plan = WireFaultPlan(seed=0)
        assert not plan.any_faults
        assert all(plan.draw(1).kind is None for _ in range(50))

    def test_corrupt_frame_breaks_crc_detectably(self):
        frame = encode_frame(0x10, b"payload under test")
        for salt in range(8):
            mangled = corrupt_frame(frame, salt)
            assert mangled != frame
            assert len(mangled) == len(frame)
            reader = FrameReader()
            with pytest.raises(FrameError):
                reader.feed(mangled)
                reader.finish()


class TestNetworkFailuresAsTaskFailures:
    def test_unconnected_client_reaps_to_disconnect_failure(self, make_clients):
        """No joiner ever connects: the dispatch must fail, not hang."""
        clients = make_clients()
        backend = WireBackend(port=0, heartbeat_interval=0.1, client_timeout=0.4)
        backend.bind(clients)
        backend.listen([client.client_id for client in clients])
        try:
            state = clients[0].initial_state()
            outcomes = list(
                backend.imap_outcomes([ClientTask(client_index=0, state=state)], timeout=None)
            )
        finally:
            backend.close()
        assert len(outcomes) == 1
        failure = outcomes[0]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "disconnect"
        assert failure.client_id == clients[0].client_id

    def test_silent_connection_is_reaped_as_heartbeat_loss(self, make_clients):
        """A peer that handshakes then goes silent trips the liveness deadline."""
        clients = make_clients()
        backend = WireBackend(port=0, heartbeat_interval=0.1, client_timeout=0.4)
        backend.bind(clients)
        port = backend.listen([client.client_id for client in clients])
        raw = socket.create_connection(("127.0.0.1", port))
        try:
            frame_type, body = encode_message(Hello(client_ids=(1, 2)))
            raw.sendall(encode_frame(frame_type, body))
            reader = FrameReader()
            welcome = None
            while welcome is None:
                frames = reader.feed(raw.recv(1 << 16))
                for received_type, received_body in frames:
                    if received_type == MSG_WELCOME:
                        welcome = decode_message(received_type, received_body)
            assert welcome.heartbeat_interval == backend.heartbeat_interval
            # Never answer anything again; dispatch and await the reaper.
            state = clients[0].initial_state()
            outcomes = list(
                backend.imap_outcomes([ClientTask(client_index=0, state=state)], timeout=None)
            )
            network = backend.network_summary()
        finally:
            raw.close()
            backend.close()
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], TaskFailure)
        assert outcomes[0].kind == "heartbeat"
        assert network["heartbeat_losses"] >= 1

    def test_per_task_timeout_yields_timeout_failure(self, make_clients):
        clients = make_clients()
        backend = WireBackend(port=0, heartbeat_interval=1.0, client_timeout=30.0)
        backend.bind(clients)
        backend.listen([client.client_id for client in clients])
        try:
            state = clients[0].initial_state()
            outcomes = list(
                backend.imap_outcomes([ClientTask(client_index=0, state=state)], timeout=0.2)
            )
        finally:
            backend.close()
        assert isinstance(outcomes[0], TaskFailure)
        assert outcomes[0].kind == "timeout"

    def test_one_task_per_client_is_enforced(self, make_clients):
        clients = make_clients()
        backend = WireBackend(port=0, heartbeat_interval=0.1, client_timeout=0.4)
        backend.bind(clients)
        state = clients[0].initial_state()
        tasks = [ClientTask(client_index=0, state=state), ClientTask(client_index=0, state=state)]
        with pytest.raises(ValueError):
            list(backend.imap_outcomes(tasks))
        backend.close()


class TestHandshake:
    def _server(self, make_clients, fingerprint=None):
        clients = make_clients()
        backend = WireBackend(
            port=0, heartbeat_interval=HEARTBEAT, client_timeout=TIMEOUT, fingerprint=fingerprint
        )
        port = backend.listen([client.client_id for client in clients])
        return backend, clients, port

    def test_fingerprint_mismatch_is_rejected(self, make_clients):
        backend, _, port = self._server(make_clients, fingerprint={"seed": 0, "model": "flnet"})
        try:
            with pytest.raises(HandshakeError) as excinfo:
                run_client(
                    make_clients(),
                    "127.0.0.1",
                    port,
                    fingerprint={"seed": 1, "model": "flnet"},
                    reconnect_delay=0.05,
                )
            assert excinfo.value.code == "fingerprint"
            assert "seed" in excinfo.value.detail
        finally:
            backend.close()

    def test_matching_fingerprint_is_accepted(self, make_clients, num_channels):
        fingerprint = {"seed": 0, "model": "flnet"}
        backend, clients, port = self._server(make_clients, fingerprint=fingerprint)
        thread = threading.Thread(
            target=lambda: run_client(
                make_clients(), "127.0.0.1", port, fingerprint=fingerprint, reconnect_delay=0.05
            ),
            daemon=True,
        )
        thread.start()
        try:
            assert backend.wait_for_clients(timeout=10.0)
        finally:
            backend.close()
        thread.join(timeout=10)

    def test_unknown_client_ids_are_rejected(self, make_clients, num_channels):
        backend, _, port = self._server(make_clients)

        class Impostor:
            client_id = 99

            def __init__(self, real):
                self._real = real
                self.rng_state = real.rng_state

        try:
            with pytest.raises(HandshakeError) as excinfo:
                run_client([Impostor(make_clients()[0])], "127.0.0.1", port, reconnect_delay=0.05)
            assert excinfo.value.code == "rejected"
        finally:
            backend.close()

    def test_protocol_version_mismatch_is_rejected(self, make_clients):
        backend, _, port = self._server(make_clients)
        raw = socket.create_connection(("127.0.0.1", port))
        try:
            frame_type, body = encode_message(Hello(client_ids=(1,), protocol_version=99))
            raw.sendall(encode_frame(frame_type, body))
            reader = FrameReader()
            response = None
            while response is None:
                chunk = raw.recv(1 << 16)
                if not chunk:
                    break
                for received_type, received_body in reader.feed(chunk):
                    response = (received_type, received_body)
                    break
            assert response is not None
            assert response[0] == MSG_ERROR
            error = decode_message(*response)
            assert error.code == "protocol"
        finally:
            raw.close()
            backend.close()

    def test_joiner_needs_at_least_one_client(self):
        with pytest.raises(ValueError):
            run_client([], "127.0.0.1", 1)


class TestStateDigest:
    def test_digest_is_order_invariant_and_value_sensitive(self, rng):
        a = {"w1": rng.normal(size=(3, 3)), "b1": rng.normal(size=(3,))}
        reordered = {"b1": a["b1"].copy(), "w1": a["w1"].copy()}
        assert state_digest(a) == state_digest(reordered)
        tweaked = {"w1": a["w1"].copy(), "b1": a["b1"].copy()}
        tweaked["w1"][0, 0] += 1e-12
        assert state_digest(a) != state_digest(tweaked)

    def test_digest_distinguishes_shapes(self):
        flat = {"w": np.zeros(4)}
        square = {"w": np.zeros((2, 2))}
        assert state_digest(flat) != state_digest(square)

    def test_digest_is_hex_sha256(self):
        digest = state_digest({"w": np.ones(2)})
        assert len(digest) == 64
        int(digest, 16)  # must be valid hex
