"""Chaos tier: the fault-tolerant federation runtime.

The central guarantees under test:

* a :class:`FaultPlan` is deterministic for a seed and checkpointable
  (state round-trips bit for bit),
* a fault-free supervised run (quorum 1.0, no injected faults) is
  **bit-identical** to the unsupervised path on every backend,
* injected pre-dispatch faults are healed by retries with zero effect on
  the trained model (RNG snapshot/restore),
* payload corruption is caught by the transport CRC and healed by retry,
* sub-quorum rounds raise the typed :class:`QuorumFailure`,
* clients that exhaust their retries are dropped with a recorded weight
  renormalization and the run degrades instead of dying,
* an interrupted chaos run resumes bit-identically (fault draws, retry
  counters, and drops all round-trip through the checkpoint),
* a *real* worker death (``os._exit`` inside a pool worker) is survived by
  respawning the pool and re-dispatching, still bit-identical to serial.
"""

from __future__ import annotations

import os
import time
import zlib

import numpy as np
import pytest

from repro.fl import (
    CheckpointManager,
    ClientExecutionError,
    ClientTask,
    FaultPlan,
    FederatedClient,
    FLConfig,
    ProcessPoolBackend,
    QuorumFailure,
    ResilienceManager,
    RetryPolicy,
    SeededModelFactory,
    SerialBackend,
    TaskFailure,
    ThreadPoolBackend,
    TransportDecodeError,
    create_algorithm,
    create_channel,
    create_resilience,
    resilience_requested,
)
from repro.fl.faults.plan import FaultDecision
from repro.fl.transport.codecs import IdentityCodec, Payload, QuantizationCodec, TopKCodec
from repro.models import FLNet
from repro.nn.serialization import load_state_dict, save_state_dict

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


class TinyModelBuilder:
    """Module-level builder so clients stay picklable for the process pool."""

    def __init__(self, channels: int):
        self.channels = channels

    def __call__(self, seed: int) -> FLNet:
        return FLNet(self.channels, hidden_filters=8, kernel_size=5, seed=seed)


def make_factory(num_channels: int) -> SeededModelFactory:
    return SeededModelFactory(TinyModelBuilder(num_channels), base_seed=0)


@pytest.fixture
def make_clients(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
    num_channels,
):
    """A callable producing a *fresh* 2-client roster (fresh RNG streams)."""

    def build(config: FLConfig = TINY_CONFIG, client_class=FederatedClient):
        factory = make_factory(num_channels)
        return [
            client_class(1, tiny_train_dataset, tiny_test_dataset, factory, config),
            client_class(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, config),
        ]

    return build


def states_equal(left, right) -> bool:
    """Bit-exact equality of two state dictionaries."""
    return set(left) == set(right) and all(np.array_equal(left[k], right[k]) for k in left)


def run_resilient(
    name,
    clients,
    num_channels,
    config=TINY_CONFIG,
    backend=None,
    checkpoint=None,
    channel=None,
    resilience=None,
):
    """Run one algorithm and return ``(algorithm, training_result)``."""
    algorithm = create_algorithm(
        name,
        clients,
        make_factory(num_channels),
        config,
        backend=backend,
        checkpoint=checkpoint,
        channel=channel,
        resilience=resilience,
    )
    try:
        return algorithm, algorithm.run()
    finally:
        if backend is not None:
            backend.close()


class KamikazeClient(FederatedClient):
    """A client that kills its whole worker process exactly once.

    The marker file makes the death exactly-once across process boundaries:
    the first ``local_train`` call writes it and hard-exits the hosting
    process; every later call (in the respawned pool) trains normally.
    """

    marker_path = None

    def local_train(self, *args, **kwargs):
        if self.marker_path is not None and not os.path.exists(self.marker_path):
            with open(self.marker_path, "w", encoding="utf-8") as handle:
                handle.write("boom")
            os._exit(1)
        return super().local_train(*args, **kwargs)


class ExplodingClient(FederatedClient):
    """A client whose training always raises (satellite: error context)."""

    def local_train(self, *args, **kwargs):
        raise ValueError("numerical blow-up in conv2")


class SleepyClient:
    """Backend-level stub that outlives any reasonable task timeout."""

    def __init__(self, client_id: int, delay: float):
        self.client_id = client_id
        self.delay = delay

    @property
    def rng_state(self):
        return {}

    def local_train(self, state, steps=None, proximal_mu=None):
        time.sleep(self.delay)
        return dict(state), None


class AlwaysFailClient1Plan(FaultPlan):
    """A targeted plan: client 1 always raises, everyone else is healthy.

    Lets the drop/renormalization tests pick their victim instead of hoping
    a seed hits the right client.
    """

    def __init__(self):
        super().__init__(exception_rate=0.5, seed=0)  # any_faults must be True

    def draw(self, client_id):
        counter = self._draws.get(client_id, 0)
        self._draws[client_id] = counter + 1
        if str(client_id) == "1":
            self._injected["exception"] += 1
            return FaultDecision(kind="exception")
        return FaultDecision(kind=None)


class TestFaultPlan:
    def test_deterministic_for_seed(self):
        draws_a = []
        draws_b = []
        for plan, sink in ((FaultPlan(crash_rate=0.3, corruption_rate=0.3, seed=7), draws_a),
                           (FaultPlan(crash_rate=0.3, corruption_rate=0.3, seed=7), draws_b)):
            for _ in range(20):
                for client_id in (1, 2, "edge-3"):
                    sink.append(plan.draw(client_id))
        assert draws_a == draws_b
        # A different seed produces a different fault sequence.
        other = FaultPlan(crash_rate=0.3, corruption_rate=0.3, seed=8)
        draws_c = [other.draw(client_id) for _ in range(20) for client_id in (1, 2, "edge-3")]
        assert draws_c != draws_a

    def test_draws_are_order_independent(self):
        # The decision for client c's n-th draw does not depend on how the
        # draws of different clients interleave (backend independence).
        forward = FaultPlan(exception_rate=0.5, seed=3)
        reverse = FaultPlan(exception_rate=0.5, seed=3)
        seq_forward = {1: [], 2: []}
        seq_reverse = {1: [], 2: []}
        for _ in range(10):
            for client_id in (1, 2):
                seq_forward[client_id].append(forward.draw(client_id))
            for client_id in (2, 1):
                seq_reverse[client_id].append(reverse.draw(client_id))
        assert seq_forward == seq_reverse

    def test_state_roundtrip_replays_exactly(self):
        plan = FaultPlan(crash_rate=0.25, timeout_rate=0.25, seed=11)
        for _ in range(7):
            plan.draw(1)
            plan.draw(2)
        snapshot = plan.state()
        tail = [plan.draw(client_id) for _ in range(10) for client_id in (1, 2)]

        resumed = FaultPlan(crash_rate=0.25, timeout_rate=0.25, seed=11)
        resumed.set_state(snapshot)
        replayed = [resumed.draw(client_id) for _ in range(10) for client_id in (1, 2)]
        assert replayed == tail
        assert resumed.injected_counts() == plan.injected_counts()

    def test_no_faults_short_circuits(self):
        plan = FaultPlan()
        assert not plan.any_faults
        assert plan.draw(1) == FaultDecision(kind=None)
        assert plan.state()["draws"] == {}  # no counter was spent

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="must be in \\[0, 1\\]"):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError, match="sum to at most 1"):
            FaultPlan(crash_rate=0.6, exception_rate=0.6)

    def test_corruption_draws_carry_a_salt(self):
        plan = FaultPlan(corruption_rate=1.0, seed=0)
        decisions = [plan.draw(1) for _ in range(5)]
        assert all(d.kind == "corruption" for d in decisions)
        assert len({d.salt for d in decisions}) > 1  # salts vary per draw


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_grows(self):
        policy = RetryPolicy(max_retries=3, backoff_base=1.0, backoff_factor=2.0, seed=5)
        first = [policy.backoff_seconds(1, attempt) for attempt in (1, 2, 3)]
        second = [policy.backoff_seconds(1, attempt) for attempt in (1, 2, 3)]
        assert first == second
        assert first[0] < first[1] < first[2]
        # Jitter keeps each wait within 10% of the exponential schedule.
        for attempt, wait in enumerate(first, start=1):
            nominal = 1.0 * 2.0 ** (attempt - 1)
            assert nominal <= wait <= nominal * 1.1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="task_timeout"):
            RetryPolicy(task_timeout=0.0)

    def test_factory_gating(self):
        assert not resilience_requested()
        assert resilience_requested(quorum=0.5)
        assert resilience_requested(max_retries=0)
        assert resilience_requested(crash_rate=0.1)
        assert create_resilience() is None
        manager = create_resilience(quorum=0.7, crash_rate=0.1, seed=3)
        assert isinstance(manager, ResilienceManager)
        assert manager.quorum == 0.7
        assert manager.plan.rates["crash"] == 0.1


class TestSupervisedParity:
    """Quorum 1.0 + zero faults must be bit-identical to the unsupervised path."""

    @pytest.mark.parametrize("algorithm", ["fedavg", "fedprox", "fedavgm", "dp_fedprox"])
    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    def test_fault_free_supervision_is_bit_identical(
        self, algorithm, backend_name, make_clients, num_channels
    ):
        _, baseline = run_resilient(algorithm, make_clients(), num_channels)

        backend = {
            "serial": SerialBackend,
            "thread": lambda: ThreadPoolBackend(workers=2),
            "process": lambda: ProcessPoolBackend(workers=2),
        }[backend_name]()
        supervised_clients = make_clients()
        supervisor, supervised = run_resilient(
            algorithm,
            supervised_clients,
            num_channels,
            backend=backend,
            resilience=create_resilience(max_retries=2, seed=0),
        )

        assert states_equal(baseline.global_state, supervised.global_state)
        assert [r.mean_loss for r in baseline.history] == [
            r.mean_loss for r in supervised.history
        ]
        summary = supervisor.resilience.summary()
        assert summary.retries == 0
        assert summary.gave_up == 0
        assert summary.dropped_clients == []
        assert sum(summary.injected.values()) == 0

    def test_unsupported_algorithm_warns_and_drops_resilience(
        self, make_clients, num_channels
    ):
        with pytest.warns(UserWarning, match="does not support fault tolerance"):
            algorithm = create_algorithm(
                "fedprox_lg",
                make_clients(),
                make_factory(num_channels),
                TINY_CONFIG,
                resilience=create_resilience(max_retries=1, seed=0),
            )
        assert algorithm.resilience is None


class TestRetryHealing:
    def test_pre_dispatch_faults_heal_to_the_fault_free_result(
        self, make_clients, num_channels
    ):
        """Crashes/exceptions/timeouts before dispatch never touch client RNG,
        and retried successes restore their snapshots — so as long as nobody
        exhausts the retry budget, the trained model is *bit-identical* to a
        run with no faults at all."""
        _, baseline = run_resilient("fedprox", make_clients(), num_channels)

        manager = create_resilience(
            crash_rate=0.2, exception_rate=0.2, timeout_rate=0.2, max_retries=8, seed=0
        )
        supervisor, chaotic = run_resilient(
            "fedprox", make_clients(), num_channels, resilience=manager
        )
        summary = supervisor.resilience.summary()
        assert summary.retries > 0, "the seeded plan injected nothing; raise the rates"
        assert summary.gave_up == 0
        assert summary.backoff_seconds > 0.0
        assert sum(summary.injected.values()) == summary.retries
        assert states_equal(baseline.global_state, chaotic.global_state)
        assert [r.mean_loss for r in baseline.history] == [
            r.mean_loss for r in chaotic.history
        ]

    def test_round_history_records_retry_accounting(self, make_clients, num_channels):
        manager = create_resilience(exception_rate=0.4, max_retries=8, seed=1)
        _, training = run_resilient(
            "fedavg", make_clients(), num_channels, resilience=manager
        )
        recorded = sum(record.extra.get("retries", 0) for record in training.history)
        assert recorded == manager.retries > 0

    def test_corruption_is_caught_by_crc_and_healed(self, make_clients, num_channels):
        """A flipped upload byte keeps the original CRC, fails the framing
        check at decode, and is retried to a bit-identical success."""
        _, baseline = run_resilient(
            "fedavg", make_clients(), num_channels, channel=create_channel("none")
        )

        manager = create_resilience(corruption_rate=0.5, max_retries=8, seed=0)
        supervisor, healed = run_resilient(
            "fedavg",
            make_clients(),
            num_channels,
            channel=create_channel("none"),
            resilience=manager,
        )
        summary = supervisor.resilience.summary()
        assert summary.injected["corruption"] > 0, "no corruption was injected; re-seed"
        assert summary.retries > 0
        assert summary.gave_up == 0
        assert states_equal(baseline.global_state, healed.global_state)


class TestQuorum:
    def test_quorum_required_math(self):
        manager = ResilienceManager(quorum=0.7)
        assert manager.quorum_required(10) == 7
        assert manager.quorum_required(9) == 7  # ceil(6.3)
        assert manager.quorum_required(0) == 0
        manager.check_quorum(0, arrived=7, cohort_size=10)  # exactly at quorum: no raise

    def test_invalid_quorum_rejected(self):
        with pytest.raises(ValueError, match="quorum"):
            ResilienceManager(quorum=0.0)
        with pytest.raises(ValueError, match="quorum"):
            ResilienceManager(quorum=1.5)

    def test_sub_quorum_round_raises_typed_failure(
        self, tmp_path, make_clients, num_channels
    ):
        manager = create_resilience(exception_rate=1.0, max_retries=0, quorum=0.5, seed=0)
        with pytest.raises(QuorumFailure) as excinfo:
            run_resilient(
                "fedavg",
                make_clients(),
                num_channels,
                checkpoint=CheckpointManager(tmp_path),
                resilience=manager,
            )
        failure = excinfo.value
        assert failure.round_index == 0
        assert failure.arrived == 0
        assert failure.cohort_size == 2
        assert failure.required == 1
        assert failure.checkpoint_dir == str(tmp_path)
        assert "below quorum" in str(failure)

    def test_graceful_drop_renormalizes_and_run_completes(
        self, make_clients, num_channels
    ):
        """Client 1 always fails: it exhausts its retries in round 0, is
        dropped permanently with a recorded renormalization, and the run
        finishes on the surviving client."""
        clients = make_clients()
        manager = ResilienceManager(
            plan=AlwaysFailClient1Plan(),
            retry=RetryPolicy(max_retries=1, seed=0),
            quorum=0.5,
        )
        supervisor, training = run_resilient(
            "fedavg", clients, num_channels, resilience=manager
        )
        summary = supervisor.resilience.summary()
        assert summary.gave_up == 1
        assert summary.dropped_clients == [1]
        assert len(summary.renormalizations) == 1
        record = summary.renormalizations[0]
        assert record["round"] == 0
        assert record["dropped_ids"] == [1]
        expected_fraction = clients[1].num_samples / (
            clients[0].num_samples + clients[1].num_samples
        )
        assert record["remaining_weight_fraction"] == pytest.approx(expected_fraction)
        # Round 0's history row records the degradation...
        assert training.history[0].extra["dropped_clients"] == [1]
        # ...and later rounds never re-dispatch the dropped client: one
        # update folded per round, from client 2 only.
        assert len(training.history) == TINY_CONFIG.rounds

        # The surviving trajectory equals training client 2 alone.
        solo = create_algorithm(
            "fedavg", [make_clients()[1]], make_factory(num_channels), TINY_CONFIG
        ).run()
        assert states_equal(training.global_state, solo.global_state)


class TestChaosResume:
    @pytest.mark.parametrize("algorithm", ["fedavg", "fedavgm"])
    def test_interrupted_chaos_run_resumes_bit_identically(
        self, algorithm, tmp_path, make_clients, num_channels
    ):
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=4)
        short_config = replace(TINY_CONFIG, rounds=2)

        def chaos():
            return create_resilience(
                crash_rate=0.25, exception_rate=0.15, max_retries=6, quorum=0.5, seed=0
            )

        supervisor, uninterrupted = run_resilient(
            algorithm,
            make_clients(long_config),
            num_channels,
            config=long_config,
            resilience=chaos(),
        )
        full_summary = supervisor.resilience.summary()
        assert full_summary.retries > 0, "the seeded plan injected nothing; raise the rates"

        # Phase 1: half the rounds with checkpointing, then "crash".
        run_resilient(
            algorithm,
            make_clients(short_config),
            num_channels,
            config=short_config,
            checkpoint=CheckpointManager(tmp_path),
            resilience=chaos(),
        )
        # Phase 2: a fresh process resumes mid-chaos.
        resumed_supervisor, resumed = run_resilient(
            algorithm,
            make_clients(long_config),
            num_channels,
            config=long_config,
            checkpoint=CheckpointManager(tmp_path),
            resilience=chaos(),
        )

        assert states_equal(uninterrupted.global_state, resumed.global_state)
        losses = {r.round_index: r.mean_loss for r in uninterrupted.history}
        for record in resumed.history:
            assert record.mean_loss == losses[record.round_index]
        # The restored fault/retry accounting matches the uninterrupted run.
        resumed_summary = resumed_supervisor.resilience.summary()
        assert resumed_summary.retries == full_summary.retries
        assert resumed_summary.injected == full_summary.injected
        assert resumed_summary.backoff_seconds == full_summary.backoff_seconds

    def test_resume_under_a_different_fault_plan_rejected(
        self, tmp_path, make_clients, num_channels
    ):
        run_resilient(
            "fedavg",
            make_clients(),
            num_channels,
            checkpoint=CheckpointManager(tmp_path),
            resilience=create_resilience(crash_rate=0.2, max_retries=4, seed=0),
        )
        with pytest.raises(ValueError, match="different run"):
            run_resilient(
                "fedavg",
                make_clients(),
                num_channels,
                checkpoint=CheckpointManager(tmp_path),
                resilience=create_resilience(crash_rate=0.4, max_retries=4, seed=0),
            )


class TestProcessPoolResilience:
    def test_real_worker_death_respawns_and_recovers(
        self, tmp_path, make_clients, num_channels
    ):
        """One worker hard-exits mid-round; the pool is respawned, the lost
        task re-dispatched from its original payload, and the result stays
        bit-identical to serial execution."""
        _, baseline = run_resilient("fedavg", make_clients(), num_channels)

        clients = make_clients(client_class=KamikazeClient)
        clients[0].marker_path = str(tmp_path / "died-once")
        backend = ProcessPoolBackend(workers=2)
        algorithm = create_algorithm(
            "fedavg", clients, make_factory(num_channels), TINY_CONFIG, backend=backend
        )
        try:
            training = algorithm.run()
            assert backend.respawns >= 1
            assert os.path.exists(clients[0].marker_path)
        finally:
            backend.close()
        assert states_equal(baseline.global_state, training.global_state)

    def test_worker_exception_carries_client_context(self, make_clients, num_channels):
        """Satellite: unsupervised failures surface as ClientExecutionError
        with the client id, backend name, and remote traceback attached."""
        clients = make_clients(client_class=ExplodingClient)
        backend = ProcessPoolBackend(workers=2)
        backend.bind(clients)
        task = ClientTask(
            client_index=0, state=clients[0].initial_state(), steps=1, proximal_mu=0.0
        )
        try:
            with pytest.raises(ClientExecutionError) as excinfo:
                backend.map([task])
        finally:
            backend.close()
        error = excinfo.value
        assert error.client_id == "1"
        assert error.client_index == 0
        assert error.backend == "process"
        assert error.kind == "exception"
        assert "numerical blow-up" in str(error)
        assert "ValueError" in (error.remote_traceback or "")

    def test_serial_exception_carries_client_context(self, make_clients, num_channels):
        clients = make_clients(client_class=ExplodingClient)
        backend = SerialBackend()
        backend.bind(clients)
        task = ClientTask(
            client_index=1, state=clients[1].initial_state(), steps=1, proximal_mu=0.0
        )
        with pytest.raises(ClientExecutionError) as excinfo:
            backend.map([task])
        assert excinfo.value.client_id == "2"
        assert excinfo.value.backend == "serial"

    def test_thread_timeout_yields_task_failure(self):
        backend = ThreadPoolBackend(workers=2)
        # The fast task goes first so it completes under any pool size (the
        # pool clamps to the core count); the sleeper behind it must time out.
        backend.bind([SleepyClient(1, delay=0.0), SleepyClient(2, delay=1.5)])
        tasks = [
            ClientTask(client_index=0, state={}, steps=1, proximal_mu=0.0),
            ClientTask(client_index=1, state={}, steps=1, proximal_mu=0.0),
        ]
        try:
            outcomes = list(backend.imap_outcomes(tasks, timeout=0.25))
        finally:
            backend.close()
        assert not isinstance(outcomes[0], TaskFailure)
        assert isinstance(outcomes[1], TaskFailure)
        assert outcomes[1].kind == "timeout"
        assert outcomes[1].client_id == 2


class TestTransportFraming:
    def small_state(self):
        rng = np.random.default_rng(0)
        return {
            "conv.weight": rng.normal(size=(3, 4)),
            "conv.bias": rng.normal(size=(4,)),
        }

    @pytest.mark.parametrize(
        "codec",
        [IdentityCodec(), QuantizationCodec(num_bits=8), TopKCodec(keep_fraction=0.5)],
        ids=["identity", "quantize", "topk"],
    )
    def test_crc_mismatch_is_typed(self, codec):
        payload = codec.encode(self.small_state())
        data = bytearray(payload.data)
        data[len(data) // 2] ^= 0xFF
        tampered = Payload(
            codec=payload.codec, data=bytes(data), schema=payload.schema, crc=payload.crc
        )
        with pytest.raises(TransportDecodeError) as excinfo:
            codec.decode(tampered)
        error = excinfo.value
        assert error.codec == codec.name
        assert error.reason == "crc mismatch"
        assert error.actual_bytes == len(data)
        assert codec.name in str(error)

    def test_truncated_identity_payload_reports_expected_bytes(self):
        codec = IdentityCodec()
        payload = codec.encode(self.small_state())
        truncated = Payload(
            codec=payload.codec, data=payload.data[:-8], schema=payload.schema
        )  # fresh CRC over the truncated bytes: the length check must catch it
        with pytest.raises(TransportDecodeError) as excinfo:
            codec.decode(truncated)
        error = excinfo.value
        assert error.reason == "truncated"
        assert error.expected_bytes == len(payload.data)
        assert error.actual_bytes == len(payload.data) - 8

    def test_truncated_topk_payload_is_typed(self):
        codec = TopKCodec(keep_fraction=0.5)
        payload = codec.encode(self.small_state())
        truncated = Payload(
            codec=payload.codec, data=payload.data[:3], schema=payload.schema
        )
        with pytest.raises(TransportDecodeError, match="truncated"):
            codec.decode(truncated)

    def test_corrupt_deflate_stream_is_typed(self):
        codec = QuantizationCodec(num_bits=8, deflate=True)
        payload = codec.encode(self.small_state())
        garbage = b"\x00" + payload.data[1:]
        bad = Payload(codec=payload.codec, data=garbage, schema=payload.schema)
        with pytest.raises(TransportDecodeError, match="deflate"):
            codec.decode(bad)

    def test_payload_crc_is_computed_at_construction(self):
        payload = Payload(codec="identity", data=b"hello", schema=())
        assert payload.crc == zlib.crc32(b"hello")
        kept = Payload(codec="identity", data=b"hello!", schema=(), crc=payload.crc)
        assert kept.crc == payload.crc  # fault injection keeps the original CRC


class TestAtomicCheckpointWrites:
    def test_crash_mid_write_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        target = tmp_path / "state.npz"
        good = {"w": np.arange(6.0).reshape(2, 3)}
        save_state_dict(good, target)

        real_savez = np.savez

        def dying_savez(handle, **arrays):
            handle.write(b"\x00" * 64)  # partial garbage, then the "kill"
            raise KeyboardInterrupt("power loss")

        monkeypatch.setattr(np, "savez", dying_savez)
        with pytest.raises(KeyboardInterrupt):
            save_state_dict({"w": np.zeros((2, 3))}, target)
        monkeypatch.setattr(np, "savez", real_savez)

        # The interrupted write left no temp file and never touched the
        # previous complete archive.
        assert not list(tmp_path.glob("*.tmp"))
        loaded = load_state_dict(target)
        assert states_equal(loaded, good)

    def test_save_is_atomic_via_replace(self, tmp_path):
        target = tmp_path / "state"
        written = save_state_dict({"w": np.ones(3)}, target)
        assert written.suffix == ".npz"
        assert not list(tmp_path.glob("*.tmp"))
        assert states_equal(load_state_dict(written), {"w": np.ones(3)})
