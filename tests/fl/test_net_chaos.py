"""Process-level chaos tests: real joiner processes dying mid-round.

Unlike the loopback tests (same-process joiner thread), these spawn the
actual ``repro join`` CLI as subprocesses:

* a joiner that SIGKILLs itself mid-round (``--kill-after``) — no
  goodbye, no flush, a real host death — is replaced by a relaunched
  process, and the run commits bit-identically to the no-fault
  reference via the quorum/retry/replay path,
* a full ``repro serve`` / ``repro join`` loopback run through the CLI
  (the local mirror of the CI wire-smoke job): a seeded disconnect
  (``--drop-after``) must heal, the greppable ``wire:`` line must show
  nonzero reconnects, and the ``state digest`` lines must equal the
  serial ``repro reproduce`` reference digests.

Both tests share one corpus cache directory so the synthetic dataset is
generated once.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVE_TIMEOUT = 300


@pytest.fixture(scope="module")
def cli_env(tmp_path_factory):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cache_dir = tmp_path_factory.mktemp("wire-chaos-corpus")
    return env, str(cache_dir)


def _cli(*argv):
    return [sys.executable, "-m", "repro.cli", *argv]


@pytest.fixture(scope="module")
def serial_digests(cli_env):
    """Digest lines of the no-fault serial reference (`repro reproduce`)."""
    env, cache_dir = cli_env
    result = subprocess.run(
        _cli(
            "reproduce",
            "--preset",
            "smoke",
            "--algorithms",
            "fedprox",
            "--state-digest",
            "--cache-dir",
            cache_dir,
        ),
        env=env,
        capture_output=True,
        text=True,
        timeout=SERVE_TIMEOUT,
        check=True,
    )
    digests = [line for line in result.stdout.splitlines() if line.startswith("state digest ")]
    assert digests, f"reproduce printed no digests:\n{result.stdout}"
    return digests


def _start_serve(env, cache_dir, *extra):
    """Launch `repro serve --port 0`; returns (process, bound port)."""
    process = subprocess.Popen(
        _cli(
            "serve",
            "--preset",
            "smoke",
            "--algorithms",
            "fedprox",
            "--port",
            "0",
            "--heartbeat-interval",
            "0.3",
            "--client-timeout",
            "3.0",
            "--state-digest",
            "--cache-dir",
            cache_dir,
            *extra,
        ),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    port = None
    for line in process.stdout:
        match = re.search(r"serving federation on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    assert port is not None, "serve never printed its listening address"
    return process, port


def _drain(process, sink):
    """Collect the rest of a process's stdout without blocking it."""

    def pump():
        sink.append(process.stdout.read())

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    return thread


def _join_args(cache_dir, port, *extra):
    return _cli(
        "join",
        "--preset",
        "smoke",
        "--port",
        str(port),
        "--reconnect-delay",
        "0.2",
        "--cache-dir",
        cache_dir,
        *extra,
    )


class TestSigkillChaos:
    def test_killed_joiner_is_replaced_and_the_run_commits_identically(
        self, cli_env, serial_digests
    ):
        """SIGKILL a real client process mid-round; a relaunch heals the run."""
        env, cache_dir = cli_env
        serve, port = _start_serve(env, cache_dir, "--client-timeout", "10.0")
        serve_tail = []
        drainer = None
        try:
            first = subprocess.Popen(
                _join_args(cache_dir, port, "--kill-after", "1"),
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            first.wait(timeout=SERVE_TIMEOUT)
            # The process SIGKILLed itself: died by signal, no exit code 0.
            assert first.returncode == -signal.SIGKILL
            second = subprocess.run(
                _join_args(cache_dir, port),
                env=env,
                capture_output=True,
                text=True,
                timeout=SERVE_TIMEOUT,
            )
            assert second.returncode == 0, second.stderr
            drainer = _drain(serve, serve_tail)
            assert serve.wait(timeout=SERVE_TIMEOUT) == 0
        finally:
            if serve.poll() is None:
                serve.kill()
            if drainer is not None:
                drainer.join(timeout=10)
        output = "".join(serve_tail)
        wire_line = next(line for line in output.splitlines() if line.startswith("wire: "))
        counters = dict(pair.split("=") for pair in wire_line[len("wire: ") :].split())
        assert int(counters["disconnects"]) >= 1
        assert int(counters["reconnects"]) >= 1
        digests = [line for line in output.splitlines() if line.startswith("state digest ")]
        assert digests == serial_digests
        # The relaunched joiner replayed the dead process's journal backlog.
        join_line = next(
            line for line in second.stdout.splitlines() if line.startswith("join: ")
        )
        assert re.search(r"replays_received=[1-9]", join_line)


class TestCliWireSmoke:
    def test_seeded_disconnect_heals_and_digests_match_serial(self, cli_env, serial_digests):
        """The CI wire-smoke scenario: serve + join with a seeded drop."""
        env, cache_dir = cli_env
        serve, port = _start_serve(env, cache_dir)
        serve_tail = []
        drainer = None
        try:
            join = subprocess.run(
                _join_args(cache_dir, port, "--drop-after", "2"),
                env=env,
                capture_output=True,
                text=True,
                timeout=SERVE_TIMEOUT,
            )
            assert join.returncode == 0, join.stderr
            drainer = _drain(serve, serve_tail)
            assert serve.wait(timeout=SERVE_TIMEOUT) == 0
        finally:
            if serve.poll() is None:
                serve.kill()
            if drainer is not None:
                drainer.join(timeout=10)
        output = "".join(serve_tail)
        wire_line = next(line for line in output.splitlines() if line.startswith("wire: "))
        assert re.search(r"reconnects=[1-9]", wire_line)
        assert re.search(r"replays=[1-9]", wire_line)
        digests = [line for line in output.splitlines() if line.startswith("state digest ")]
        assert digests == serial_digests
        join_line = next(line for line in join.stdout.splitlines() if line.startswith("join: "))
        assert re.search(r"drops_simulated=1", join_line)
        assert re.search(r"reconnects=[1-9]", join_line)

    def test_join_against_a_dead_port_exits_nonzero(self, cli_env):
        env, cache_dir = cli_env
        result = subprocess.run(
            _cli(
                "join",
                "--preset",
                "smoke",
                "--port",
                "1",  # nothing listens on port 1
                "--reconnect-delay",
                "0.01",
                "--max-reconnects",
                "2",
                "--cache-dir",
                cache_dir,
            ),
            env=env,
            capture_output=True,
            text=True,
            timeout=SERVE_TIMEOUT,
        )
        assert result.returncode == 1
        assert "session lost" in result.stderr
