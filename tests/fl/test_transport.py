"""Tests for the wire-level transport subsystem: codecs and the channel.

The central guarantees under test:

* every codec's encode → decode round trip is exact where promised
  (bit-exact for float64 identity, quantization-grid-exact for
  ``QuantizationCodec`` — matching what ``quantize_state`` simulates —
  and exact surviving values for ``TopKCodec``),
* payload byte counts are real (``len(data)``) and deterministic,
* a training run routed through an ``IdentityCodec`` float64 channel is
  bit-identical to one without any channel,
* serial and process-pool execution stay bit-identical under every codec,
* top-k sparsified delta uploads with error feedback still converge.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.fl import (
    Channel,
    FederatedClient,
    FLConfig,
    IdentityCodec,
    ProcessPoolBackend,
    QuantizationCodec,
    SeededModelFactory,
    SerialBackend,
    TopKCodec,
    create_algorithm,
    create_channel,
    quantize_state,
    state_bytes,
)
from repro.fl.parameters import flatten_state
from repro.fl.transport import packed_code_bytes, topk_flat_indices
from repro.models import FLNet

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


def _state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": rng.normal(size=(4, 3, 3, 3)),
        "conv.bias": rng.normal(size=4),
        "scale": np.full((2, 2), 1.25),
    }


def states_equal(left, right) -> bool:
    return set(left) == set(right) and all(np.array_equal(left[k], right[k]) for k in left)


class TinyModelBuilder:
    """Module-level builder so clients stay picklable for the process pool."""

    def __init__(self, channels: int):
        self.channels = channels

    def __call__(self, seed: int) -> FLNet:
        return FLNet(self.channels, hidden_filters=8, kernel_size=5, seed=seed)


def make_factory(num_channels: int) -> SeededModelFactory:
    return SeededModelFactory(TinyModelBuilder(num_channels), base_seed=0)


@pytest.fixture
def make_clients(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
    num_channels,
):
    """A callable producing a *fresh* 2-client roster (fresh RNG streams)."""

    def build(config: FLConfig = TINY_CONFIG):
        factory = make_factory(num_channels)
        return [
            FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, config),
            FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, config),
        ]

    return build


class TestIdentityCodec:
    def test_float64_roundtrip_bit_exact(self):
        state = _state(1)
        codec = IdentityCodec("float64")
        decoded = codec.decode(codec.encode(state))
        assert states_equal(state, decoded)
        assert codec.lossless

    def test_float64_payload_bytes_are_real_size(self):
        state = _state(2)
        payload = IdentityCodec("float64").encode(state)
        assert payload.num_bytes == state_bytes(state)

    @pytest.mark.parametrize("dtype", ["float32", "float16"])
    def test_cast_roundtrip_matches_astype(self, dtype):
        state = _state(3)
        codec = IdentityCodec(dtype)
        decoded = codec.decode(codec.encode(state))
        for name, values in state.items():
            expected = values.astype(dtype).astype(np.float64)
            np.testing.assert_array_equal(decoded[name], expected)
            assert decoded[name].dtype == np.float64

    def test_payload_scales_with_dtype(self):
        state = _state(4)
        full = IdentityCodec("float64").encode(state).num_bytes
        half = IdentityCodec("float32").encode(state).num_bytes
        quarter = IdentityCodec("float16").encode(state).num_bytes
        assert full == 2 * half == 4 * quarter

    def test_rejects_non_float_dtype(self):
        with pytest.raises(ValueError):
            IdentityCodec("int32")

    def test_decode_rejects_foreign_payload(self):
        payload = QuantizationCodec(8).encode(_state())
        with pytest.raises(ValueError, match="encoded by codec"):
            IdentityCodec("float64").decode(payload)


class TestQuantizationCodec:
    @pytest.mark.parametrize("num_bits", [1, 4, 8, 12, 16])
    @pytest.mark.parametrize("deflate", [False, True])
    def test_decode_matches_simulation_exactly(self, num_bits, deflate):
        # The codec must reconstruct exactly the values quantize_state
        # simulated (same grid, same float operations).
        state = _state(5)
        codec = QuantizationCodec(num_bits, deflate=deflate)
        decoded = codec.decode(codec.encode(state))
        simulated = quantize_state(state, num_bits=num_bits).state
        assert states_equal(decoded, simulated)

    def test_error_within_quantization_grid(self):
        state = _state(6)
        codec = QuantizationCodec(8, deflate=False)
        decoded = codec.decode(codec.encode(state))
        for name, values in state.items():
            span = float(values.max()) - float(values.min())
            grid = span / codec.levels
            assert np.max(np.abs(decoded[name] - values)) <= grid / 2 + 1e-12

    def test_payload_bytes_without_deflate(self):
        state = _state(7)
        codec = QuantizationCodec(5, deflate=False)
        expected = 0
        for values in state.values():
            array = np.asarray(values)
            expected += 16  # low/high scales, float64 each
            if float(array.max()) > float(array.min()):
                expected += packed_code_bytes(array.size, 5)
        assert codec.encode(state).num_bytes == expected

    def test_constant_tensor_ships_scales_only(self):
        state = {"w": np.full((64,), 3.14)}
        codec = QuantizationCodec(8, deflate=False)
        payload = codec.encode(state)
        assert payload.num_bytes == 16
        np.testing.assert_array_equal(codec.decode(payload)["w"], state["w"])

    def test_encode_is_deterministic(self):
        state = _state(8)
        codec = QuantizationCodec(8, deflate=True)
        assert codec.encode(state).data == codec.encode(state).data

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationCodec(0)
        with pytest.raises(ValueError):
            QuantizationCodec(17)


class TestTopKCodec:
    def test_exact_count_under_ties(self):
        state = {"w": np.full(10, 2.0)}
        codec = TopKCodec(0.5, value_dtype="float64")
        decoded = codec.decode(codec.encode(state))
        surviving = np.flatnonzero(decoded["w"])
        assert list(surviving) == [0, 1, 2, 3, 4]

    def test_survivors_keep_exact_values_at_float64(self):
        state = _state(9)
        codec = TopKCodec(0.25, value_dtype="float64")
        decoded = codec.decode(codec.encode(state))
        flat = flatten_state(state)
        flat_decoded = flatten_state(decoded)
        kept = np.flatnonzero(flat_decoded)
        np.testing.assert_array_equal(flat_decoded[kept], flat[kept])
        assert kept.size == codec.keep_count(flat.size)

    def test_payload_layout_bytes(self):
        state = _state(10)
        total = flatten_state(state).size
        for dtype, itemsize in (("float64", 8), ("float32", 4), ("float16", 2)):
            codec = TopKCodec(0.2, value_dtype=dtype)
            keep = codec.keep_count(total)
            assert codec.encode(state).num_bytes == 4 + keep * (4 + itemsize)

    def test_full_fraction_float64_is_lossless(self):
        state = _state(11)
        codec = TopKCodec(1.0, value_dtype="float64")
        assert states_equal(state, codec.decode(codec.encode(state)))

    def test_selection_helper_breaks_ties_by_index(self):
        flat = np.array([1.0, -1.0, 0.5, 1.0, -1.0])
        np.testing.assert_array_equal(topk_flat_indices(flat, 3), [0, 1, 3])

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TopKCodec(0.0)
        with pytest.raises(ValueError):
            TopKCodec(1.5)


class TestChannel:
    def test_identity_roundtrip_and_accounting(self):
        state = _state(12)
        channel = create_channel("none")
        wire_tasks = channel.broadcast([state, state], [1, 2])
        # The same state object is encoded once and its wire task shared...
        assert wire_tasks[0] is wire_tasks[1]
        # ...but bytes are billed once per receiving client.
        size = state_bytes(state)
        assert channel.tracker.total_downlink_bytes == 2 * size
        received = channel.receive(1, state=state)
        assert states_equal(received, state)
        assert channel.tracker.total_uplink_bytes == size

    def test_receive_argument_validation(self):
        channel = create_channel("none")
        channel.broadcast([_state()], [1])
        with pytest.raises(ValueError, match="exactly one"):
            channel.receive(1)
        with pytest.raises(ValueError, match="exactly one"):
            channel.receive(1, state=_state(), payload=IdentityCodec("float64").encode(_state()))

    def test_delta_upload_needs_a_reference(self):
        channel = Channel(QuantizationCodec(8), delta_upload=True)
        with pytest.raises(RuntimeError, match="broadcast reference"):
            channel.receive(1, state=_state())

    def test_delta_upload_reconstruction(self):
        state = _state(13)
        channel = Channel(QuantizationCodec(8, deflate=False), delta_upload=True)
        channel.broadcast([state], [1])
        new_state = {k: v + 0.01 for k, v in state.items()}
        received = channel.receive(1, state=new_state)
        # reference + quantized(new - reference): within grid error of new.
        for name in state:
            assert np.max(np.abs(received[name] - new_state[name])) < 0.01

    def test_error_feedback_accumulates_and_compensates(self):
        state = _state(14)
        channel = Channel(
            TopKCodec(0.1, value_dtype="float64"),
            downlink_codec=IdentityCodec("float64"),
            delta_upload=True,
            error_feedback=True,
        )
        channel.broadcast([state], [1])
        rng = np.random.default_rng(3)
        new_state = {k: v + 0.1 * rng.normal(size=np.shape(v)) for k, v in state.items()}
        channel.receive(1, state=new_state)
        first_residual = channel.residual_norm(1)
        assert first_residual > 0.0  # the codec dropped something

        # Round 2: upload an unchanged state.  Without error feedback the
        # delta would be zero and nothing would ever ship; with it, the
        # residual is added to the delta, so the largest dropped entries
        # from round 1 get through and the residual shrinks.
        channel.broadcast([state], [1])
        channel.receive(1, state=state)
        assert channel.residual_norm(1) < first_residual

    def test_summary_reports_per_round(self):
        state = _state(15)
        channel = create_channel("quantize", compression_bits=8)
        channel.broadcast([state], [1])
        channel.receive(1, state=state)
        channel.broadcast([state], [1])
        channel.receive(1, state=state)
        summary = channel.summary()
        assert summary.rounds == 2
        assert set(summary.uplink_bytes_per_round) == {0, 1}
        assert summary.total_uplink_bytes > 0
        assert summary.delta_upload and not summary.error_feedback
        assert summary.to_dict()["total_bytes"] == summary.total_bytes

    def test_unknown_compression_rejected(self):
        with pytest.raises(ValueError, match="unknown compression"):
            create_channel("gzip")

    def test_wire_objects_are_picklable(self):
        state = _state(16)
        channel = create_channel("topk", topk_fraction=0.2)
        wire_tasks = channel.broadcast([state], [1])
        clone = pickle.loads(pickle.dumps(wire_tasks[0]))
        assert states_equal(
            clone.down_codec.decode(clone.payload),
            channel.downlink_codec.decode(wire_tasks[0].payload),
        )


def run_fedavg(clients, num_channels, backend=None, channel=None, config=TINY_CONFIG):
    algorithm = create_algorithm(
        "fedavg",
        clients,
        make_factory(num_channels),
        config,
        backend=backend,
        channel=channel,
    )
    try:
        return algorithm.run()
    finally:
        if backend is not None:
            backend.close()


class TestChannelTrainingIntegration:
    def test_identity_channel_is_bit_identical_to_no_channel(self, make_clients, num_channels):
        # The float64 identity codec must be invisible: same states, same
        # losses, bit for bit, as a run without any transport layer.
        bare = run_fedavg(make_clients(), num_channels)
        routed = run_fedavg(make_clients(), num_channels, channel=create_channel("none"))
        assert states_equal(bare.global_state, routed.global_state)
        assert [r.mean_loss for r in bare.history] == [r.mean_loss for r in routed.history]

    def test_identity_channel_measures_real_bytes(self, make_clients, num_channels):
        channel = create_channel("none")
        clients = make_clients()
        run_fedavg(clients, num_channels, channel=channel)
        summary = channel.summary()
        state_size = state_bytes(make_factory(num_channels)().state_dict())
        rounds, n_clients = TINY_CONFIG.rounds, len(clients)
        assert summary.total_downlink_bytes == rounds * n_clients * state_size
        assert summary.total_uplink_bytes == rounds * n_clients * state_size

    @pytest.mark.parametrize(
        "compression", ["none", "float16", "quantize", "topk"]
    )
    def test_serial_and_process_bit_identical_under_every_codec(
        self, compression, make_clients, num_channels
    ):
        serial = run_fedavg(
            make_clients(),
            num_channels,
            backend=SerialBackend(),
            channel=create_channel(compression, topk_fraction=0.25),
        )
        parallel = run_fedavg(
            make_clients(),
            num_channels,
            backend=ProcessPoolBackend(workers=2),
            channel=create_channel(compression, topk_fraction=0.25),
        )
        assert states_equal(serial.global_state, parallel.global_state)
        assert [r.mean_loss for r in serial.history] == [r.mean_loss for r in parallel.history]

    def test_local_baseline_measures_zero_bytes(self, make_clients, num_channels):
        # Locally created initial states never cross the wire.
        channel = create_channel("none")
        algorithm = create_algorithm(
            "local", make_clients(), make_factory(num_channels), TINY_CONFIG, channel=channel
        )
        algorithm.run()
        assert channel.summary().total_bytes == 0

    def test_finetune_stage_is_downlink_only(self, make_clients, num_channels):
        # fedprox_finetune: every training round uploads, but the final
        # fine-tuning pass only downloads (the personalized model stays on
        # the client).
        channel = create_channel("none")
        algorithm = create_algorithm(
            "fedprox_finetune",
            make_clients(),
            make_factory(num_channels),
            TINY_CONFIG,
            channel=channel,
        )
        algorithm.run()
        summary = channel.summary()
        assert summary.rounds == TINY_CONFIG.rounds + 1
        uplink_rounds = set(summary.uplink_bytes_per_round)
        downlink_rounds = set(summary.downlink_bytes_per_round)
        assert downlink_rounds == set(range(TINY_CONFIG.rounds + 1))
        assert uplink_rounds == set(range(TINY_CONFIG.rounds))

    def test_fedbn_private_parameters_never_cross_the_codec(
        self,
        tiny_train_dataset,
        tiny_test_dataset,
        tiny_train_dataset_itc,
        tiny_test_dataset_itc,
        num_channels,
    ):
        # FedBN under a lossy wire: the shared part is billed and
        # reconstructed from real payloads, but each client's private
        # normalization statistics must come back bit-exact — they never
        # leave the client, so the codec must never touch them.
        from repro.fl import normalization_parameter_names, state_bytes
        from repro.models import RouteNet

        factory = SeededModelFactory(
            lambda seed: RouteNet(num_channels, base_filters=4, seed=seed), base_seed=0
        )
        clients = [
            FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, TINY_CONFIG),
            FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, TINY_CONFIG),
        ]
        norm_names = normalization_parameter_names(factory())

        channel = create_channel("float16")
        lossy = create_algorithm(
            "fedbn", clients, factory, TINY_CONFIG, channel=channel
        ).run()

        # If the private normalization statistics had passed through the
        # float16 wire, every value would be exactly float16-representable;
        # trained running statistics are generic float64s, so at least some
        # must prove they kept full precision.
        assert norm_names
        full_precision_survived = any(
            not np.array_equal(
                state[name], state[name].astype(np.float16).astype(np.float64)
            )
            for state in lossy.client_states.values()
            for name in norm_names
        )
        assert full_precision_survived

        # The measured uplink covers only the shared fraction of the state.
        reference_state = factory().state_dict()
        shared_size = state_bytes(
            {k: v for k, v in reference_state.items() if k not in norm_names},
            bytes_per_value=2,  # float16 wire
        )
        per_round = channel.summary().uplink_bytes_per_round
        assert per_round
        assert all(total == 2 * shared_size for total in per_round.values())

    def test_partial_upload_preserves_private_entries_bit_exact(self):
        # Channel-level check: entries outside upload_names return bit-exact
        # even under an aggressively lossy codec.
        state = _state(20)
        channel = Channel(QuantizationCodec(2, deflate=False))
        channel.broadcast([state], [1])
        new_state = {k: v + 0.5 for k, v in state.items()}
        shared = ["conv.weight"]
        received = channel.receive(1, state=new_state, upload_names=shared)
        assert np.array_equal(received["conv.bias"], new_state["conv.bias"])
        assert np.array_equal(received["scale"], new_state["scale"])
        assert not np.array_equal(received["conv.weight"], new_state["conv.weight"])
        # Only the shared tensor was billed.
        expected = QuantizationCodec(2, deflate=False).encode(
            {"conv.weight": new_state["conv.weight"]}
        ).num_bytes
        assert channel.tracker.total_uplink_bytes == expected

    def test_checkpoint_refuses_different_transport(self, tmp_path, make_clients, num_channels):
        # A checkpoint written under a lossy codec must not silently resume
        # into a run with different (or no) transport settings.
        from repro.fl import CheckpointManager

        create_algorithm(
            "fedavg",
            make_clients(),
            make_factory(num_channels),
            TINY_CONFIG,
            checkpoint=CheckpointManager(tmp_path),
            channel=create_channel("quantize"),
        ).run()
        resumed = create_algorithm(
            "fedavg",
            make_clients(),
            make_factory(num_channels),
            TINY_CONFIG,
            checkpoint=CheckpointManager(tmp_path),
        )
        with pytest.raises(ValueError, match="written by a different run"):
            resumed.run()

    def test_topk_with_error_feedback_converges(self, make_clients, num_channels):
        # A seeded FedAvg run with sparsified delta uploads + error feedback
        # must still train: the final round's mean loss improves on the
        # first round's.
        from dataclasses import replace

        config = replace(TINY_CONFIG, rounds=4)
        channel = create_channel("topk", topk_fraction=0.25)
        training = run_fedavg(
            make_clients(config), num_channels, channel=channel, config=config
        )
        losses = [record.mean_loss for record in training.history]
        assert np.all(np.isfinite(losses))
        assert losses[-1] < losses[0]
        # The codec genuinely dropped something along the way.
        assert any(channel.residual_norm(cid) > 0 for cid in (1, 2))
