"""Property/parity tests for the streaming aggregation tier.

The aggregation tier's contract has two halves, and both are asserted here
over seeded random layouts, weights, cohort sizes, and input dtypes:

* **exact parity** — while a streaming/sharded accumulator is inside its
  parity buffer (``count <= parity_limit``), its result is bit-identical
  (0 ulp) to :func:`weighted_average`'s GEMV, including through the DP
  privatize-then-fold and FedAvgM momentum compositions;
* **spilled accuracy** — once spilled to the running O(P) form, results
  agree with the GEMV to ``<= 1e-12`` relative error, and the incremental
  fold is bitwise identical to the one-shot batch ``aggregate``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.aggregation import (
    AGGREGATION_CHOICES,
    GemvAggregator,
    ShardedAccumulator,
    ShardedAggregator,
    StreamingAccumulator,
    StreamingAggregator,
    StreamingDeltaAccumulator,
    create_aggregator,
)
from repro.fl.parameters import (
    StateLayout,
    aggregation_scratch_bytes,
    release_aggregation_scratch,
    state_vector,
    weighted_average,
    wrap_flat,
)
from repro.fl.privacy import PrivacyConfig, privatize_update


def random_layout_states(seed, count, dtype=np.float64):
    """``count`` random dict states over a seeded random layout."""
    rng = np.random.default_rng(seed)
    num_tensors = int(rng.integers(1, 5))
    shapes = [tuple(int(s) for s in rng.integers(1, 7, size=rng.integers(1, 4)))
              for _ in range(num_tensors)]
    states = [
        {f"layer{i}.weight": rng.standard_normal(shape).astype(dtype)
         for i, shape in enumerate(shapes)}
        for _ in range(count)
    ]
    weights = rng.uniform(0.1, 10.0, size=count).tolist()
    return states, weights


def vectors_equal(left, right):
    """Bitwise state equality via the flat vector (0 ulp)."""
    layout = StateLayout.from_state(left)
    return np.array_equal(state_vector(left, layout), state_vector(right, layout))


def relative_error(left, right):
    layout = StateLayout.from_state(left)
    a = state_vector(left, layout)
    b = state_vector(right, layout)
    return np.max(np.abs(a - b)) / max(np.max(np.abs(a)), 1e-30)


# ---------------------------------------------------------------------------
# exact-parity mode (count <= parity_limit): 0 ulp against the GEMV
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("count", [1, 2, 9, 32])
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("mode", ["streaming", "sharded"])
def test_parity_mode_is_bit_identical_to_gemv(seed, count, dtype, mode):
    states, weights = random_layout_states(seed, count, dtype=dtype)
    reference = weighted_average(states, weights)
    aggregator = create_aggregator(mode)
    # Batch one-shot path.
    assert vectors_equal(aggregator.aggregate(states, weights), reference)
    # Incremental fold path.
    accumulator = aggregator.accumulator()
    for state, weight in zip(states, weights):
        accumulator.fold(state, weight)
    assert not accumulator.spilled
    assert vectors_equal(accumulator.result(), reference)


@pytest.mark.parametrize("mode", AGGREGATION_CHOICES)
def test_every_mode_handles_flat_states(mode):
    states, weights = random_layout_states(7, 5)
    flat = [weighted_average([s], [1.0]) for s in states]  # FlatState inputs
    reference = weighted_average(flat, weights)
    assert vectors_equal(create_aggregator(mode).aggregate(flat, weights), reference)


def test_gemv_accumulator_matches_direct_weighted_average():
    states, weights = random_layout_states(11, 6)
    accumulator = GemvAggregator().accumulator()
    for state, weight in zip(states, weights):
        accumulator.fold(state, weight)
    assert accumulator.count == 6
    assert accumulator.weight_total == pytest.approx(sum(weights))
    assert accumulator.states() is not None
    assert vectors_equal(accumulator.result(), weighted_average(states, weights))


# ---------------------------------------------------------------------------
# spilled O(P) form: <= 1e-12 relative, incremental == batch bitwise
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 5, 9])
@pytest.mark.parametrize("count", [33, 64, 111])
@pytest.mark.parametrize("mode", ["streaming", "sharded"])
def test_spilled_fold_agrees_with_gemv(seed, count, mode):
    states, weights = random_layout_states(seed, count)
    reference = weighted_average(states, weights)
    aggregator = create_aggregator(mode)
    accumulator = aggregator.accumulator()
    for state, weight in zip(states, weights):
        accumulator.fold(state, weight)
    assert accumulator.spilled
    assert accumulator.states() is None  # the buffered inputs are gone
    incremental = accumulator.result()
    assert relative_error(incremental, reference) <= 1e-12
    # The batch path runs the identical summation order: bitwise equal.
    assert vectors_equal(aggregator.aggregate(states, weights), incremental)


def test_small_parity_limit_spills_early_but_stays_close():
    states, weights = random_layout_states(3, 10)
    reference = weighted_average(states, weights)
    accumulator = StreamingAccumulator(parity_limit=2)
    for state, weight in zip(states, weights):
        accumulator.fold(state, weight)
    assert accumulator.spilled
    assert relative_error(accumulator.result(), reference) <= 1e-12


def test_sharded_incremental_matches_batch_bitwise_any_shard_count():
    states, weights = random_layout_states(21, 50)
    for shards in (1, 3, 7):
        aggregator = ShardedAggregator(shards=shards, parity_limit=8)
        accumulator = aggregator.accumulator()
        for state, weight in zip(states, weights):
            accumulator.fold(state, weight)
        assert vectors_equal(accumulator.result(), aggregator.aggregate(states, weights))


def test_streaming_memory_is_flat_after_spill():
    """The running form holds one O(P) vector regardless of fold count."""
    states, weights = random_layout_states(2, 40)
    accumulator = StreamingAccumulator(parity_limit=4)
    for state, weight in zip(states, weights):
        accumulator.fold(state, weight)
    snapshot = accumulator.state()
    layout = StateLayout.from_state(states[0])
    assert snapshot["pending"] == []
    assert snapshot["sum"].nbytes == layout.total_size * 8
    assert accumulator.count == 40


# ---------------------------------------------------------------------------
# DP clip/noise and FedAvgM momentum folds through the accumulators
# ---------------------------------------------------------------------------


def _privatized_cohort(seed, count):
    states, weights = random_layout_states(seed, count)
    reference_state = {
        name: np.zeros_like(np.asarray(value, dtype=np.float64))
        for name, value in states[0].items()
    }
    privacy = PrivacyConfig(clip_norm=1.0, noise_multiplier=0.5)
    noise_rng = np.random.default_rng(seed + 1000)
    private = [
        privatize_update(reference_state, state, privacy, noise_rng)[0]
        for state in states
    ]
    return private, weights


@pytest.mark.parametrize("count,exact", [(9, True), (48, False)])
def test_dp_privatize_then_fold_parity(count, exact):
    private, weights = _privatized_cohort(17, count)
    reference = weighted_average(private, weights)
    accumulator = StreamingAccumulator()
    for state, weight in zip(private, weights):
        accumulator.fold(state, weight)
    if exact:
        assert vectors_equal(accumulator.result(), reference)
    else:
        assert relative_error(accumulator.result(), reference) <= 1e-12


@pytest.mark.parametrize("count,exact", [(9, True), (48, False)])
def test_fedavgm_momentum_fold_parity(count, exact):
    states, weights = random_layout_states(23, count)
    global_state = weighted_average(states[:1], [1.0])
    layout = global_state.layout
    momentum = 0.9
    velocity = np.zeros(layout.total_size)

    def momentum_step(average):
        delta = state_vector(global_state, layout) - state_vector(average, layout)
        new_velocity = momentum * velocity + delta
        return wrap_flat(layout, state_vector(global_state, layout) - new_velocity)

    reference = momentum_step(weighted_average(states, weights))
    accumulator = StreamingAccumulator()
    for state, weight in zip(states, weights):
        accumulator.fold(state, weight)
    streamed = momentum_step(accumulator.result())
    if exact:
        assert vectors_equal(streamed, reference)
    else:
        assert relative_error(streamed, reference) <= 1e-12


# ---------------------------------------------------------------------------
# FedBuff delta accumulator
# ---------------------------------------------------------------------------


def _delta_cohort(seed, count):
    rng = np.random.default_rng(seed)
    layout_states, weights = random_layout_states(seed, count + 2)
    global_state = weighted_average(layout_states[:1], [1.0])
    layout = global_state.layout
    updates = [
        wrap_flat(layout, state_vector(global_state, layout) + rng.standard_normal(layout.total_size))
        for _ in range(count)
    ]
    dispatches = [
        wrap_flat(layout, state_vector(global_state, layout) + 0.1 * rng.standard_normal(layout.total_size))
        for _ in range(count)
    ]
    return global_state, layout, updates, dispatches, weights[:count]


def test_delta_accumulator_all_fresh_matches_weighted_average():
    global_state, _, updates, _, weights = _delta_cohort(31, 9)
    accumulator = StreamingDeltaAccumulator()
    for update, weight in zip(updates, weights):
        accumulator.fold(update, global_state, weight, fresh=True)
    reference = weighted_average(updates, weights)
    assert vectors_equal(accumulator.result(global_state), reference)


def test_delta_accumulator_mixed_staleness_is_exact_arrival_order_fold():
    global_state, layout, updates, dispatches, weights = _delta_cohort(37, 9)
    accumulator = StreamingDeltaAccumulator()
    for update, dispatch, weight in zip(updates, dispatches, weights):
        accumulator.fold(update, dispatch, weight, fresh=False)
    total = sum(weights)
    folded = state_vector(global_state, layout).copy()
    for update, dispatch, weight in zip(updates, dispatches, weights):
        folded += (weight / total) * (
            state_vector(update, layout) - state_vector(dispatch, layout)
        )
    assert vectors_equal(accumulator.result(global_state), wrap_flat(layout, folded))


def test_delta_accumulator_spilled_stays_close():
    global_state, layout, updates, dispatches, weights = _delta_cohort(41, 40)
    accumulator = StreamingDeltaAccumulator(parity_limit=4)
    for update, dispatch, weight in zip(updates, dispatches, weights):
        accumulator.fold(update, dispatch, weight, fresh=False)
    assert accumulator.spilled
    total = sum(weights)
    folded = state_vector(global_state, layout).copy()
    for update, dispatch, weight in zip(updates, dispatches, weights):
        folded += (weight / total) * (
            state_vector(update, layout) - state_vector(dispatch, layout)
        )
    assert relative_error(accumulator.result(global_state), wrap_flat(layout, folded)) <= 1e-12


def test_delta_accumulator_empty_returns_global_unchanged():
    global_state, _, _, _, _ = _delta_cohort(43, 1)
    accumulator = StreamingDeltaAccumulator()
    assert accumulator.result(global_state) is global_state


def test_delta_accumulator_reset_clears_the_buffer():
    global_state, _, updates, dispatches, weights = _delta_cohort(47, 3)
    accumulator = StreamingDeltaAccumulator()
    for update, dispatch, weight in zip(updates, dispatches, weights):
        accumulator.fold(update, dispatch, weight, fresh=False)
    accumulator.reset()
    assert accumulator.count == 0
    assert accumulator.result(global_state) is global_state


# ---------------------------------------------------------------------------
# mid-fold checkpoint state round-trips (bit-identical resume)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("interrupt_at,parity_limit", [(3, 32), (20, 4)])
def test_streaming_accumulator_state_roundtrip(interrupt_at, parity_limit):
    states, weights = random_layout_states(53, 30)
    continuous = StreamingAccumulator(parity_limit=parity_limit)
    resumed = StreamingAccumulator(parity_limit=parity_limit)
    for state, weight in zip(states[:interrupt_at], weights[:interrupt_at]):
        continuous.fold(state, weight)
        resumed.fold(state, weight)
    fresh = StreamingAccumulator()
    fresh.set_state(resumed.state())  # snapshot -> brand-new accumulator
    for state, weight in zip(states[interrupt_at:], weights[interrupt_at:]):
        continuous.fold(state, weight)
        fresh.fold(state, weight)
    assert fresh.count == continuous.count == 30
    assert vectors_equal(fresh.result(), continuous.result())


@pytest.mark.parametrize("interrupt_at,parity_limit", [(2, 32), (10, 3)])
def test_delta_accumulator_state_roundtrip(interrupt_at, parity_limit):
    global_state, _, updates, dispatches, weights = _delta_cohort(59, 15)
    continuous = StreamingDeltaAccumulator(parity_limit=parity_limit)
    resumed = StreamingDeltaAccumulator(parity_limit=parity_limit)
    entries = list(zip(updates, dispatches, weights))
    for update, dispatch, weight in entries[:interrupt_at]:
        continuous.fold(update, dispatch, weight, fresh=False)
        resumed.fold(update, dispatch, weight, fresh=False)
    fresh = StreamingDeltaAccumulator()
    fresh.set_state(resumed.state())
    for update, dispatch, weight in entries[interrupt_at:]:
        continuous.fold(update, dispatch, weight, fresh=False)
        fresh.fold(update, dispatch, weight, fresh=False)
    assert vectors_equal(fresh.result(global_state), continuous.result(global_state))


# ---------------------------------------------------------------------------
# error paths and the registry
# ---------------------------------------------------------------------------


def test_registry_names_and_streaming_flags():
    assert create_aggregator(None).name == "gemv"
    for name in AGGREGATION_CHOICES:
        aggregator = create_aggregator(name)
        assert aggregator.name == name
        assert aggregator.streaming == (name != "gemv")
        assert name in aggregator.describe()


def test_unknown_aggregation_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown aggregation mode"):
        create_aggregator("quantum")


def test_negative_weights_are_rejected():
    states, _ = random_layout_states(61, 1)
    for accumulator in (
        StreamingAccumulator(),
        ShardedAccumulator(),
        GemvAggregator().accumulator(),
    ):
        with pytest.raises(ValueError, match="non-negative"):
            accumulator.fold(states[0], -1.0)
    with pytest.raises(ValueError, match="non-negative"):
        StreamingDeltaAccumulator().fold(states[0], states[0], -0.5, fresh=True)


def test_all_zero_weights_are_rejected_after_spill():
    states, _ = random_layout_states(67, 3)
    accumulator = StreamingAccumulator(parity_limit=0)
    for state in states:
        accumulator.fold(state, 0.0)
    with pytest.raises(ValueError, match="must not all be zero"):
        accumulator.result()
    delta = StreamingDeltaAccumulator(parity_limit=0)
    delta.fold(states[0], states[1], 0.0, fresh=False)
    with pytest.raises(ValueError, match="must not all be zero"):
        delta.result(states[0])


def test_mismatched_states_and_weights_are_rejected():
    states, weights = random_layout_states(71, 4)
    for mode in ("streaming", "sharded"):
        with pytest.raises(ValueError, match="states but"):
            create_aggregator(mode).aggregate(states, weights[:-1])


def test_invalid_construction_parameters_are_rejected():
    with pytest.raises(ValueError, match="parity_limit"):
        StreamingAccumulator(parity_limit=-1)
    with pytest.raises(ValueError, match="parity_limit"):
        StreamingAggregator(parity_limit=-2)
    with pytest.raises(ValueError, match="shards"):
        ShardedAccumulator(shards=0)
    with pytest.raises(ValueError, match="shards"):
        ShardedAggregator(shards=-1)
    with pytest.raises(NotImplementedError, match="has no streaming delta accumulator"):
        GemvAggregator().delta_accumulator()


# ---------------------------------------------------------------------------
# GEMV scratch right-sizing (the latent over-allocation fix)
# ---------------------------------------------------------------------------


def test_aggregation_scratch_shrinks_when_the_cohort_shrinks():
    release_aggregation_scratch()
    try:
        big_states, big_weights = random_layout_states(73, 64)
        layout = StateLayout.from_state(big_states[0])
        weighted_average(big_states, big_weights)
        big_bytes = aggregation_scratch_bytes()
        assert big_bytes == 64 * layout.total_size * 8
        # A much smaller cohort must not keep the (64, P) scratch alive.
        small_states, small_weights = (big_states[:4], big_weights[:4])
        weighted_average(small_states, small_weights)
        small_bytes = aggregation_scratch_bytes()
        assert small_bytes == 4 * layout.total_size * 8
        assert small_bytes < big_bytes
    finally:
        release_aggregation_scratch()
    assert aggregation_scratch_bytes() == 0


def test_aggregation_scratch_reuses_within_headroom():
    release_aggregation_scratch()
    try:
        states, weights = random_layout_states(79, 8)
        layout = StateLayout.from_state(states[0])
        weighted_average(states, weights)
        assert aggregation_scratch_bytes() == 8 * layout.total_size * 8
        # 4..8 rows fit the 2x headroom window of an 8-row scratch: no realloc.
        weighted_average(states[:4], weights[:4])
        assert aggregation_scratch_bytes() == 8 * layout.total_size * 8
        # 3 rows fall below the window: right-sized down.
        weighted_average(states[:3], weights[:3])
        assert aggregation_scratch_bytes() == 3 * layout.total_size * 8
    finally:
        release_aggregation_scratch()
