"""Tests for state arithmetic and the federated server's aggregation rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import FederatedServer
from repro.fl.parameters import (
    average_pairwise_distance,
    check_compatible,
    clone_state,
    filter_state,
    flatten_state,
    interpolate,
    merge_partition,
    state_distance,
    state_norm,
    weighted_average,
    zeros_like_state,
)


def make_state(value, shapes=(("w", (2, 2)), ("b", (3,)))):
    return {name: np.full(shape, float(value)) for name, shape in shapes}


class TestStateArithmetic:
    def test_clone_is_deep(self):
        state = make_state(1.0)
        cloned = clone_state(state)
        cloned["w"][:] = 9.0
        assert np.all(state["w"] == 1.0)

    def test_zeros_like(self):
        zeros = zeros_like_state(make_state(5.0))
        assert all(np.all(v == 0) for v in zeros.values())

    def test_weighted_average_exact(self):
        avg = weighted_average([make_state(0.0), make_state(10.0)], [1.0, 3.0])
        assert np.allclose(avg["w"], 7.5)

    def test_weighted_average_single_state_identity(self):
        state = make_state(3.3)
        avg = weighted_average([state], [5.0])
        assert np.allclose(avg["w"], state["w"])

    def test_weighted_average_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            weighted_average([make_state(1.0)], [0.0])
        with pytest.raises(ValueError):
            weighted_average([make_state(1.0), make_state(2.0)], [1.0])
        with pytest.raises(ValueError):
            weighted_average([make_state(1.0), make_state(2.0)], [1.0, -1.0])

    def test_incompatible_states_rejected(self):
        with pytest.raises(ValueError):
            check_compatible([make_state(1.0), {"w": np.zeros((2, 2))}])
        with pytest.raises(ValueError):
            check_compatible([make_state(1.0), {"w": np.zeros((3, 3)), "b": np.zeros(3)}])

    def test_interpolate_endpoints(self):
        a, b = make_state(1.0), make_state(5.0)
        assert np.allclose(interpolate(a, b, 1.0)["w"], 1.0)
        assert np.allclose(interpolate(a, b, 0.0)["w"], 5.0)
        assert np.allclose(interpolate(a, b, 0.25)["w"], 4.0)

    def test_merge_partition(self):
        global_state = make_state(1.0)
        local_state = make_state(9.0)
        merged = merge_partition(global_state, local_state, ["b"])
        assert np.all(merged["w"] == 1.0)
        assert np.all(merged["b"] == 9.0)

    def test_merge_partition_unknown_name(self):
        with pytest.raises(ValueError):
            merge_partition(make_state(1.0), make_state(2.0), ["missing"])

    def test_filter_state(self):
        filtered = filter_state(make_state(2.0), ["w"])
        assert set(filtered) == {"w"}
        with pytest.raises(ValueError):
            filter_state(make_state(2.0), ["nope"])

    def test_distance_and_norm(self):
        assert state_distance(make_state(1.0), make_state(1.0)) == 0.0
        expected = np.sqrt(7 * 4.0)  # 7 entries differing by 2
        assert state_distance(make_state(1.0), make_state(3.0)) == pytest.approx(expected)
        assert state_norm(zeros_like_state(make_state(1.0))) == 0.0

    def test_flatten_deterministic_order(self):
        state = {"b": np.array([1.0]), "a": np.array([2.0, 3.0])}
        np.testing.assert_allclose(flatten_state(state), [2.0, 3.0, 1.0])

    def test_average_pairwise_distance(self):
        states = [make_state(0.0), make_state(2.0)]
        assert average_pairwise_distance(states) == pytest.approx(state_distance(*states))
        assert average_pairwise_distance(states[:1]) == 0.0

    def test_average_pairwise_distance_matches_loop(self):
        # Parity between the vectorized (flattened-matrix, direct-difference)
        # implementation and the original O(n^2) state_distance loop it
        # replaced.
        rng = np.random.default_rng(17)
        states = [
            {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=4)} for _ in range(6)
        ]
        loop_distances = [
            state_distance(states[i], states[j])
            for i in range(len(states))
            for j in range(i + 1, len(states))
        ]
        expected = float(np.mean(loop_distances))
        assert average_pairwise_distance(states) == pytest.approx(expected, rel=1e-9)

    def test_average_pairwise_distance_no_cancellation(self):
        # States that differ by ~1e-8 on top of O(10) parameter norms:
        # a Gram-identity implementation loses the difference to rounding;
        # direct differencing must agree with the loop at full precision.
        rng = np.random.default_rng(23)
        base = {"w": 10.0 + rng.normal(size=50)}
        states = [
            {"w": base["w"] + 1e-8 * rng.normal(size=50)} for _ in range(3)
        ]
        loop = float(
            np.mean(
                [
                    state_distance(states[i], states[j])
                    for i in range(3)
                    for j in range(i + 1, 3)
                ]
            )
        )
        assert loop > 0
        assert average_pairwise_distance(states) == pytest.approx(loop, rel=1e-9)

    def test_average_pairwise_distance_identical_states(self):
        # The Gram identity must not produce NaN (negative rounding under
        # the square root) when every state is identical.
        states = [make_state(1.5) for _ in range(4)]
        assert average_pairwise_distance(states) == 0.0

    def test_average_pairwise_distance_checks_compatibility(self):
        with pytest.raises(ValueError):
            average_pairwise_distance([make_state(0.0), {"other": np.zeros(3)}])

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_weighted_average_bounded_by_extremes(self, values):
        states = [make_state(v) for v in values]
        weights = np.ones(len(values))
        avg = weighted_average(states, weights)
        assert avg["w"].min() >= min(values) - 1e-9
        assert avg["w"].max() <= max(values) + 1e-9

    @given(st.floats(0, 1), st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=40, deadline=None)
    def test_interpolate_is_convex_combination(self, alpha, a_value, b_value):
        result = interpolate(make_state(a_value), make_state(b_value), alpha)
        expected = alpha * a_value + (1 - alpha) * b_value
        assert np.allclose(result["w"], expected)


class TestFederatedServer:
    def test_aggregate_weighted_by_samples(self):
        server = FederatedServer()
        avg = server.aggregate([make_state(0.0), make_state(1.0)], [100, 300])
        assert np.allclose(avg["w"], 0.75)

    def test_aggregate_partition_only_touches_global(self):
        server = FederatedServer()
        partial = server.aggregate_partition([make_state(0.0), make_state(2.0)], [1, 1], ["w"])
        assert set(partial) == {"w"}
        assert np.allclose(partial["w"], 1.0)

    def test_merge_global_local(self):
        server = FederatedServer()
        merged = server.merge_global_local({"w": np.full((2, 2), 7.0)}, make_state(1.0))
        assert np.all(merged["w"] == 7.0)
        assert np.all(merged["b"] == 1.0)

    def test_aggregate_clusters_keeps_empty_clusters(self):
        server = FederatedServer()
        previous = {0: make_state(1.0), 1: make_state(5.0)}
        updated = server.aggregate_clusters(
            previous, {0: [make_state(3.0)]}, {0: [2.0]}
        )
        assert np.allclose(updated[0]["w"], 3.0)
        assert np.allclose(updated[1]["w"], 5.0)

    def test_alpha_portion_sync_formula(self):
        server = FederatedServer()
        states = {1: make_state(0.0), 2: make_state(4.0), 3: make_state(8.0)}
        weights = {1: 1.0, 2: 1.0, 3: 3.0}
        mixed = server.alpha_portion_sync(states, weights, alpha=0.5)
        # Client 1: 0.5*0 + 0.5*((1*4 + 3*8)/4) = 3.5
        assert np.allclose(mixed[1]["w"], 3.5)
        # Client 3: 0.5*8 + 0.5*((4+0)/2)=0.5*8+1 = 5.0
        assert np.allclose(mixed[3]["w"], 5.0)

    def test_alpha_portion_single_client(self):
        server = FederatedServer()
        mixed = server.alpha_portion_sync({1: make_state(2.0)}, {1: 1.0}, alpha=0.3)
        assert np.allclose(mixed[1]["w"], 2.0)

    def test_alpha_validation(self):
        server = FederatedServer()
        with pytest.raises(ValueError):
            server.alpha_portion_sync({1: make_state(1.0)}, {1: 1.0}, alpha=1.5)

    def test_alpha_portion_sync_parity_with_naive_loop(self):
        """The O(K) subtract-own-contribution aggregation matches the
        original per-client ``weighted_average`` loop to float accuracy."""
        rng = np.random.default_rng(42)
        client_ids = list(range(1, 8))
        states = {
            cid: {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=(5,))}
            for cid in client_ids
        }
        weights = {cid: float(rng.integers(1, 60)) for cid in client_ids}
        server = FederatedServer()
        for alpha in (0.0, 0.3, 0.5, 1.0):
            fast = server.alpha_portion_sync(states, weights, alpha)
            for cid in client_ids:
                other_ids = [o for o in client_ids if o != cid]
                naive = interpolate(
                    states[cid],
                    weighted_average(
                        [states[o] for o in other_ids],
                        [weights[o] for o in other_ids],
                    ),
                    alpha,
                )
                for name in naive:
                    np.testing.assert_allclose(
                        fast[cid][name], naive[name], rtol=0, atol=1e-12
                    )

    def test_alpha_portion_sync_zero_weight_others(self):
        # When every other client has zero weight there is nothing to mix
        # in; the client keeps its own state.
        server = FederatedServer()
        mixed = server.alpha_portion_sync(
            {1: make_state(2.0), 2: make_state(9.0)}, {1: 0.0, 2: 5.0}, alpha=0.25
        )
        assert np.allclose(mixed[2]["w"], 9.0)
        # Client 1 mixes in client 2's state as usual.
        assert np.allclose(mixed[1]["w"], 0.25 * 2.0 + 0.75 * 9.0)
