"""Tests for the differential-privacy and secure-aggregation machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.parameters import state_distance, state_norm, weighted_average
from repro.fl.privacy import (
    GaussianAccountant,
    PrivacyConfig,
    PrivateUpdateLog,
    SecureAggregationSession,
    add_gaussian_noise,
    apply_update,
    clip_update,
    privatize_update,
    state_update,
)


def _state(seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": scale * rng.normal(size=(4, 3, 3, 3)),
        "conv.bias": scale * rng.normal(size=4),
    }


class TestPrivacyConfig:
    def test_defaults_valid(self):
        config = PrivacyConfig()
        assert not config.enabled

    def test_enabled_when_noise_positive(self):
        assert PrivacyConfig(noise_multiplier=0.5).enabled

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            PrivacyConfig(clip_norm=0.0)
        with pytest.raises(ValueError):
            PrivacyConfig(noise_multiplier=-0.1)
        with pytest.raises(ValueError):
            PrivacyConfig(delta=1.0)


class TestUpdateArithmetic:
    def test_state_update_and_apply_are_inverse(self):
        reference = _state(0)
        new = _state(1)
        update = state_update(reference, new)
        rebuilt = apply_update(reference, update)
        assert state_distance(rebuilt, new) == pytest.approx(0.0, abs=1e-12)

    def test_clip_update_noop_below_threshold(self):
        update = _state(2, scale=0.01)
        clipped, norm = clip_update(update, clip_norm=100.0)
        assert norm == pytest.approx(state_norm(update))
        assert state_distance(clipped, update) == pytest.approx(0.0, abs=1e-12)

    def test_clip_update_scales_to_threshold(self):
        update = _state(3, scale=10.0)
        clipped, norm = clip_update(update, clip_norm=1.0)
        assert norm > 1.0
        assert state_norm(clipped) == pytest.approx(1.0, rel=1e-9)

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_clipped_norm_never_exceeds_bound(self, clip_norm):
        update = _state(4, scale=3.0)
        clipped, _ = clip_update(update, clip_norm=clip_norm)
        assert state_norm(clipped) <= clip_norm + 1e-9

    def test_clip_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_update(_state(), clip_norm=0.0)

    def test_gaussian_noise_zero_sigma_identity(self):
        state = _state(5)
        noisy = add_gaussian_noise(state, 0.0, np.random.default_rng(0))
        assert state_distance(noisy, state) == 0.0

    def test_gaussian_noise_changes_state(self):
        state = _state(6)
        noisy = add_gaussian_noise(state, 0.5, np.random.default_rng(0))
        assert state_distance(noisy, state) > 0.0

    def test_privatize_update_respects_clip(self):
        reference = _state(7, scale=0.0)
        new = _state(8, scale=5.0)
        config = PrivacyConfig(clip_norm=1.0, noise_multiplier=0.0)
        private, raw_norm = privatize_update(reference, new, config, np.random.default_rng(0))
        assert raw_norm > 1.0
        assert state_norm(state_update(reference, private)) == pytest.approx(1.0, rel=1e-9)

    def test_privatize_update_with_noise_differs(self):
        reference = _state(9)
        new = _state(10)
        config = PrivacyConfig(clip_norm=10.0, noise_multiplier=1.0)
        private_a, _ = privatize_update(reference, new, config, np.random.default_rng(0))
        private_b, _ = privatize_update(reference, new, config, np.random.default_rng(1))
        assert state_distance(private_a, private_b) > 0.0


class TestGaussianAccountant:
    def test_no_steps_zero_epsilon(self):
        accountant = GaussianAccountant(PrivacyConfig(noise_multiplier=1.0))
        assert accountant.epsilon() == 0.0

    def test_epsilon_grows_with_rounds(self):
        accountant = GaussianAccountant(PrivacyConfig(noise_multiplier=1.0))
        accountant.record_round()
        first = accountant.epsilon()
        accountant.record_round(5)
        assert accountant.epsilon() > first

    def test_more_noise_means_less_epsilon(self):
        low_noise = GaussianAccountant(PrivacyConfig(noise_multiplier=0.5))
        high_noise = GaussianAccountant(PrivacyConfig(noise_multiplier=2.0))
        low_noise.record_round(10)
        high_noise.record_round(10)
        assert high_noise.epsilon() < low_noise.epsilon()

    def test_disabled_noise_gives_infinite_epsilon(self):
        accountant = GaussianAccountant(PrivacyConfig(noise_multiplier=0.0))
        accountant.record_round()
        assert accountant.epsilon() == float("inf")

    def test_summary_fields(self):
        accountant = GaussianAccountant(PrivacyConfig(noise_multiplier=1.0, clip_norm=2.0))
        accountant.record_round(3)
        summary = accountant.summary()
        assert summary["rounds"] == 3
        assert summary["clip_norm"] == 2.0
        assert summary["epsilon"] > 0

    def test_invalid_delta(self):
        accountant = GaussianAccountant(PrivacyConfig(noise_multiplier=1.0))
        accountant.record_round()
        with pytest.raises(ValueError):
            accountant.epsilon(delta=2.0)


class TestSecureAggregation:
    def test_masked_sum_equals_weighted_average(self):
        updates = {1: _state(11), 2: _state(12), 3: _state(13)}
        weights = {1: 2.0, 2: 1.0, 3: 3.0}
        session = SecureAggregationSession([1, 2, 3], template=_state(11), seed=5)
        for client_id, update in updates.items():
            session.submit(client_id, update, weight=weights[client_id])
        aggregate = session.aggregate()
        expected = weighted_average(list(updates.values()), [weights[c] for c in updates])
        assert state_distance(aggregate, expected) == pytest.approx(0.0, abs=1e-9)

    def test_individual_submission_is_masked(self):
        update = _state(14)
        session = SecureAggregationSession([1, 2], template=update, seed=1)
        masked = session.masked_update(1, update)
        assert state_distance(masked, update) > 1.0

    def test_aggregate_requires_all_clients(self):
        session = SecureAggregationSession([1, 2], template=_state(15), seed=2)
        session.submit(1, _state(15))
        with pytest.raises(RuntimeError, match="not submitted"):
            session.aggregate()

    def test_rejects_duplicate_or_few_clients(self):
        with pytest.raises(ValueError):
            SecureAggregationSession([1, 1], template=_state())
        with pytest.raises(ValueError):
            SecureAggregationSession([1], template=_state())

    def test_rejects_unknown_client_and_bad_weight(self):
        session = SecureAggregationSession([1, 2], template=_state(16))
        with pytest.raises(ValueError):
            session.masked_update(9, _state(16))
        with pytest.raises(ValueError):
            session.masked_update(1, _state(16), weight=0.0)


class TestPrivateUpdateLog:
    def test_counts_clipped_updates(self):
        log = PrivateUpdateLog()
        log.record(0.5, clip_norm=1.0)
        log.record(2.0, clip_norm=1.0)
        log.record(3.0, clip_norm=1.0)
        assert log.num_updates == 3
        assert log.clipped_fraction == pytest.approx(2 / 3)
        assert log.median_norm() == pytest.approx(2.0)

    def test_empty_log(self):
        log = PrivateUpdateLog()
        assert log.clipped_fraction == 0.0
        assert log.median_norm() == 0.0
