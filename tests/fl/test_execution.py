"""Tests for the execution engine: backends, checkpointing, and regressions.

The central guarantees under test:

* ``ProcessPoolBackend`` produces **bit-identical** results to
  ``SerialBackend`` for the same seed (the backend contract),
* checkpoint/resume reproduces an uninterrupted run bit for bit,
* the refactored serial path matches the recorded pre-refactor seeded
  results (``--workers 1`` regression).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import (
    BACKENDS,
    CheckpointManager,
    ClientTask,
    FederatedClient,
    FLConfig,
    ProcessPoolBackend,
    SeededModelFactory,
    SerialBackend,
    create_algorithm,
    create_backend,
)
from repro.fl.parameters import flatten_state
from repro.models import FLNet

TINY_CONFIG = FLConfig(
    rounds=2,
    local_steps=2,
    finetune_steps=3,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=1e-3,
)


class TinyModelBuilder:
    """Module-level builder so clients stay picklable for the process pool."""

    def __init__(self, channels: int):
        self.channels = channels

    def __call__(self, seed: int) -> FLNet:
        return FLNet(self.channels, hidden_filters=8, kernel_size=5, seed=seed)


def make_factory(num_channels: int) -> SeededModelFactory:
    return SeededModelFactory(TinyModelBuilder(num_channels), base_seed=0)


@pytest.fixture
def make_clients(
    tiny_train_dataset,
    tiny_test_dataset,
    tiny_train_dataset_itc,
    tiny_test_dataset_itc,
    num_channels,
):
    """A callable producing a *fresh* 2-client roster (fresh RNG streams)."""

    def build(config: FLConfig = TINY_CONFIG):
        factory = make_factory(num_channels)
        return [
            FederatedClient(1, tiny_train_dataset, tiny_test_dataset, factory, config),
            FederatedClient(2, tiny_train_dataset_itc, tiny_test_dataset_itc, factory, config),
        ]

    return build


def states_equal(left, right) -> bool:
    """Bit-exact equality of two state dictionaries."""
    return set(left) == set(right) and all(np.array_equal(left[k], right[k]) for k in left)


def run_named(name, clients, num_channels, config=TINY_CONFIG, backend=None, checkpoint=None):
    algorithm = create_algorithm(
        name, clients, make_factory(num_channels), config, backend=backend, checkpoint=checkpoint
    )
    try:
        return algorithm.run()
    finally:
        if backend is not None:
            backend.close()


class TestBackendSelection:
    def test_registry_names(self):
        assert set(BACKENDS) == {"serial", "process", "thread", "wire"}

    def test_auto_resolution_from_workers(self):
        assert isinstance(create_backend(None, workers=None), SerialBackend)
        assert isinstance(create_backend("auto", workers=1), SerialBackend)
        backend = create_backend(None, workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 2

    def test_explicit_names(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("serial", workers=1), SerialBackend)
        assert isinstance(create_backend("process"), ProcessPoolBackend)

    def test_serial_with_multiple_workers_rejected(self):
        with pytest.raises(ValueError, match="cannot use 8 workers"):
            create_backend("serial", workers=8)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("threads")

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            ProcessPoolBackend(workers=0)


class TestTaskValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown client op"):
            ClientTask(client_index=0, state={}, op="evaluate")

    def test_duplicate_client_rejected(self, make_clients):
        clients = make_clients()
        backend = SerialBackend()
        backend.bind(clients)
        state = clients[0].initial_state()
        tasks = [
            ClientTask(client_index=0, state=state, steps=1, proximal_mu=0.0),
            ClientTask(client_index=0, state=state, steps=1, proximal_mu=0.0),
        ]
        with pytest.raises(ValueError, match="at most one task per client"):
            backend.map(tasks)

    def test_map_before_bind_rejected(self):
        backend = ProcessPoolBackend(workers=2)
        with pytest.raises(RuntimeError, match="before bind"):
            backend.map([ClientTask(client_index=0, state={}, steps=1)])

    def test_empty_map_is_noop(self):
        backend = ProcessPoolBackend(workers=2)
        assert backend.map([]) == []


class TestSerialParallelEquivalence:
    def test_fedavg_bit_identical(self, make_clients, num_channels):
        serial_clients = make_clients()
        serial = run_named("fedavg", serial_clients, num_channels, backend=SerialBackend())

        parallel_clients = make_clients()
        parallel = run_named(
            "fedavg", parallel_clients, num_channels, backend=ProcessPoolBackend(workers=2)
        )

        assert states_equal(serial.global_state, parallel.global_state)
        assert [r.mean_loss for r in serial.history] == [r.mean_loss for r in parallel.history]
        # The RNG hand-off leaves the rosters in identical states, so any
        # later round would stay identical too.
        for left, right in zip(serial_clients, parallel_clients):
            assert left.rng_state == right.rng_state

    def test_finetuned_personalized_states_bit_identical(self, make_clients, num_channels):
        # fedprox_finetune exercises both task ops: per-round training and
        # the final fine-tuning pass.
        serial = run_named("fedprox_finetune", make_clients(), num_channels, backend=SerialBackend())
        parallel = run_named(
            "fedprox_finetune", make_clients(), num_channels, backend=ProcessPoolBackend(workers=2)
        )
        assert states_equal(serial.global_state, parallel.global_state)
        assert set(serial.client_states) == set(parallel.client_states)
        for client_id in serial.client_states:
            assert states_equal(serial.client_states[client_id], parallel.client_states[client_id])

    def test_pool_survives_rebinding_same_roster(self, make_clients, num_channels):
        # One backend reused across two algorithm runs over the same roster
        # (as ExperimentRunner.run does) must keep producing serial results.
        clients = make_clients()
        backend = ProcessPoolBackend(workers=2)
        try:
            first = create_algorithm(
                "fedavg", clients, make_factory(num_channels), TINY_CONFIG, backend=backend
            ).run()
            second = create_algorithm(
                "fedavg", clients, make_factory(num_channels), TINY_CONFIG, backend=backend
            ).run()
        finally:
            backend.close()

        serial_clients = make_clients()
        serial_first = run_named("fedavg", serial_clients, num_channels, backend=SerialBackend())
        serial_second = run_named("fedavg", serial_clients, num_channels, backend=SerialBackend())
        assert states_equal(first.global_state, serial_first.global_state)
        assert states_equal(second.global_state, serial_second.global_state)


class TestCheckpointManager:
    def make_state(self, value: float):
        return {"w": np.full((2, 2), value), "b": np.arange(3.0)}

    def test_roundtrip(self, tmp_path, make_clients):
        clients = make_clients()
        manager = CheckpointManager(tmp_path / "ckpt")
        state = self.make_state(1.5)
        manager.save(
            3,
            state,
            clients,
            extra_states={"velocity": self.make_state(0.25)},
            extra_meta={"note": "hello"},
        )
        loaded = manager.load_latest()
        assert loaded is not None
        assert loaded.round_index == 3
        assert states_equal(loaded.global_state, state)
        assert states_equal(loaded.extra_states["velocity"], self.make_state(0.25))
        assert loaded.extra_meta == {"note": "hello"}
        assert set(loaded.client_rng_states) == {1, 2}
        assert loaded.client_rng_states[1] == clients[0].rng_state

    def test_restore_clients_rewinds_rng(self, tmp_path, make_clients):
        clients = make_clients()
        manager = CheckpointManager(tmp_path)
        manager.save(0, self.make_state(0.0), clients)
        before = [client.rng_state for client in clients]
        for client in clients:  # advance every stream
            client.local_train(client.initial_state(), steps=1, proximal_mu=0.0)
        assert [client.rng_state for client in clients] != before
        manager.restore_clients(clients, manager.load_latest())
        assert [client.rng_state for client in clients] == before

    def test_prune_keeps_most_recent(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for round_index in range(5):
            manager.save(round_index, self.make_state(float(round_index)))
        assert manager.saved_rounds() == [3, 4]
        assert manager.load_latest().round_index == 4
        # Pruned rounds leave no stray files behind.
        assert not list(tmp_path.glob("round_00000*"))

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path / "missing")
        assert manager.saved_rounds() == []
        assert manager.load_latest() is None
        with pytest.raises(FileNotFoundError):
            manager.load(7)

    def test_clear(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, self.make_state(1.0))
        manager.clear()
        assert manager.saved_rounds() == []
        assert not list(tmp_path.iterdir())

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep must be positive"):
            CheckpointManager(tmp_path, keep=0)


class TestCheckpointResume:
    @pytest.mark.parametrize("algorithm", ["fedavg", "fedavgm", "dp_fedprox"])
    def test_resume_matches_uninterrupted_run(self, algorithm, tmp_path, make_clients, num_channels):
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=4)
        short_config = replace(TINY_CONFIG, rounds=2)

        uninterrupted = run_named(
            algorithm, make_clients(long_config), num_channels, config=long_config
        )

        # Phase 1: train half the rounds with checkpointing, then "crash".
        run_named(
            algorithm,
            make_clients(short_config),
            num_channels,
            config=short_config,
            checkpoint=CheckpointManager(tmp_path),
        )
        # Phase 2: a fresh process resumes from the checkpoint directory.
        resumed = run_named(
            algorithm,
            make_clients(long_config),
            num_channels,
            config=long_config,
            checkpoint=CheckpointManager(tmp_path),
        )

        assert states_equal(uninterrupted.global_state, resumed.global_state)
        assert [r.round_index for r in resumed.history] == [2, 3]
        losses = {r.round_index: r.mean_loss for r in uninterrupted.history}
        for record in resumed.history:
            assert record.mean_loss == losses[record.round_index]

    def test_completed_run_resumes_to_final_state(self, tmp_path, make_clients, num_channels):
        manager = CheckpointManager(tmp_path)
        finished = run_named(
            "fedavg", make_clients(), num_channels, checkpoint=manager
        )
        reloaded = run_named(
            "fedavg", make_clients(), num_channels, checkpoint=CheckpointManager(tmp_path)
        )
        assert states_equal(finished.global_state, reloaded.global_state)
        assert reloaded.history == []  # nothing left to train

    def test_foreign_checkpoint_rejected(self, tmp_path, make_clients, num_channels):
        # A checkpoint directory written by a different run (here: another
        # algorithm) must be refused instead of silently resumed.
        run_named("fedavg", make_clients(), num_channels, checkpoint=CheckpointManager(tmp_path))
        with pytest.raises(ValueError, match="written by a different run"):
            run_named(
                "fedavgm", make_clients(), num_channels, checkpoint=CheckpointManager(tmp_path)
            )

    def test_model_switch_rejected(self, tmp_path, make_clients, num_channels):
        # Same algorithm/seed/hyper-parameters but a different architecture:
        # the parameter-shape guard must refuse the checkpoint.
        run_named("fedavg", make_clients(), num_channels, checkpoint=CheckpointManager(tmp_path))
        other_factory = SeededModelFactory(
            lambda seed: FLNet(num_channels, hidden_filters=4, kernel_size=3, seed=seed),
            base_seed=0,
        )
        algorithm = create_algorithm(
            "fedavg",
            make_clients(),
            other_factory,
            TINY_CONFIG,
            checkpoint=CheckpointManager(tmp_path),
        )
        with pytest.raises(ValueError, match="different model"):
            algorithm.run()

    def test_unsupported_algorithm_warns_and_ignores_checkpoint(
        self, tmp_path, make_clients, num_channels
    ):
        with pytest.warns(UserWarning, match="does not support per-round checkpointing"):
            algorithm = create_algorithm(
                "fedprox_lg",
                make_clients(),
                make_factory(num_channels),
                TINY_CONFIG,
                checkpoint=CheckpointManager(tmp_path),
            )
        assert algorithm.checkpoint is None

    def test_parallel_resume_matches_serial(self, tmp_path, make_clients, num_channels):
        from dataclasses import replace

        long_config = replace(TINY_CONFIG, rounds=3)
        short_config = replace(TINY_CONFIG, rounds=1)
        uninterrupted = run_named(
            "fedavg", make_clients(long_config), num_channels, config=long_config
        )
        run_named(
            "fedavg",
            make_clients(short_config),
            num_channels,
            config=short_config,
            checkpoint=CheckpointManager(tmp_path),
        )
        resumed = run_named(
            "fedavg",
            make_clients(long_config),
            num_channels,
            config=long_config,
            backend=ProcessPoolBackend(workers=2),
            checkpoint=CheckpointManager(tmp_path),
        )
        assert states_equal(uninterrupted.global_state, resumed.global_state)


class TestPreRefactorRegression:
    """The serial path must keep matching the pre-refactor inline loops.

    The expected numbers below were produced by the original (pre execution
    engine) implementations on the ``smoke`` preset with seed 0; the
    ``--workers 1`` path resolves to the serial backend and must reproduce
    them.  Tolerances are tight enough that any behavioral change (extra RNG
    draw, reordered aggregation) fails loudly, while allowing for tiny
    BLAS-level differences across platforms.
    """

    FEDAVG_STATE_SUM = -246.14086843884382
    FEDAVG_FLAT_HEAD = [
        -0.024343567800140756,
        -0.006691051100811467,
        0.0028413601550515153,
        -0.0021705326431967573,
        -0.03223819102385468,
    ]
    FEDAVG_MEAN_LOSSES = [19.605418492958744, 0.8722693602415387]
    FEDPROX_STATE_SUM = -249.47933033559852
    FEDPROX_MEAN_LOSSES = [19.605418492958744, 0.8722715352840865]

    @pytest.fixture(scope="class")
    def smoke_runner(self):
        from repro.experiments import ExperimentRunner, smoke

        return ExperimentRunner(smoke("flnet", seed=0))

    def fresh_clients(self, runner):
        factory = runner.model_factory()
        return [
            FederatedClient.from_client_data(data, factory, runner.config.fl)
            for data in runner.client_data()
        ]

    def run_with_workers_1(self, runner, algorithm):
        backend = create_backend(None, workers=1)
        assert isinstance(backend, SerialBackend)
        return create_algorithm(
            algorithm,
            self.fresh_clients(runner),
            runner.model_factory(),
            runner.config.fl,
            backend=backend,
        ).run()

    def test_fedavg_matches_pre_refactor(self, smoke_runner):
        training = self.run_with_workers_1(smoke_runner, "fedavg")
        flat = flatten_state(training.global_state)
        np.testing.assert_allclose(flat[:5], self.FEDAVG_FLAT_HEAD, rtol=0, atol=1e-12)
        np.testing.assert_allclose(float(flat.sum()), self.FEDAVG_STATE_SUM, rtol=0, atol=1e-9)
        np.testing.assert_allclose(
            [record.mean_loss for record in training.history],
            self.FEDAVG_MEAN_LOSSES,
            rtol=0,
            atol=1e-10,
        )

    def test_fedprox_matches_pre_refactor(self, smoke_runner):
        training = self.run_with_workers_1(smoke_runner, "fedprox")
        flat = flatten_state(training.global_state)
        np.testing.assert_allclose(float(flat.sum()), self.FEDPROX_STATE_SUM, rtol=0, atol=1e-9)
        np.testing.assert_allclose(
            [record.mean_loss for record in training.history],
            self.FEDPROX_MEAN_LOSSES,
            rtol=0,
            atol=1e-10,
        )
