"""End-to-end integration tests: corpus -> federated training -> evaluation.

These use the ``smoke`` preset (3 clients, one per suite style, 16x16 grids,
2 rounds x 2 steps) so the whole experiment pipeline — the same code path the
benchmark harness uses to regenerate the paper's tables — runs in under a
minute.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentRunner, format_rows, smoke
from repro.utils.rng import SeedSequenceFactory, hash_str, new_rng, spawn_rngs
from repro.utils.validation import check_choice, check_in_range, check_positive, check_probability, check_shape


@pytest.fixture(scope="module")
def smoke_runner():
    return ExperimentRunner(smoke("flnet"))


@pytest.mark.slow
class TestSmokeExperiment:
    def test_corpus_matches_spec(self, smoke_runner):
        data = smoke_runner.client_data()
        assert len(data) == len(smoke_runner.config.client_specs)
        for client, spec in zip(data, smoke_runner.config.client_specs):
            assert len(client.train.design_names()) == spec.train_designs
            assert len(client.test.design_names()) == spec.test_designs
            assert client.num_train_samples > 0
            assert client.num_test_samples > 0

    def test_fedprox_and_baselines_run(self, smoke_runner):
        result = smoke_runner.run(["local", "centralized", "fedprox"])
        assert [o.algorithm for o in result.outcomes] == ["local", "centralized", "fedprox"]
        for outcome in result.outcomes:
            for auc in outcome.evaluation.per_client_auc.values():
                assert 0.0 <= auc <= 1.0
            assert outcome.runtime_seconds > 0
        table = result.as_table()
        assert len(table) == 3
        text = format_rows(result.rows, title="smoke")
        assert "smoke" in text

    def test_personalized_algorithm_runs(self, smoke_runner):
        result = smoke_runner.run(["fedprox_finetune"])
        outcome = result.outcomes[0]
        assert outcome.training.is_personalized
        assert set(outcome.evaluation.per_client_auc) == {1, 2, 3}

    def test_experiment_result_accessors(self, smoke_runner):
        result = smoke_runner.run(["fedprox"])
        assert result.average_auc("fedprox") == result.row("fedprox").average_auc
        with pytest.raises(KeyError):
            result.row("ifca")


class TestUtils:
    def test_new_rng_accepts_generator(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(0, 3)
        values = [s.random() for s in streams]
        assert len(set(values)) == 3
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_seed_sequence_factory_stable(self):
        factory = SeedSequenceFactory(42)
        assert factory.seed_for("clients") == SeedSequenceFactory(42).seed_for("clients")
        assert factory.seed_for("clients") != factory.seed_for("designs")
        assert factory.rng_for("x").random() == SeedSequenceFactory(42).rng_for("x").random()

    def test_hash_str_is_stable(self):
        assert hash_str("fedprox") == hash_str("fedprox")
        assert hash_str("fedprox") != hash_str("fedavg")

    def test_validation_helpers(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ValueError):
            check_positive("x", 0)
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        assert check_in_range("v", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("v", 50, 0, 10)
        assert check_choice("c", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            check_choice("c", "z", ["a", "b"])
        arr = np.zeros((2, 3))
        assert check_shape("arr", arr, (2, -1)) is arr
        with pytest.raises(ValueError):
            check_shape("arr", arr, (3, 3))
        with pytest.raises(ValueError):
            check_shape("arr", arr, (2, 3, 1))
