"""Tests for experiment configuration presets and the paper reference tables."""

import pytest

from repro.experiments import (
    PAPER_TABLE1_FLNET_ARCHITECTURE,
    PAPER_TABLE2_SETUP,
    PAPER_TABLES,
    TABLE_ALGORITHMS,
    comparison_table,
    default,
    format_rows,
    paper,
    paper_average,
    preset,
    smoke,
)
from repro.experiments.config import ExperimentConfig
from repro.fl.evaluation import EvaluationRow


class TestPresets:
    def test_paper_preset_hyperparameters(self):
        config = paper("flnet")
        assert config.fl.rounds == 50
        assert config.fl.local_steps == 100
        assert config.fl.finetune_steps == 5000
        assert config.corpus.placement_scale == 1.0
        assert len(config.client_specs) == 9

    def test_default_preset_is_scaled_down(self):
        config = default("flnet")
        assert config.fl.rounds < paper().fl.rounds
        assert config.corpus.placement_scale < 1.0
        assert config.algorithms == TABLE_ALGORITHMS

    def test_smoke_preset_uses_reduced_roster(self):
        config = smoke("flnet")
        assert len(config.client_specs) < 9
        assert config.fl.rounds <= 2

    def test_preset_lookup(self):
        assert preset("default", "routenet").model == "routenet"
        with pytest.raises(ValueError):
            preset("huge")

    def test_with_model_and_algorithms(self):
        config = default("flnet").with_model("pros")
        assert config.model == "pros"
        reduced = config.with_algorithms(["fedprox"])
        assert reduced.algorithms == ("fedprox",)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", model="resnet")

    def test_with_execution_keeps_omitted_options(self):
        config = default("flnet").with_execution(checkpoint_dir="ckpt")
        updated = config.with_execution(workers=4)
        assert updated.workers == 4
        assert updated.checkpoint_dir == "ckpt"  # omitted -> kept
        cleared = updated.with_execution(checkpoint_dir=None)
        assert cleared.checkpoint_dir is None  # explicit None -> reset
        assert cleared.workers == 4

    def test_execution_options_validated(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            default("flnet").with_execution(backend="threads")
        with pytest.raises(ValueError, match="workers must be positive"):
            default("flnet").with_execution(workers=0)

    def test_with_scheduling_keeps_omitted_options(self):
        config = default("flnet").with_scheduling(participation=0.5)
        updated = config.with_scheduling(straggler_model="lognormal")
        assert updated.participation == 0.5  # omitted -> kept
        assert updated.straggler_model == "lognormal"
        assert updated.scheduling_requested
        cleared = updated.with_scheduling(participation=None, straggler_model=None)
        assert not cleared.scheduling_requested

    def test_scheduling_options_validated(self):
        with pytest.raises(ValueError, match="participation"):
            default("flnet").with_scheduling(participation=1.5)
        with pytest.raises(ValueError, match="unknown straggler model"):
            default("flnet").with_scheduling(straggler_model="snail")
        with pytest.raises(ValueError, match="deadline"):
            default("flnet").with_scheduling(round_policy="deadline")

    def test_fedbuff_incompatible_algorithms_fail_at_config_time(self):
        # fedavgm supports scheduling but not the fedbuff policy; the
        # mismatch must surface before any algorithm trains.
        with pytest.raises(ValueError, match="not supported by \\['fedavgm'\\]"):
            default("flnet").with_algorithms(["fedavg", "fedavgm"]).with_scheduling(
                round_policy="fedbuff"
            )
        # The FedProx family is fine.
        config = default("flnet").with_algorithms(["fedavg", "fedprox"]).with_scheduling(
            round_policy="fedbuff"
        )
        assert config.round_policy == "fedbuff"

    def test_each_preset_targets_all_three_models(self):
        for model in ("flnet", "routenet", "pros"):
            assert preset("smoke", model).model == model

    def test_with_wire_keeps_omitted_options(self):
        config = smoke("flnet").with_wire(wire_port=7001, heartbeat_interval=0.5)
        updated = config.with_wire(client_timeout=4.0)
        assert updated.wire_port == 7001  # omitted -> kept
        assert updated.heartbeat_interval == 0.5
        assert updated.client_timeout == 4.0

    def test_wire_options_validated(self):
        with pytest.raises(ValueError, match="port"):
            smoke("flnet").with_wire(wire_port=70000)
        with pytest.raises(ValueError, match="heartbeat"):
            smoke("flnet").with_wire(heartbeat_interval=0.0)
        with pytest.raises(ValueError, match="missed probe"):
            smoke("flnet").with_wire(heartbeat_interval=2.0, client_timeout=1.0)
        with pytest.raises(ValueError, match="rate"):
            smoke("flnet").with_wire(wire_fault_disconnect_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            smoke("flnet").with_wire(
                wire_fault_disconnect_rate=0.6, wire_fault_corrupt_rate=0.6
            )

    def test_wire_backend_rejects_workers_and_population(self):
        with pytest.raises(ValueError, match="workers"):
            smoke("flnet").with_execution(backend="wire", workers=4)
        with pytest.raises(ValueError, match="roster"):
            smoke("flnet").with_execution(backend="wire").with_population(population=30)

    def test_wire_backend_is_registered_with_execution(self):
        config = smoke("flnet").with_execution(backend="wire")
        assert config.backend == "wire"


class TestPaperReferenceTables:
    def test_tables_exist_for_all_models(self):
        assert set(PAPER_TABLES) == {"flnet", "routenet", "pros"}

    def test_every_row_has_ten_entries(self):
        for table in PAPER_TABLES.values():
            for values in table.values():
                assert len(values) == 10  # 9 clients + average

    def test_average_column_consistent_with_clients(self):
        for table in PAPER_TABLES.values():
            for values in table.values():
                clients_mean = sum(values[:9]) / 9
                assert values[9] == pytest.approx(clients_mean, abs=0.011)

    def test_headline_claims_hold_in_reference_data(self):
        """The paper's qualitative claims are encoded in its own numbers."""
        flnet = PAPER_TABLES["flnet"]
        routenet = PAPER_TABLES["routenet"]
        pros = PAPER_TABLES["pros"]
        # FedProx with FLNet beats local models; fine-tuning beats FedProx.
        assert flnet["fedprox"][-1] > flnet["local"][-1]
        assert flnet["fedprox_finetune"][-1] >= flnet["fedprox"][-1]
        # Centralized training is the empirical upper bound for FLNet.
        assert flnet["centralized"][-1] >= flnet["fedprox_finetune"][-1]
        # RouteNet and PROS degrade below their local baselines under FedProx.
        assert routenet["fedprox"][-1] < routenet["local"][-1]
        assert pros["fedprox"][-1] < pros["local"][-1]
        # FLNet beats both baselines under decentralized training.
        assert flnet["fedprox"][-1] > routenet["fedprox"][-1]
        assert flnet["fedprox"][-1] > pros["fedprox"][-1]

    def test_paper_average_lookup(self):
        assert paper_average("flnet", "fedprox") == pytest.approx(0.78)
        assert paper_average("routenet", "centralized") == pytest.approx(0.83)

    def test_table1_architecture_constants(self):
        assert PAPER_TABLE1_FLNET_ARCHITECTURE[0]["filters"] == 64
        assert PAPER_TABLE1_FLNET_ARCHITECTURE[1]["activation"] == "None"

    def test_table2_totals(self):
        assert len(PAPER_TABLE2_SETUP) == 9
        total_designs = sum(r["train_designs"] + r["test_designs"] for r in PAPER_TABLE2_SETUP)
        total_placements = sum(r["train_placements"] + r["test_placements"] for r in PAPER_TABLE2_SETUP)
        assert total_designs == 74
        assert total_placements == 7131


class TestFormatting:
    def make_row(self, name="fedprox"):
        return EvaluationRow(algorithm=name, per_client_auc={1: 0.8, 2: 0.7})

    def test_format_rows_contains_headers_and_values(self):
        text = format_rows([self.make_row()], title="Table X")
        assert "Table X" in text
        assert "Client 1" in text
        assert "0.800" in text
        assert "FedProx" in text

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_comparison_table(self):
        text = comparison_table("flnet", {"fedprox": 0.75, "local": 0.7})
        assert "paper avg" in text
        assert "0.78" in text  # the paper's FedProx average for FLNet
