"""Tests for the markdown report generator over benchmark results."""

import pytest

from repro.experiments import smoke
from repro.experiments.report import (
    RESULT_DESCRIPTIONS,
    communication_markdown,
    communication_text,
    comparison_markdown,
    load_result_texts,
    results_report,
    write_results_report,
)
from repro.experiments.runner import AlgorithmOutcome, ExperimentResult
from repro.fl import ChannelSummary, TrainingResult
from repro.fl.evaluation import EvaluationRow


def _fake_result(model="flnet"):
    """An ExperimentResult with hand-written evaluation rows (no training)."""
    result = ExperimentResult(config=smoke(model))
    for algorithm, auc in (("local", 0.70), ("fedprox", 0.80), ("dp_fedprox", 0.75)):
        row = EvaluationRow(algorithm=algorithm, per_client_auc={1: auc, 2: auc + 0.02})
        result.outcomes.append(
            AlgorithmOutcome(
                algorithm=algorithm,
                evaluation=row,
                training=TrainingResult(algorithm=algorithm),
                runtime_seconds=1.0,
            )
        )
    return result


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table3_flnet.txt").write_text("Table 3 body\nrow\n")
    (directory / "ablation_privacy.txt").write_text("privacy sweep body\n")
    (directory / "custom_extra.txt").write_text("extra study body\n")
    return directory


class TestLoadResultTexts:
    def test_loads_every_txt(self, results_dir):
        texts = load_result_texts(results_dir)
        assert set(texts) == {"table3_flnet", "ablation_privacy", "custom_extra"}
        assert texts["table3_flnet"].startswith("Table 3 body")

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result_texts(tmp_path / "nope")


class TestResultsReport:
    def test_sections_use_descriptions(self, results_dir):
        report = results_report(results_dir)
        assert report.startswith("# Regenerated evaluation artifacts")
        assert f"## {RESULT_DESCRIPTIONS['table3_flnet']}" in report
        assert f"## {RESULT_DESCRIPTIONS['ablation_privacy']}" in report

    def test_unknown_files_fall_back_to_stem(self, results_dir):
        report = results_report(results_dir)
        assert "## custom_extra" in report
        assert "extra study body" in report

    def test_bodies_in_code_fences(self, results_dir):
        report = results_report(results_dir)
        assert report.count("```text") == 3
        assert report.count("```") == 6

    def test_empty_directory_message(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        report = results_report(empty)
        assert "No benchmark results found" in report

    def test_write_results_report(self, results_dir, tmp_path):
        output = write_results_report(results_dir, tmp_path / "report.md", title="My run")
        text = output.read_text()
        assert text.startswith("# My run")
        assert "Table 3 body" in text


class TestComparisonMarkdown:
    def test_paper_rows_get_reference_values(self):
        table = comparison_markdown("flnet", _fake_result())
        assert "| Local Average (b1 to b9) | 0.72 | 0.710 |" in table
        assert "| FedProx | 0.78 | 0.810 |" in table

    def test_extension_rows_get_dash(self):
        table = comparison_markdown("flnet", _fake_result())
        assert "| dp_fedprox | — | 0.760 |" in table

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            comparison_markdown("unknown_model", _fake_result())

    def test_header_is_markdown_table(self):
        table = comparison_markdown("routenet", _fake_result("routenet"))
        lines = table.splitlines()
        assert lines[0] == "| Method | Paper avg | Measured avg |"
        assert lines[1] == "|---|---|---|"


def _summary(uplink=1000, downlink=2000, rounds=2):
    return ChannelSummary(
        uplink_codec="quantize-8b+deflate",
        downlink_codec="quantize-8b+deflate",
        delta_upload=True,
        error_feedback=False,
        rounds=rounds,
        total_uplink_bytes=uplink,
        total_downlink_bytes=downlink,
        uplink_bytes_per_round={0: uplink // rounds, 1: uplink // rounds},
        downlink_bytes_per_round={0: downlink // rounds, 1: downlink // rounds},
    )


class TestCommunicationReport:
    def test_no_channel_placeholder(self):
        result = _fake_result()
        assert "No transport channel" in communication_markdown(result)
        assert "nothing was measured" in communication_text(result)

    def test_markdown_lists_measured_algorithms(self):
        result = _fake_result()
        result.outcomes[1].communication = _summary()
        table = communication_markdown(result)
        lines = table.splitlines()
        assert lines[0].startswith("| Method | Uplink codec |")
        assert len(lines) == 3  # header + separator + the one measured row
        assert "fedprox" in lines[2]
        assert "quantize-8b+deflate" in lines[2]

    def test_text_contains_greppable_totals(self):
        result = _fake_result()
        result.outcomes[0].communication = _summary(uplink=123456, downlink=7890)
        text = communication_text(result)
        assert "total uplink 123,456 B" in text
        assert "total downlink 7,890 B" in text
        assert "delta uploads" in text
