"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.fl import ALGORITHMS
from repro.models.registry import available_models


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_every_command_has_a_handler(self):
        parser = build_parser()
        for command in ("list-models", "list-algorithms", "generate-data", "route", "reproduce", "communication"):
            args = parser.parse_args([command])
            assert callable(args.handler)

    def test_reproduce_arguments_parsed(self):
        args = build_parser().parse_args(
            ["reproduce", "--model", "routenet", "--preset", "smoke", "--algorithms", "local", "fedprox"]
        )
        assert args.model == "routenet"
        assert args.preset == "smoke"
        assert args.algorithms == ["local", "fedprox"]

    def test_reproduce_compression_arguments_parsed(self):
        args = build_parser().parse_args(
            ["reproduce", "--compression", "quantize", "--compression-bits", "4", "--topk-fraction", "0.05"]
        )
        assert args.compression == "quantize"
        assert args.compression_bits == 4
        assert args.topk_fraction == 0.05
        assert build_parser().parse_args(["reproduce"]).compression is None

    def test_reproduce_rejects_unknown_compression(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--compression", "gzip"])

    def test_reproduce_state_digest_flag(self):
        args = build_parser().parse_args(["reproduce", "--state-digest"])
        assert args.state_digest is True
        assert build_parser().parse_args(["reproduce"]).state_digest is False

    def test_serve_arguments_parsed(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--preset",
                "smoke",
                "--port",
                "0",
                "--heartbeat-interval",
                "0.5",
                "--client-timeout",
                "4",
                "--wire-fault-disconnect-rate",
                "0.1",
                "--state-digest",
            ]
        )
        assert args.handler is not None
        assert args.port == 0
        assert args.heartbeat_interval == 0.5
        assert args.client_timeout == 4.0
        assert args.wire_fault_disconnect_rate == 0.1
        assert args.state_digest is True
        defaults = build_parser().parse_args(["serve"])
        assert defaults.port == 7733
        assert defaults.wait_clients == 60.0
        assert defaults.quorum == 1.0

    def test_join_arguments_parsed(self):
        args = build_parser().parse_args(
            ["join", "--port", "7001", "--clients", "1", "2", "--drop-after", "3", "--kill-after", "2"]
        )
        assert args.port == 7001
        assert args.clients == [1, 2]
        assert args.drop_after == 3
        assert args.kill_after == 2
        defaults = build_parser().parse_args(["join"])
        assert defaults.clients is None
        assert defaults.drop_after is None and defaults.kill_after is None
        assert defaults.max_reconnects == 60

    def test_serve_rejects_invalid_wire_options(self, capsys):
        # Validation happens at config time and must exit with code 2.
        assert main(["serve", "--heartbeat-interval", "5", "--client-timeout", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_unknown_algorithms(self, capsys):
        assert main(["serve", "--algorithms", "fedsgdmax"]) == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_join_rejects_unknown_client_ids(self, capsys, tmp_path):
        code = main(
            ["join", "--preset", "smoke", "--clients", "42", "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown client ids" in capsys.readouterr().err


class TestListCommands:
    def test_list_models_prints_every_model(self, capsys):
        assert main(["list-models", "--channels", "3"]) == 0
        output = capsys.readouterr().out
        for name in available_models():
            assert name in output

    def test_list_algorithms_prints_registry(self, capsys):
        assert main(["list-algorithms"]) == 0
        output = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in output


class TestRouteCommand:
    def test_route_small_design(self, capsys):
        code = main(
            ["route", "--suite", "iscas89", "--seed", "3", "--cells", "260", "--grid", "12"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Placement quality" in output
        assert "Global routing quality" in output
        assert "wirelength_um" in output


class TestCommunicationCommand:
    def test_table_covers_every_algorithm(self, capsys):
        assert main(["communication", "--model", "flnet", "--rounds", "10"]) == 0
        output = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in output


class TestReproduceCommand:
    def test_rejects_unknown_algorithm(self, capsys):
        code = main(["reproduce", "--preset", "smoke", "--algorithms", "not_an_algorithm"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err

    @pytest.mark.slow
    def test_smoke_preset_runs(self, tmp_path, capsys):
        output_file = tmp_path / "table.txt"
        code = main(
            [
                "reproduce",
                "--preset",
                "smoke",
                "--algorithms",
                "local",
                "fedprox",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--output",
                str(output_file),
            ]
        )
        assert code == 0
        assert output_file.exists()
        text = output_file.read_text()
        assert "FedProx" in text
