"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.fl import ALGORITHMS
from repro.models.registry import available_models


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_every_command_has_a_handler(self):
        parser = build_parser()
        for command in ("list-models", "list-algorithms", "generate-data", "route", "reproduce", "communication"):
            args = parser.parse_args([command])
            assert callable(args.handler)

    def test_reproduce_arguments_parsed(self):
        args = build_parser().parse_args(
            ["reproduce", "--model", "routenet", "--preset", "smoke", "--algorithms", "local", "fedprox"]
        )
        assert args.model == "routenet"
        assert args.preset == "smoke"
        assert args.algorithms == ["local", "fedprox"]

    def test_reproduce_compression_arguments_parsed(self):
        args = build_parser().parse_args(
            ["reproduce", "--compression", "quantize", "--compression-bits", "4", "--topk-fraction", "0.05"]
        )
        assert args.compression == "quantize"
        assert args.compression_bits == 4
        assert args.topk_fraction == 0.05
        assert build_parser().parse_args(["reproduce"]).compression is None

    def test_reproduce_rejects_unknown_compression(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--compression", "gzip"])


class TestListCommands:
    def test_list_models_prints_every_model(self, capsys):
        assert main(["list-models", "--channels", "3"]) == 0
        output = capsys.readouterr().out
        for name in available_models():
            assert name in output

    def test_list_algorithms_prints_registry(self, capsys):
        assert main(["list-algorithms"]) == 0
        output = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in output


class TestRouteCommand:
    def test_route_small_design(self, capsys):
        code = main(
            ["route", "--suite", "iscas89", "--seed", "3", "--cells", "260", "--grid", "12"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Placement quality" in output
        assert "Global routing quality" in output
        assert "wirelength_um" in output


class TestCommunicationCommand:
    def test_table_covers_every_algorithm(self, capsys):
        assert main(["communication", "--model", "flnet", "--rounds", "10"]) == 0
        output = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in output


class TestReproduceCommand:
    def test_rejects_unknown_algorithm(self, capsys):
        code = main(["reproduce", "--preset", "smoke", "--algorithms", "not_an_algorithm"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err

    @pytest.mark.slow
    def test_smoke_preset_runs(self, tmp_path, capsys):
        output_file = tmp_path / "table.txt"
        code = main(
            [
                "reproduce",
                "--preset",
                "smoke",
                "--algorithms",
                "local",
                "fedprox",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--output",
                str(output_file),
            ]
        )
        assert code == 0
        assert output_file.exists()
        text = output_file.read_text()
        assert "FedProx" in text
