"""Tests for D4 geometric augmentation of routability samples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augmentation import (
    D4_SYMMETRIES,
    RandomAugmenter,
    apply_symmetry,
    augment_dataset,
    augment_sample,
    symmetry_name,
)
from repro.data.dataset import PlacementSample, RoutabilityDataset


def _sample(size=8, channels=3, seed=0, suite="iscas89"):
    rng = np.random.default_rng(seed)
    features = rng.random((channels, size, size))
    label = (rng.random((size, size)) > 0.8).astype(float)
    return PlacementSample(
        features=features, label=label, design_name=f"d{seed}", suite=suite, placement_index=seed
    )


def _dataset(n=3):
    return RoutabilityDataset([_sample(seed=i) for i in range(n)], name="aug_test")


class TestApplySymmetry:
    def test_identity(self):
        array = np.arange(12.0).reshape(3, 4)
        np.testing.assert_array_equal(apply_symmetry(array, 0, False), array)

    def test_rotation_matches_rot90(self):
        array = np.arange(16.0).reshape(4, 4)
        np.testing.assert_array_equal(apply_symmetry(array, 1, False), np.rot90(array))

    def test_flip_then_rotate_order(self):
        array = np.arange(16.0).reshape(4, 4)
        expected = np.rot90(np.flip(array, axis=-1), k=1)
        np.testing.assert_array_equal(apply_symmetry(array, 1, True), expected)

    def test_channel_axis_untouched(self):
        array = np.arange(2 * 3 * 3, dtype=float).reshape(2, 3, 3)
        rotated = apply_symmetry(array, 2, False)
        for channel in range(2):
            np.testing.assert_array_equal(rotated[channel], np.rot90(array[channel], k=2))

    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError):
            apply_symmetry(np.arange(5.0), 1, False)

    @given(st.integers(min_value=0, max_value=7), st.booleans())
    @settings(max_examples=32, deadline=None)
    def test_four_rotations_compose_to_identity(self, rotations, flip):
        array = np.random.default_rng(0).random((5, 5))
        result = apply_symmetry(array, rotations, flip)
        inverse = apply_symmetry(result, (4 - rotations % 4) % 4, False)
        if flip:
            inverse = np.flip(inverse, axis=-1)
        np.testing.assert_allclose(inverse, array)


class TestSymmetryName:
    def test_names(self):
        assert symmetry_name(0, False) == "rot0"
        assert symmetry_name(1, True) == "rot90_flip"
        assert symmetry_name(6, False) == "rot180"


class TestAugmentSample:
    def test_features_and_label_transformed_consistently(self):
        sample = _sample()
        augmented = augment_sample(sample, 1, True)
        np.testing.assert_array_equal(augmented.label, apply_symmetry(sample.label, 1, True))
        np.testing.assert_array_equal(augmented.features, apply_symmetry(sample.features, 1, True))

    def test_hotspot_fraction_preserved(self):
        sample = _sample(seed=3)
        for rotations, flip in D4_SYMMETRIES:
            augmented = augment_sample(sample, rotations, flip)
            assert augmented.hotspot_fraction == pytest.approx(sample.hotspot_fraction)

    def test_provenance_preserved(self):
        sample = _sample(seed=5, suite="ispd15")
        augmented = augment_sample(sample, 2, False)
        assert augmented.design_name == sample.design_name
        assert augmented.suite == "ispd15"
        assert augmented.placement_index == sample.placement_index

    def test_non_square_rejects_quarter_rotations(self):
        rng = np.random.default_rng(0)
        sample = PlacementSample(
            features=rng.random((2, 4, 6)),
            label=(rng.random((4, 6)) > 0.5).astype(float),
            design_name="rect",
            suite="itc99",
            placement_index=0,
        )
        with pytest.raises(ValueError, match="square"):
            augment_sample(sample, 1, False)
        # 180-degree rotations and flips are fine on rectangles.
        augment_sample(sample, 2, True)


class TestAugmentDataset:
    def test_multiplies_sample_count(self):
        dataset = _dataset(3)
        augmented = augment_dataset(dataset)
        assert len(augmented) == len(dataset) * len(D4_SYMMETRIES)

    def test_duplicate_symmetries_collapsed(self):
        dataset = _dataset(2)
        augmented = augment_dataset(dataset, symmetries=[(1, False), (5, False), (1, False)])
        assert len(augmented) == len(dataset)

    def test_include_original_adds_identity(self):
        dataset = _dataset(2)
        augmented = augment_dataset(dataset, symmetries=[(1, False)], include_original=True)
        assert len(augmented) == len(dataset) * 2
        np.testing.assert_array_equal(augmented[0].features, dataset[0].features)

    def test_empty_symmetries_rejected(self):
        with pytest.raises(ValueError):
            augment_dataset(_dataset(1), symmetries=[])

    def test_name_default_and_override(self):
        dataset = _dataset(1)
        assert augment_dataset(dataset).name == "aug_test/augmented"
        assert augment_dataset(dataset, name="custom").name == "custom"

    def test_channel_count_preserved(self):
        dataset = _dataset(2)
        augmented = augment_dataset(dataset)
        assert augmented.num_channels == dataset.num_channels


class TestRandomAugmenter:
    def test_deterministic_given_seed(self):
        sample = _sample(seed=7)
        a = RandomAugmenter(seed=11)(sample)
        b = RandomAugmenter(seed=11)(sample)
        np.testing.assert_array_equal(a.features, b.features)

    def test_only_configured_symmetries_used(self):
        sample = _sample(seed=9)
        augmenter = RandomAugmenter(symmetries=[(2, False)], seed=0)
        augmented = augmenter(sample)
        np.testing.assert_array_equal(augmented.label, apply_symmetry(sample.label, 2, False))

    def test_batch_augmentation_shapes(self):
        rng = np.random.default_rng(0)
        features = rng.random((5, 3, 8, 8))
        labels = (rng.random((5, 1, 8, 8)) > 0.5).astype(float)
        out_features, out_labels = RandomAugmenter(seed=1).augment_batch(features, labels)
        assert out_features.shape == features.shape
        assert out_labels.shape == labels.shape

    def test_batch_feature_label_consistency(self):
        """The same transform must be applied to a sample's features and label."""
        rng = np.random.default_rng(2)
        base = rng.random((4, 6, 6))
        features = np.stack([base, base + 1.0])[:, None].repeat(1, axis=1)
        # Use the label equal to channel 0 of the features so consistency is checkable.
        features = rng.random((6, 2, 6, 6))
        labels = features[:, 0].copy()
        out_features, out_labels = RandomAugmenter(seed=3).augment_batch(features, labels)
        np.testing.assert_allclose(out_features[:, 0], out_labels)

    def test_mismatched_batch_sizes_rejected(self):
        augmenter = RandomAugmenter(seed=0)
        with pytest.raises(ValueError):
            augmenter.augment_batch(np.zeros((2, 1, 4, 4)), np.zeros((3, 4, 4)))

    def test_empty_symmetries_rejected(self):
        with pytest.raises(ValueError):
            RandomAugmenter(symmetries=[])
