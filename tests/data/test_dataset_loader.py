"""Tests for dataset containers and the data loader."""

import numpy as np
import pytest

from repro.data import DataLoader, PlacementSample, RoutabilityDataset, infinite_batches


def make_sample(design="d0", suite="iscas89", index=0, grid=8, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    label = (rng.random((grid, grid)) > 0.8).astype(float)
    return PlacementSample(
        features=rng.random((channels, grid, grid)),
        label=label,
        design_name=design,
        suite=suite,
        placement_index=index,
    )


def make_dataset(n_designs=4, per_design=3, **kwargs):
    samples = []
    for d in range(n_designs):
        for p in range(per_design):
            samples.append(make_sample(design=f"d{d}", index=p, seed=d * 10 + p, **kwargs))
    return RoutabilityDataset(samples, name="unit")


class TestPlacementSample:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PlacementSample(np.zeros((3, 8, 8)), np.zeros((4, 4)), "d", "s", 0)
        with pytest.raises(ValueError):
            PlacementSample(np.zeros((8, 8)), np.zeros((8, 8)), "d", "s", 0)

    def test_properties(self):
        sample = make_sample()
        assert sample.num_channels == 3
        assert sample.grid_shape == (8, 8)
        assert 0.0 <= sample.hotspot_fraction <= 1.0


class TestRoutabilityDataset:
    def test_len_and_indexing(self):
        dataset = make_dataset()
        assert len(dataset) == 12
        assert isinstance(dataset[0], PlacementSample)

    def test_arrays(self):
        dataset = make_dataset()
        assert dataset.features_array().shape == (12, 3, 8, 8)
        assert dataset.labels_array().shape == (12, 8, 8)

    def test_design_names_and_suites(self):
        dataset = make_dataset()
        assert dataset.design_names() == ["d0", "d1", "d2", "d3"]
        assert dataset.suites() == ["iscas89"]

    def test_add_rejects_inconsistent_shape(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            dataset.add(make_sample(grid=16))

    def test_filter_designs(self):
        dataset = make_dataset()
        subset = dataset.filter_designs(["d0", "d2"])
        assert len(subset) == 6
        assert set(subset.design_names()) == {"d0", "d2"}

    def test_subset_by_indices(self):
        dataset = make_dataset()
        subset = dataset.subset([0, 5, 7])
        assert len(subset) == 3

    def test_split_by_design_is_disjoint(self):
        dataset = make_dataset(n_designs=6)
        train, test = dataset.split_by_design(0.7, np.random.default_rng(0))
        assert set(train.design_names()).isdisjoint(set(test.design_names()))
        assert len(train) + len(test) == len(dataset)
        assert len(train) > 0 and len(test) > 0

    def test_split_requires_two_designs(self):
        dataset = make_dataset(n_designs=1)
        with pytest.raises(ValueError):
            dataset.split_by_design(0.5, np.random.default_rng(0))

    def test_split_fraction_validation(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            dataset.split_by_design(1.5, np.random.default_rng(0))

    def test_save_and_load_round_trip(self, tmp_path):
        dataset = make_dataset()
        path = dataset.save(tmp_path / "ds")
        restored = RoutabilityDataset.load(path)
        assert len(restored) == len(dataset)
        np.testing.assert_allclose(restored.features_array(), dataset.features_array())
        np.testing.assert_allclose(restored.labels_array(), dataset.labels_array())
        assert restored.design_names() == dataset.design_names()

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RoutabilityDataset().save(tmp_path / "empty")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RoutabilityDataset.load(tmp_path / "missing.npz")

    def test_summary(self):
        summary = make_dataset().summary()
        assert summary["samples"] == 12
        assert summary["designs"] == 4

    def test_empty_dataset_accessors_raise(self):
        empty = RoutabilityDataset()
        with pytest.raises(ValueError):
            empty.features_array()
        with pytest.raises(ValueError):
            _ = empty.num_channels


class TestDataLoader:
    def test_batch_shapes(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=5, shuffle=False)
        features, labels = next(iter(loader))
        assert features.shape == (5, 3, 8, 8)
        assert labels.shape == (5, 1, 8, 8)

    def test_number_of_batches(self):
        dataset = make_dataset()  # 12 samples
        assert len(DataLoader(dataset, batch_size=5)) == 3
        assert len(DataLoader(dataset, batch_size=5, drop_last=True)) == 2
        assert len(DataLoader(dataset, batch_size=4)) == 3

    def test_covers_all_samples(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=5, shuffle=True, rng=np.random.default_rng(0))
        total = sum(features.shape[0] for features, _ in loader)
        assert total == len(dataset)

    def test_shuffle_changes_order(self):
        dataset = make_dataset()
        loader_a = DataLoader(dataset, batch_size=12, shuffle=True, rng=np.random.default_rng(1))
        loader_b = DataLoader(dataset, batch_size=12, shuffle=False)
        features_a, _ = next(iter(loader_a))
        features_b, _ = next(iter(loader_b))
        assert not np.allclose(features_a, features_b)

    def test_sample_batch(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=4, rng=np.random.default_rng(0))
        features, labels = loader.sample_batch()
        assert features.shape[0] == 4 and labels.shape[0] == 4

    def test_infinite_batches_wraps_around(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=6, rng=np.random.default_rng(0))
        iterator = infinite_batches(loader)
        batches = [next(iterator) for _ in range(5)]
        assert len(batches) == 5

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DataLoader(RoutabilityDataset(), batch_size=2)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)
