"""Tests for dataset containers and the data loader."""

import numpy as np
import pytest

from repro.data import DataLoader, PlacementSample, RoutabilityDataset, infinite_batches


def make_sample(design="d0", suite="iscas89", index=0, grid=8, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    label = (rng.random((grid, grid)) > 0.8).astype(float)
    return PlacementSample(
        features=rng.random((channels, grid, grid)),
        label=label,
        design_name=design,
        suite=suite,
        placement_index=index,
    )


def make_dataset(n_designs=4, per_design=3, **kwargs):
    samples = []
    for d in range(n_designs):
        for p in range(per_design):
            samples.append(make_sample(design=f"d{d}", index=p, seed=d * 10 + p, **kwargs))
    return RoutabilityDataset(samples, name="unit")


class TestPlacementSample:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PlacementSample(np.zeros((3, 8, 8)), np.zeros((4, 4)), "d", "s", 0)
        with pytest.raises(ValueError):
            PlacementSample(np.zeros((8, 8)), np.zeros((8, 8)), "d", "s", 0)

    def test_properties(self):
        sample = make_sample()
        assert sample.num_channels == 3
        assert sample.grid_shape == (8, 8)
        assert 0.0 <= sample.hotspot_fraction <= 1.0


class TestRoutabilityDataset:
    def test_len_and_indexing(self):
        dataset = make_dataset()
        assert len(dataset) == 12
        assert isinstance(dataset[0], PlacementSample)

    def test_arrays(self):
        dataset = make_dataset()
        assert dataset.features_array().shape == (12, 3, 8, 8)
        assert dataset.labels_array().shape == (12, 8, 8)

    def test_design_names_and_suites(self):
        dataset = make_dataset()
        assert dataset.design_names() == ["d0", "d1", "d2", "d3"]
        assert dataset.suites() == ["iscas89"]

    def test_add_rejects_inconsistent_shape(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            dataset.add(make_sample(grid=16))

    def test_filter_designs(self):
        dataset = make_dataset()
        subset = dataset.filter_designs(["d0", "d2"])
        assert len(subset) == 6
        assert set(subset.design_names()) == {"d0", "d2"}

    def test_subset_by_indices(self):
        dataset = make_dataset()
        subset = dataset.subset([0, 5, 7])
        assert len(subset) == 3

    def test_split_by_design_is_disjoint(self):
        dataset = make_dataset(n_designs=6)
        train, test = dataset.split_by_design(0.7, np.random.default_rng(0))
        assert set(train.design_names()).isdisjoint(set(test.design_names()))
        assert len(train) + len(test) == len(dataset)
        assert len(train) > 0 and len(test) > 0

    def test_split_requires_two_designs(self):
        dataset = make_dataset(n_designs=1)
        with pytest.raises(ValueError):
            dataset.split_by_design(0.5, np.random.default_rng(0))

    def test_split_fraction_validation(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            dataset.split_by_design(1.5, np.random.default_rng(0))

    def test_save_and_load_round_trip(self, tmp_path):
        dataset = make_dataset()
        path = dataset.save(tmp_path / "ds")
        restored = RoutabilityDataset.load(path)
        assert len(restored) == len(dataset)
        np.testing.assert_allclose(restored.features_array(), dataset.features_array())
        np.testing.assert_allclose(restored.labels_array(), dataset.labels_array())
        assert restored.design_names() == dataset.design_names()

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RoutabilityDataset().save(tmp_path / "empty")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RoutabilityDataset.load(tmp_path / "missing.npz")

    def test_summary(self):
        summary = make_dataset().summary()
        assert summary["samples"] == 12
        assert summary["designs"] == 4

    def test_empty_dataset_accessors_raise(self):
        empty = RoutabilityDataset()
        with pytest.raises(ValueError):
            empty.features_array()
        with pytest.raises(ValueError):
            _ = empty.num_channels


class TestDataLoader:
    def test_batch_shapes(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=5, shuffle=False)
        features, labels = next(iter(loader))
        assert features.shape == (5, 3, 8, 8)
        assert labels.shape == (5, 1, 8, 8)

    def test_number_of_batches(self):
        dataset = make_dataset()  # 12 samples
        assert len(DataLoader(dataset, batch_size=5)) == 3
        assert len(DataLoader(dataset, batch_size=5, drop_last=True)) == 2
        assert len(DataLoader(dataset, batch_size=4)) == 3

    def test_covers_all_samples(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=5, shuffle=True, rng=np.random.default_rng(0))
        total = sum(features.shape[0] for features, _ in loader)
        assert total == len(dataset)

    def test_shuffle_changes_order(self):
        dataset = make_dataset()
        loader_a = DataLoader(dataset, batch_size=12, shuffle=True, rng=np.random.default_rng(1))
        loader_b = DataLoader(dataset, batch_size=12, shuffle=False)
        features_a, _ = next(iter(loader_a))
        features_b, _ = next(iter(loader_b))
        assert not np.allclose(features_a, features_b)

    def test_sample_batch(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=4, rng=np.random.default_rng(0))
        features, labels = loader.sample_batch()
        assert features.shape[0] == 4 and labels.shape[0] == 4

    def test_infinite_batches_wraps_around(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=6, rng=np.random.default_rng(0))
        iterator = infinite_batches(loader)
        batches = [next(iterator) for _ in range(5)]
        assert len(batches) == 5

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DataLoader(RoutabilityDataset(), batch_size=2)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)


class TestPackedArrays:
    def test_matches_per_sample_stacking(self):
        dataset = make_dataset()
        features, labels = dataset.packed_arrays()
        np.testing.assert_array_equal(
            features, np.stack([dataset[i].features for i in range(len(dataset))], axis=0)
        )
        np.testing.assert_array_equal(
            labels, np.stack([dataset[i].label for i in range(len(dataset))], axis=0)
        )

    def test_cached_and_read_only(self):
        dataset = make_dataset()
        first = dataset.packed_arrays()
        assert dataset.packed_arrays()[0] is first[0]
        assert not first[0].flags.writeable
        assert not first[1].flags.writeable

    def test_dtype_variants_cached_separately(self):
        dataset = make_dataset()
        f32, l32 = dataset.packed_arrays(np.float32)
        assert f32.dtype == np.float32 and l32.dtype == np.float32
        assert dataset.packed_arrays(np.float32)[0] is f32
        np.testing.assert_allclose(f32, dataset.packed_arrays()[0].astype(np.float32))

    def test_add_invalidates_cache(self):
        dataset = make_dataset()
        before = dataset.packed_arrays()[0]
        dataset.add(make_sample(design="d9", seed=99))
        after = dataset.packed_arrays()[0]
        assert after.shape[0] == before.shape[0] + 1

    def test_arrays_accessors_return_writable_copies(self):
        dataset = make_dataset()
        features = dataset.features_array()
        features[:] = 0.0
        np.testing.assert_array_equal(dataset.features_array(), dataset.packed_arrays()[0])
        assert dataset.features_array().flags.writeable

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            RoutabilityDataset().packed_arrays()


class TestCollateParity:
    """The take-based collation must match the historical stack-based path."""

    def test_collate_matches_stacked_reference(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=5)
        indices = np.array([7, 0, 3, 11, 5])
        features, labels = loader._collate(indices)
        ref_features, ref_labels = loader._collate_stacked(indices)
        np.testing.assert_array_equal(features, ref_features)
        np.testing.assert_array_equal(labels, ref_labels)
        assert features.dtype == ref_features.dtype == np.float64

    def test_full_epoch_matches_stacked_reference(self):
        dataset = make_dataset()
        fast = DataLoader(dataset, batch_size=5, shuffle=True, rng=np.random.default_rng(3))
        from repro.nn.workspace import workspaces_disabled

        slow = DataLoader(dataset, batch_size=5, shuffle=True, rng=np.random.default_rng(3))
        fast_batches = [(f.copy(), y.copy()) for f, y in fast]
        with workspaces_disabled():
            slow_batches = list(slow)
        assert len(fast_batches) == len(slow_batches)
        for (fa, ya), (fb, yb) in zip(fast_batches, slow_batches):
            np.testing.assert_array_equal(fa, fb)
            np.testing.assert_array_equal(ya, yb)

    def test_sample_batch_matches_stacked_reference(self):
        dataset = make_dataset()
        fast = DataLoader(dataset, batch_size=4, rng=np.random.default_rng(9))
        from repro.nn.workspace import workspaces_disabled

        slow = DataLoader(dataset, batch_size=4, rng=np.random.default_rng(9))
        f_fast, y_fast = fast.sample_batch()
        with workspaces_disabled():
            f_slow, y_slow = slow.sample_batch()
        np.testing.assert_array_equal(f_fast, f_slow)
        np.testing.assert_array_equal(y_fast, y_slow)

    def test_batches_reuse_buffers(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=6, shuffle=False)
        iterator = iter(loader)
        first_features, _ = next(iterator)
        snapshot = first_features.copy()
        second_features, _ = next(iterator)
        # Full-size batches share one persistent buffer: the first batch's
        # view now shows the second batch's data (the documented contract —
        # a batch is valid until the next draw from the same loader).
        assert second_features.base is first_features.base or second_features is first_features
        assert not np.array_equal(first_features, snapshot)

    def test_partial_final_batch(self):
        dataset = make_dataset()  # 12 samples
        loader = DataLoader(dataset, batch_size=5, shuffle=False)
        sizes = [features.shape[0] for features, _ in loader]
        assert sizes == [5, 5, 2]
        *_, (last_features, last_labels) = iter(loader)
        np.testing.assert_array_equal(last_features, dataset.packed_arrays()[0][10:])
        assert last_labels.shape == (2, 1, 8, 8)

    def test_float32_batches(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=4, shuffle=False, dtype=np.float32)
        features, labels = next(iter(loader))
        assert features.dtype == np.float32 and labels.dtype == np.float32
        np.testing.assert_array_equal(
            features, dataset.packed_arrays(np.float32)[0][:4]
        )
