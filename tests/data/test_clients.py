"""Tests for the Table 2 client specification and corpus builder."""

import pytest

from repro.data.clients import (
    PAPER_TOTAL_DESIGNS,
    PAPER_TOTAL_PLACEMENTS,
    TABLE2_CLIENTS,
    ClientSpec,
    CorpusBuilder,
    CorpusConfig,
    build_table2_corpus,
    table2_rows,
)


class TestTable2Specs:
    def test_nine_clients(self):
        assert len(TABLE2_CLIENTS) == 9
        assert [spec.client_id for spec in TABLE2_CLIENTS] == list(range(1, 10))

    def test_suite_assignment_matches_paper(self):
        suites = [spec.suite for spec in TABLE2_CLIENTS]
        assert suites == [
            "itc99", "itc99", "itc99",
            "iscas89", "iscas89", "iscas89",
            "iwls05", "iwls05",
            "ispd15",
        ]

    def test_total_designs_is_74(self):
        assert PAPER_TOTAL_DESIGNS == 74

    def test_total_placements_is_7131(self):
        assert PAPER_TOTAL_PLACEMENTS == 7131

    def test_design_counts_match_table2(self):
        spec = TABLE2_CLIENTS[0]
        assert (spec.train_designs, spec.test_designs) == (4, 2)
        assert (spec.paper_train_placements, spec.paper_test_placements) == (462, 230)
        spec9 = TABLE2_CLIENTS[8]
        assert (spec9.train_designs, spec9.test_designs) == (9, 4)


class TestCorpusConfig:
    def test_placements_for_scaling(self):
        config = CorpusConfig(placement_scale=0.1, min_placements_per_design=2)
        # 462 placements over 4 designs at 10% -> ~12 per design.
        assert config.placements_for(462, 4) == pytest.approx(12, abs=1)

    def test_placements_for_respects_minimum(self):
        config = CorpusConfig(placement_scale=0.001, min_placements_per_design=3)
        assert config.placements_for(100, 5) >= 3

    def test_cache_key_changes_with_config(self):
        a = CorpusConfig(placement_scale=0.01)
        b = CorpusConfig(placement_scale=0.02)
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == CorpusConfig(placement_scale=0.01).cache_key()

    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(grid_width=0)
        with pytest.raises(ValueError):
            CorpusConfig(placement_scale=0)


SMALL_SPECS = (
    ClientSpec(1, "iscas89", 2, 1, 6, 3),
    ClientSpec(2, "itc99", 2, 1, 6, 3),
)
SMALL_CONFIG = CorpusConfig(
    grid_width=12, grid_height=12, placement_scale=0.5, min_placements_per_design=2, base_seed=3
)


class TestCorpusBuilder:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_table2_corpus(SMALL_CONFIG, specs=SMALL_SPECS)

    def test_builds_every_client(self, corpus):
        assert [c.client_id for c in corpus] == [1, 2]

    def test_design_counts_respected(self, corpus):
        for client, spec in zip(corpus, SMALL_SPECS):
            assert len(client.train.design_names()) == spec.train_designs
            assert len(client.test.design_names()) == spec.test_designs

    def test_train_test_designs_disjoint(self, corpus):
        for client in corpus:
            assert set(client.train.design_names()).isdisjoint(client.test.design_names())

    def test_no_designs_shared_between_clients(self, corpus):
        all_names = []
        for client in corpus:
            all_names.extend(client.train.design_names())
            all_names.extend(client.test.design_names())
        assert len(all_names) == len(set(all_names))

    def test_samples_have_expected_grid(self, corpus):
        for client in corpus:
            assert client.train.grid_shape == (12, 12)

    def test_suites_match_spec(self, corpus):
        for client, spec in zip(corpus, SMALL_SPECS):
            assert client.train.suites() == [spec.suite]

    def test_summary_rows(self, corpus):
        rows = table2_rows(corpus)
        assert rows[0]["client"] == "client1"
        assert rows[0]["train_placements"] == len(corpus[0].train)

    def test_caching_round_trip(self, tmp_path):
        builder = CorpusBuilder(SMALL_CONFIG)
        first = builder.build_all(SMALL_SPECS[:1], cache_dir=tmp_path)
        cached_files = list(tmp_path.rglob("*.npz"))
        assert cached_files
        second = builder.build_all(SMALL_SPECS[:1], cache_dir=tmp_path)
        assert len(second[0].train) == len(first[0].train)

    def test_deterministic_rebuild(self):
        a = CorpusBuilder(SMALL_CONFIG).build_client(SMALL_SPECS[0])
        b = CorpusBuilder(SMALL_CONFIG).build_client(SMALL_SPECS[0])
        import numpy as np

        np.testing.assert_allclose(a.train.features_array(), b.train.features_array())
        np.testing.assert_allclose(a.train.labels_array(), b.train.labels_array())
