"""Tests for RouteNet's normalization variants (batch / group / none)."""

import numpy as np
import pytest

from repro.models import RouteNet, RouteNetGN, available_models, create_model
from repro.nn.layers import BatchNorm2d, GroupNorm


def _input(channels=3, size=8, batch=2, seed=0):
    return np.random.default_rng(seed).normal(size=(batch, channels, size, size))


class TestNormVariants:
    def test_default_is_batch_norm(self):
        model = RouteNet(3, base_filters=4, seed=0)
        assert model.norm == "batch"
        assert any(isinstance(m, BatchNorm2d) for _, m in model.named_modules())
        assert any(key.endswith("running_mean") for key in model.state_dict())

    def test_group_variant_has_no_running_statistics(self):
        model = RouteNet(3, base_filters=4, norm="group", seed=0)
        assert any(isinstance(m, GroupNorm) for _, m in model.named_modules())
        assert not any(isinstance(m, BatchNorm2d) for _, m in model.named_modules())
        assert not any("running" in key for key in model.state_dict())

    def test_none_variant_has_no_norm_layers(self):
        model = RouteNet(3, base_filters=4, norm="none", seed=0)
        assert not any(isinstance(m, (BatchNorm2d, GroupNorm)) for _, m in model.named_modules())

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError, match="norm"):
            RouteNet(3, base_filters=4, norm="layer")

    @pytest.mark.parametrize("norm", ["batch", "group", "none"])
    def test_forward_shape(self, norm):
        model = RouteNet(3, base_filters=4, norm=norm, seed=0)
        output = model.forward(_input())
        assert output.shape == (2, 1, 8, 8)

    def test_variants_share_conv_parameter_shapes(self):
        """Only the norm layers differ: conv parameter shapes are identical."""
        batch = RouteNet(3, base_filters=4, norm="batch", seed=0)
        group = RouteNet(3, base_filters=4, norm="group", seed=0)
        batch_convs = {k: v.shape for k, v in batch.state_dict().items() if "conv" in k or "weight" in k}
        group_convs = {k: v.shape for k, v in group.state_dict().items() if k in batch_convs}
        for key, shape in group_convs.items():
            assert batch.state_dict()[key].shape == shape

    def test_backward_runs_for_group_variant(self):
        model = RouteNet(3, base_filters=4, norm="group", seed=0)
        x = _input()
        output = model.forward(x)
        grad = model.backward(np.ones_like(output))
        assert grad.shape == x.shape
        assert np.all(np.isfinite(grad))


class TestRouteNetGNFactory:
    def test_wrapper_builds_group_variant(self):
        model = RouteNetGN(3, base_filters=4, seed=0)
        assert isinstance(model, RouteNet)
        assert model.norm == "group"

    def test_registered_in_registry(self):
        assert "routenet_gn" in available_models()
        model = create_model("routenet_gn", in_channels=3, seed=0, base_filters=4)
        assert model.norm == "group"

    def test_deterministic_per_seed(self):
        a = RouteNetGN(3, base_filters=4, seed=5)
        b = RouteNetGN(3, base_filters=4, seed=5)
        for key, value in a.state_dict().items():
            np.testing.assert_array_equal(value, b.state_dict()[key])

    def test_output_layer_exposed_for_fedprox_lg(self):
        model = RouteNetGN(3, base_filters=4, seed=0)
        assert all(name.startswith("output_conv") for name in model.local_parameter_names())
