"""Tests for FLNet, RouteNet, PROS, and the model registry."""

import numpy as np
import pytest

from repro.models import FLNet, PROS, RouteNet, available_models, create_model, register_model
from repro.nn import MSELoss

CHANNELS = 7
GRID = 16


def random_batch(batch=2, channels=CHANNELS, grid=GRID, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, channels, grid, grid)), rng.random((batch, 1, grid, grid))


@pytest.mark.parametrize("model_cls", [FLNet, RouteNet, PROS])
class TestCommonModelBehaviour:
    def test_output_shape(self, model_cls):
        model = model_cls(CHANNELS, seed=0)
        x, _ = random_batch()
        assert model(x).shape == (2, 1, GRID, GRID)

    def test_backward_returns_input_gradient(self, model_cls):
        model = model_cls(CHANNELS, seed=0)
        x, y = random_batch()
        out = model(x)
        loss = MSELoss()
        loss.forward(out, y)
        grad = model.backward(loss.backward())
        assert grad.shape == x.shape
        assert np.any(grad != 0)

    def test_training_reduces_loss(self, model_cls):
        from repro.nn import Adam

        model = model_cls(CHANNELS, seed=1)
        x, y = random_batch(seed=3)
        loss_fn = MSELoss()
        optimizer = Adam(model.parameters(), lr=1e-3)
        first = None
        for step in range(15):
            optimizer.zero_grad()
            out = model(x)
            value = loss_fn.forward(out, y)
            if step == 0:
                first = value
            model.backward(loss_fn.backward())
            optimizer.step()
        assert value < first

    def test_rejects_wrong_channel_count(self, model_cls):
        model = model_cls(CHANNELS, seed=0)
        with pytest.raises(ValueError):
            model(np.zeros((1, CHANNELS + 1, GRID, GRID)))

    def test_state_dict_round_trip_preserves_output(self, model_cls):
        model = model_cls(CHANNELS, seed=0)
        clone = model_cls(CHANNELS, seed=99)
        x, _ = random_batch(seed=5)
        clone.load_state_dict(model.state_dict())
        np.testing.assert_allclose(model.predict(x), clone.predict(x), atol=1e-10)

    def test_predict_runs_in_eval_and_restores_mode(self, model_cls):
        model = model_cls(CHANNELS, seed=0)
        model.train()
        x, _ = random_batch()
        model.predict(x)
        assert model.training

    def test_local_parameter_names_target_output_conv(self, model_cls):
        model = model_cls(CHANNELS, seed=0)
        local = model.local_parameter_names()
        assert local and all(name.startswith("output_conv") for name in local)
        global_names = model.global_parameter_names()
        assert set(local).isdisjoint(global_names)
        assert set(local) | set(global_names) == {name for name, _ in model.named_parameters()}

    def test_deterministic_init_given_seed(self, model_cls):
        a = model_cls(CHANNELS, seed=7)
        b = model_cls(CHANNELS, seed=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)


class TestFLNet:
    def test_table1_architecture(self):
        model = FLNet(CHANNELS, seed=0)
        table = model.architecture_table()
        assert table[0] == {
            "layer": "input_conv",
            "kernel_size": "9 x 9",
            "filters": 64,
            "activation": "ReLU",
        }
        assert table[1]["filters"] == 1 and table[1]["activation"] == "None"

    def test_no_batchnorm_layers(self):
        model = FLNet(CHANNELS, seed=0)
        assert not any("running_mean" in name for name, _ in model.named_buffers())

    def test_exactly_two_conv_layers(self):
        model = FLNet(CHANNELS, seed=0)
        conv_params = {name.split(".")[0] for name, _ in model.named_parameters()}
        assert conv_params == {"input_conv", "output_conv"}

    def test_parameter_count_formula(self):
        model = FLNet(CHANNELS, seed=0)
        expected = (CHANNELS * 81 * 64 + 64) + (64 * 81 * 1 + 1)
        assert model.num_parameters() == expected

    def test_rejects_even_kernel(self):
        with pytest.raises(ValueError):
            FLNet(CHANNELS, kernel_size=8)

    def test_fewer_parameters_than_baselines(self):
        flnet = FLNet(CHANNELS, seed=0)
        routenet = RouteNet(CHANNELS, seed=0)
        pros = PROS(CHANNELS, seed=0)
        assert flnet.num_parameters() < routenet.num_parameters()
        assert flnet.num_parameters() < pros.num_parameters()


class TestRouteNetAndPros:
    def test_routenet_has_batchnorm(self):
        model = RouteNet(CHANNELS, seed=0)
        assert any("running_mean" in name for name, _ in model.named_buffers())

    def test_pros_has_batchnorm(self):
        model = PROS(CHANNELS, seed=0)
        assert any("running_mean" in name for name, _ in model.named_buffers())

    def test_routenet_requires_even_grid(self):
        model = RouteNet(CHANNELS, seed=0)
        with pytest.raises(ValueError):
            model(np.zeros((1, CHANNELS, 15, 15)))

    def test_pros_requires_even_grid(self):
        model = PROS(CHANNELS, seed=0)
        with pytest.raises(ValueError):
            model(np.zeros((1, CHANNELS, 15, 15)))

    def test_routenet_shortcut_affects_output(self):
        model = RouteNet(CHANNELS, seed=0)
        x, _ = random_batch(seed=9)
        baseline = model.predict(x)
        model.shortcut.weight.data[:] = 0.0
        model.shortcut.bias.data[:] = 0.0
        assert not np.allclose(model.predict(x), baseline)


class TestRegistry:
    def test_available_models(self):
        assert {"flnet", "routenet", "pros"}.issubset(set(available_models()))

    def test_create_by_name_case_insensitive(self):
        assert isinstance(create_model("FLNet", CHANNELS, seed=0), FLNet)
        assert isinstance(create_model("routenet", CHANNELS, seed=0), RouteNet)
        assert isinstance(create_model("PROS", CHANNELS, seed=0), PROS)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            create_model("unet", CHANNELS)

    def test_register_custom_model(self):
        register_model("tiny_flnet", lambda c, **kw: FLNet(c, hidden_filters=8, **kw), overwrite=True)
        model = create_model("tiny_flnet", CHANNELS, seed=0)
        assert isinstance(model, FLNet)
        assert model.hidden_filters == 8

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_model("flnet", FLNet)

    def test_kwargs_forwarded(self):
        model = create_model("flnet", CHANNELS, seed=0, hidden_filters=16)
        assert model.hidden_filters == 16
