"""Tests for losses, optimizers, initialization, and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SGD,
    Adam,
    BCELoss,
    BCEWithLogitsLoss,
    Linear,
    MSELoss,
    Parameter,
    load_state_dict,
    make_loss,
    make_optimizer,
    save_state_dict,
    state_dicts_allclose,
)
from repro.nn import init as nn_init
from repro.nn.gradcheck import numerical_gradient


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()
        value = loss.forward(np.array([1.0, 2.0, 3.0]), np.array([1.0, 1.0, 1.0]))
        assert value == pytest.approx((0 + 1 + 4) / 3)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(4, 5))
        target = rng.normal(size=(4, 5))
        loss = MSELoss()
        loss.forward(pred, target)
        analytic = loss.backward()
        numeric = numerical_gradient(lambda p: MSELoss().forward(p, target), pred.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros(3), np.zeros(4))

    def test_zero_for_perfect_prediction(self):
        x = np.random.default_rng(0).normal(size=(3, 3))
        assert MSELoss().forward(x, x.copy()) == pytest.approx(0.0)


class TestBCELosses:
    def test_bce_known_value(self):
        loss = BCELoss()
        value = loss.forward(np.array([0.5, 0.5]), np.array([1.0, 0.0]))
        assert value == pytest.approx(-np.log(0.5))

    def test_bce_gradient_numerical(self):
        rng = np.random.default_rng(1)
        pred = rng.uniform(0.05, 0.95, size=(3, 4))
        target = (rng.random((3, 4)) > 0.5).astype(float)
        loss = BCELoss()
        loss.forward(pred, target)
        analytic = loss.backward()
        numeric = numerical_gradient(lambda p: BCELoss().forward(p, target), pred.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_bce_logits_matches_bce_on_sigmoid(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(5, 5))
        target = (rng.random((5, 5)) > 0.5).astype(float)
        from repro.nn.functional import sigmoid

        direct = BCEWithLogitsLoss().forward(logits, target)
        via_probs = BCELoss().forward(sigmoid(logits), target)
        assert direct == pytest.approx(via_probs, rel=1e-6)

    def test_bce_logits_gradient_numerical(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(3, 3))
        target = (rng.random((3, 3)) > 0.5).astype(float)
        loss = BCEWithLogitsLoss(pos_weight=2.0)
        loss.forward(logits, target)
        analytic = loss.backward()
        numeric = numerical_gradient(
            lambda p: BCEWithLogitsLoss(pos_weight=2.0).forward(p, target), logits.copy()
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_factory(self):
        assert isinstance(make_loss("mse"), MSELoss)
        assert isinstance(make_loss("bce"), BCELoss)
        assert isinstance(make_loss("bce_logits"), BCEWithLogitsLoss)
        with pytest.raises(ValueError):
            make_loss("hinge")


def quadratic_problem(seed=0):
    """A small least-squares problem used to test optimizer convergence."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=(5,))
    param = Parameter(np.zeros(5))

    def loss_and_grad():
        diff = param.data - target
        param.grad = 2.0 * diff
        return float(np.sum(diff**2))

    return param, target, loss_and_grad


class TestOptimizers:
    @pytest.mark.parametrize("make", [lambda p: SGD([p], lr=0.1), lambda p: SGD([p], lr=0.05, momentum=0.9), lambda p: Adam([p], lr=0.2)])
    def test_converges_on_quadratic(self, make):
        param, target, loss_and_grad = quadratic_problem()
        optimizer = make(param)
        for _ in range(200):
            optimizer.zero_grad()
            loss_and_grad()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.ones(4) * 10.0)
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            optimizer.zero_grad()  # gradient stays zero; only decay acts
            optimizer.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_adam_step_count_and_reset(self):
        param = Parameter(np.ones(2))
        adam = Adam([param], lr=0.1)
        param.grad = np.ones(2)
        adam.step()
        assert adam._step_count == 1
        adam.reset_state()
        assert adam._step_count == 0

    def test_factory(self):
        param = Parameter(np.zeros(2))
        assert isinstance(make_optimizer("sgd", [param], lr=0.1), SGD)
        assert isinstance(make_optimizer("adam", [param], lr=0.1), Adam)
        with pytest.raises(ValueError):
            make_optimizer("rmsprop", [param], lr=0.1)

    def test_invalid_hyperparameters(self):
        param = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestInPlaceStepBitIdentity:
    """The in-place (``out=``) optimizer steps must be bit-identical to the
    original expression-form updates they replaced."""

    SHAPES = [(4, 3), (7,), (2, 2, 3)]
    STEPS = 6

    def _run(self, optimizer, params, grads):
        for step_grads in grads:
            for param, grad in zip(params, step_grads):
                param.grad[...] = grad
            optimizer.step()

    def _make_problem(self, seed=0):
        rng = np.random.default_rng(seed)
        initial = [rng.normal(size=shape) for shape in self.SHAPES]
        grads = [
            [rng.normal(size=shape) for shape in self.SHAPES] for _ in range(self.STEPS)
        ]
        return initial, grads

    @staticmethod
    def _reference_sgd(datas, grads, lr, momentum, weight_decay):
        velocity = {}
        for step_grads in grads:
            for index, data in enumerate(datas):
                grad = step_grads[index] + weight_decay * data if weight_decay else step_grads[index]
                if momentum:
                    v = velocity.get(index, np.zeros_like(data))
                    v = momentum * v + grad
                    velocity[index] = v
                    update = v
                else:
                    update = grad
                datas[index] = data - lr * update

    @staticmethod
    def _reference_adam(datas, grads, lr, beta1, beta2, eps, weight_decay):
        first, second = {}, {}
        for t, step_grads in enumerate(grads, start=1):
            bias1 = 1.0 - beta1**t
            bias2 = 1.0 - beta2**t
            for index, data in enumerate(datas):
                grad = step_grads[index] + weight_decay * data if weight_decay else step_grads[index]
                m = first.get(index, np.zeros_like(data))
                v = second.get(index, np.zeros_like(data))
                m = beta1 * m + (1.0 - beta1) * grad
                v = beta2 * v + (1.0 - beta2) * grad**2
                first[index], second[index] = m, v
                data -= lr * (m / bias1) / (np.sqrt(v / bias2) + eps)

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    @pytest.mark.parametrize("weight_decay", [0.0, 1e-3])
    def test_sgd_matches_expression_form(self, momentum, weight_decay):
        initial, grads = self._make_problem()
        params = [Parameter(values.copy()) for values in initial]
        self._run(SGD(params, lr=0.01, momentum=momentum, weight_decay=weight_decay), params, grads)
        reference = [values.copy() for values in initial]
        self._reference_sgd(reference, grads, 0.01, momentum, weight_decay)
        for param, expected in zip(params, reference):
            np.testing.assert_array_equal(param.data, expected)

    @pytest.mark.parametrize("weight_decay", [0.0, 1e-5])
    def test_adam_matches_expression_form(self, weight_decay):
        initial, grads = self._make_problem(seed=1)
        params = [Parameter(values.copy()) for values in initial]
        self._run(Adam(params, lr=2e-4, weight_decay=weight_decay), params, grads)
        reference = [values.copy() for values in initial]
        self._reference_adam(reference, grads, 2e-4, 0.9, 0.999, 1e-8, weight_decay)
        for param, expected in zip(params, reference):
            np.testing.assert_array_equal(param.data, expected)

    def test_step_allocates_no_new_state_after_first_call(self):
        initial, grads = self._make_problem(seed=2)
        params = [Parameter(values.copy()) for values in initial]
        adam = Adam(params, lr=1e-3)
        for param, grad in zip(params, grads[0]):
            param.grad[...] = grad
        adam.step()
        moments_before = [adam._first_moment[i] for i in range(len(params))]
        scratch_before = [adam._scratch[i] for i in range(len(params))]
        adam.step()
        assert all(adam._first_moment[i] is m for i, m in enumerate(moments_before))
        assert all(adam._scratch[i] is s for i, s in enumerate(scratch_before))


class TestInit:
    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = nn_init.kaiming_uniform((64, 16, 3, 3), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / (16 * 9))
        assert np.all(np.abs(weights) <= bound + 1e-12)

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        weights = nn_init.xavier_normal((200, 100), rng)
        expected_std = np.sqrt(2.0 / 300)
        assert weights.std() == pytest.approx(expected_std, rel=0.1)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            nn_init.kaiming_uniform((3,), np.random.default_rng(0))

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_fan_computation_consistency(self, fan_out, fan_in):
        rng = np.random.default_rng(0)
        weights = nn_init.xavier_uniform((fan_out, fan_in), rng)
        assert weights.shape == (fan_out, fan_in)
        bound = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(weights) <= bound + 1e-12)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        path = save_state_dict(layer.state_dict(), tmp_path / "model")
        restored = load_state_dict(path)
        assert state_dicts_allclose(layer.state_dict(), restored)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(tmp_path / "nope.npz")

    def test_allclose_detects_difference(self):
        a = {"w": np.zeros(3)}
        b = {"w": np.ones(3)}
        assert not state_dicts_allclose(a, b)
        assert not state_dicts_allclose(a, {"v": np.zeros(3)})
