"""Tests for learning-rate schedulers, new losses, gradient clipping, and GroupNorm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SGD,
    Adam,
    BCEWithLogitsLoss,
    ConstantLR,
    CosineAnnealingLR,
    DiceLoss,
    ExponentialLR,
    FocalLoss,
    GroupNorm,
    InstanceNorm2d,
    MultiStepLR,
    Parameter,
    StepLR,
    WarmupLR,
    WeightedMSELoss,
    check_layer_input_gradient,
    check_layer_parameter_gradients,
    clip_grad_norm,
    clip_grad_value,
    make_loss,
    make_scheduler,
    max_relative_error,
    numerical_gradient,
)


def _optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(3), name="p")], lr=lr)


class TestSchedulers:
    def test_constant_keeps_rate(self):
        opt = _optimizer(0.05)
        sched = ConstantLR(opt)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.05)

    def test_step_lr_decays_at_boundaries(self):
        opt = _optimizer(1.0)
        sched = StepLR(opt, step_size=3, gamma=0.5)
        rates = [sched.step() for _ in range(7)]
        assert rates[:2] == [1.0, 1.0]
        assert rates[2] == pytest.approx(0.5)
        assert rates[5] == pytest.approx(0.25)

    def test_multistep_lr(self):
        opt = _optimizer(1.0)
        sched = MultiStepLR(opt, milestones=[2, 5], gamma=0.1)
        rates = [sched.step() for _ in range(6)]
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(0.1)
        assert rates[4] == pytest.approx(0.01)

    def test_exponential_lr(self):
        opt = _optimizer(1.0)
        sched = ExponentialLR(opt, gamma=0.9)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.81)

    def test_cosine_reaches_min_lr(self):
        opt = _optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_steps=10, min_lr=0.01)
        rates = [sched.step() for _ in range(12)]
        assert rates[0] < 1.0
        assert rates[9] == pytest.approx(0.01)
        assert rates[11] == pytest.approx(0.01)
        assert all(a >= b - 1e-12 for a, b in zip(rates[:-1], rates[1:]))

    def test_warmup_ramps_then_hands_off(self):
        opt = _optimizer(1.0)
        sched = WarmupLR(opt, warmup_steps=4)
        rates = [sched.step() for _ in range(6)]
        assert rates[0] == pytest.approx(0.25)
        assert rates[3] == pytest.approx(1.0)
        assert rates[5] == pytest.approx(1.0)

    def test_warmup_wraps_inner_schedule(self):
        opt = _optimizer(1.0)
        inner = StepLR(opt, step_size=2, gamma=0.5)
        sched = WarmupLR(opt, warmup_steps=2, after=inner)
        rates = [sched.step() for _ in range(6)]
        assert rates[1] == pytest.approx(1.0)
        # After warm-up the StepLR schedule starts from its own step 1.
        assert rates[3] == pytest.approx(0.5)
        assert rates[5] == pytest.approx(0.25)

    def test_reset_restores_base_rate(self):
        opt = _optimizer(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.reset()
        assert opt.lr == pytest.approx(1.0)
        assert sched.last_step == 0

    def test_factory_and_unknown_name(self):
        opt = _optimizer()
        assert isinstance(make_scheduler("cosine", opt, total_steps=5), CosineAnnealingLR)
        with pytest.raises(ValueError):
            make_scheduler("plateau", opt)

    def test_invalid_hyperparameters(self):
        opt = _optimizer()
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            ExponentialLR(opt, gamma=1.5)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, total_steps=5, min_lr=1.0)
        with pytest.raises(ValueError):
            MultiStepLR(opt, milestones=[3, 3])
        with pytest.raises(ValueError):
            WarmupLR(opt, warmup_steps=0)

    def test_warmup_rejects_foreign_optimizer(self):
        inner = StepLR(_optimizer(), step_size=2)
        with pytest.raises(ValueError):
            WarmupLR(_optimizer(), warmup_steps=2, after=inner)


class TestFocalLoss:
    def test_zero_gamma_matches_scaled_bce(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 4))
        target = (rng.random((4, 4)) > 0.7).astype(float)
        focal = FocalLoss(gamma=0.0, alpha=0.5)
        bce = BCEWithLogitsLoss()
        assert focal(logits, target) == pytest.approx(0.5 * bce(logits, target), rel=1e-9)

    def test_down_weights_easy_examples(self):
        easy = np.array([[6.0]])
        hard = np.array([[0.1]])
        target = np.array([[1.0]])
        loss = FocalLoss(gamma=2.0, alpha=0.5)
        assert loss(easy, target) < loss(hard, target)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 5))
        target = (rng.random((3, 5)) > 0.8).astype(float)
        loss = FocalLoss(gamma=2.0, alpha=0.25)

        def f(values):
            return loss.forward(values, target)

        numeric = numerical_gradient(f, logits.copy())
        loss.forward(logits, target)
        analytic = loss.backward()
        assert max_relative_error(analytic, numeric) < 1e-5

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            FocalLoss(gamma=-1.0)
        with pytest.raises(ValueError):
            FocalLoss(alpha=1.0)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            FocalLoss().backward()


class TestDiceLoss:
    def test_perfect_overlap_near_zero(self):
        target = np.zeros((6, 6))
        target[2:4, 2:4] = 1.0
        assert DiceLoss()(target.copy(), target) < 0.05

    def test_no_overlap_near_one(self):
        prediction = np.zeros((6, 6))
        prediction[0, 0] = 1.0
        target = np.zeros((6, 6))
        target[5, 5] = 1.0
        assert DiceLoss(smooth=1e-3)(prediction, target) > 0.9

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        probs = rng.random((4, 4))
        target = (rng.random((4, 4)) > 0.6).astype(float)
        loss = DiceLoss()

        def f(values):
            return loss.forward(values, target)

        numeric = numerical_gradient(f, probs.copy())
        loss.forward(probs, target)
        analytic = loss.backward()
        assert max_relative_error(analytic, numeric) < 1e-5

    def test_invalid_smooth(self):
        with pytest.raises(ValueError):
            DiceLoss(smooth=0.0)


class TestWeightedMSELoss:
    def test_reduces_to_mse_for_unit_weight(self):
        rng = np.random.default_rng(3)
        prediction = rng.normal(size=(5, 5))
        target = (rng.random((5, 5)) > 0.5).astype(float)
        weighted = WeightedMSELoss(pos_weight=1.0)(prediction, target)
        plain = float(np.mean((prediction - target) ** 2))
        assert weighted == pytest.approx(plain)

    def test_positive_bins_weighted_up(self):
        prediction = np.zeros((2, 2))
        target = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert WeightedMSELoss(pos_weight=4.0)(prediction, target) > WeightedMSELoss(pos_weight=1.0)(
            prediction, target
        )

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        prediction = rng.normal(size=(3, 4))
        target = (rng.random((3, 4)) > 0.7).astype(float)
        loss = WeightedMSELoss(pos_weight=3.0)

        def f(values):
            return loss.forward(values, target)

        numeric = numerical_gradient(f, prediction.copy())
        loss.forward(prediction, target)
        analytic = loss.backward()
        assert max_relative_error(analytic, numeric) < 1e-6

    def test_factory_knows_new_losses(self):
        assert isinstance(make_loss("focal"), FocalLoss)
        assert isinstance(make_loss("dice"), DiceLoss)
        assert isinstance(make_loss("weighted_mse", pos_weight=2.0), WeightedMSELoss)


class TestGradientClipping:
    def test_clip_grad_norm_scales_down(self):
        params = [Parameter(np.zeros(4), name="a"), Parameter(np.zeros(4), name="b")]
        params[0].grad += 3.0
        params[1].grad += 4.0
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(10.0)
        total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in params))
        assert total == pytest.approx(1.0)

    def test_clip_grad_norm_noop_when_small(self):
        param = Parameter(np.zeros(2), name="a")
        param.grad += 0.1
        clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_allclose(param.grad, 0.1)

    def test_clip_grad_value(self):
        param = Parameter(np.zeros(3), name="a")
        param.grad[:] = [-2.0, 0.5, 7.0]
        clip_grad_value([param], max_value=1.0)
        np.testing.assert_allclose(param.grad, [-1.0, 0.5, 1.0])

    def test_invalid_arguments(self):
        param = Parameter(np.zeros(1), name="a")
        with pytest.raises(ValueError):
            clip_grad_norm([param], max_norm=0.0)
        with pytest.raises(ValueError):
            clip_grad_value([param], max_value=-1.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_clipped_norm_never_exceeds_bound(self, max_norm):
        rng = np.random.default_rng(0)
        params = [Parameter(np.zeros(6), name="p")]
        params[0].grad += rng.normal(scale=5.0, size=6)
        clip_grad_norm(params, max_norm=max_norm)
        assert np.sqrt(float(np.sum(params[0].grad ** 2))) <= max_norm + 1e-9


class TestGroupNorm:
    def test_output_normalized_per_group(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=3.0, scale=2.0, size=(2, 4, 5, 5))
        layer = GroupNorm(num_groups=2, num_channels=4)
        out = layer.forward(x)
        grouped = out.reshape(2, 2, 2, 5, 5)
        assert np.allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-6)
        assert np.allclose(grouped.std(axis=(2, 3, 4)), 1.0, atol=1e-3)

    def test_no_buffers_registered(self):
        layer = GroupNorm(2, 4)
        assert "running_mean" not in layer.state_dict()

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 4, 3, 3))
        analytic, numeric = check_layer_input_gradient(GroupNorm(2, 4), x)
        assert max_relative_error(analytic, numeric) < 1e-4

    def test_parameter_gradients_match_numerical(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 4, 3, 3))
        results = check_layer_parameter_gradients(GroupNorm(2, 4), x)
        for analytic, numeric in results.values():
            assert max_relative_error(analytic, numeric) < 1e-4

    def test_instance_norm_is_per_channel(self):
        rng = np.random.default_rng(3)
        x = rng.normal(loc=-1.0, scale=3.0, size=(2, 3, 6, 6))
        out = InstanceNorm2d(3).forward(x)
        assert np.allclose(out.mean(axis=(2, 3)), 0.0, atol=1e-6)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            GroupNorm(num_groups=3, num_channels=4)
        with pytest.raises(ValueError):
            GroupNorm(num_groups=0, num_channels=4)

    def test_rejects_wrong_shape(self):
        layer = GroupNorm(2, 4)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3, 4, 4)))
