"""Numerical gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    NearestUpsample2d,
    PixelShuffle,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_parameter_gradients,
    max_relative_error,
)

TOLERANCE = 1e-5


def assert_input_gradient(layer, shape, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    analytic, numeric = check_layer_input_gradient(layer, x)
    assert max_relative_error(analytic, numeric) < TOLERANCE


def assert_parameter_gradients(layer, shape, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    results = check_layer_parameter_gradients(layer, x)
    for name, (analytic, numeric) in results.items():
        assert max_relative_error(analytic, numeric) < TOLERANCE, name


class TestConv2d:
    def test_output_shape_same_padding(self):
        conv = Conv2d(3, 5, 9, padding=4, rng=np.random.default_rng(0))
        out = conv(np.zeros((2, 3, 12, 12)))
        assert out.shape == (2, 5, 12, 12)

    def test_output_shape_strided(self):
        conv = Conv2d(3, 4, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        assert conv(np.zeros((1, 3, 8, 8))).shape == (1, 4, 4, 4)

    def test_known_value_identity_kernel(self):
        conv = Conv2d(1, 1, 1, bias=False, rng=np.random.default_rng(0))
        conv.weight.copy_(np.ones((1, 1, 1, 1)) * 2.0)
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        np.testing.assert_allclose(conv(x), 2.0 * x)

    def test_rejects_wrong_channel_count(self):
        conv = Conv2d(3, 4, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(np.zeros((1, 2, 8, 8)))

    def test_backward_before_forward_raises(self):
        conv = Conv2d(1, 1, 3, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 3, 3)))

    def test_input_gradient(self):
        assert_input_gradient(Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(1)), (2, 2, 6, 6))

    def test_input_gradient_strided_dilated(self):
        layer = Conv2d(2, 2, 3, stride=2, padding=2, dilation=2, rng=np.random.default_rng(2))
        assert_input_gradient(layer, (2, 2, 9, 9))

    def test_parameter_gradients(self):
        assert_parameter_gradients(Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(3)), (2, 2, 5, 5))

    def test_no_bias_has_single_parameter(self):
        conv = Conv2d(2, 3, 3, bias=False, rng=np.random.default_rng(0))
        assert [name for name, _ in conv.named_parameters()] == ["weight"]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Conv2d(0, 3, 3)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, stride=0)


class TestConvTranspose2d:
    def test_upsamples_by_stride(self):
        layer = ConvTranspose2d(3, 2, 4, stride=2, padding=1, rng=np.random.default_rng(0))
        assert layer(np.zeros((1, 3, 8, 8))).shape == (1, 2, 16, 16)

    def test_inverse_shape_of_conv(self):
        conv = Conv2d(1, 1, 4, stride=2, padding=1, rng=np.random.default_rng(0))
        deconv = ConvTranspose2d(1, 1, 4, stride=2, padding=1, rng=np.random.default_rng(0))
        x = np.zeros((1, 1, 10, 10))
        assert deconv(conv(x)).shape == x.shape

    def test_input_gradient(self):
        layer = ConvTranspose2d(2, 3, 4, stride=2, padding=1, rng=np.random.default_rng(1))
        assert_input_gradient(layer, (2, 2, 5, 5))

    def test_parameter_gradients(self):
        layer = ConvTranspose2d(2, 2, 3, stride=1, padding=1, rng=np.random.default_rng(2))
        assert_parameter_gradients(layer, (1, 2, 5, 5))

    def test_rejects_output_padding_ge_stride(self):
        with pytest.raises(ValueError):
            ConvTranspose2d(1, 1, 3, stride=1, output_padding=1)


class TestBatchNorm2d:
    def test_training_normalizes_batch(self):
        bn = BatchNorm2d(3)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(8, 3, 6, 6))
        out = bn(x)
        assert abs(out.mean()) < 1e-9
        assert out.std() == pytest.approx(1.0, rel=1e-2)

    def test_running_stats_converge(self):
        bn = BatchNorm2d(2, momentum=0.5)
        rng = np.random.default_rng(0)
        for _ in range(50):
            bn(rng.normal(loc=2.0, scale=1.5, size=(16, 2, 4, 4)))
        assert np.allclose(bn.running_mean, 2.0, atol=0.2)
        assert np.allclose(bn.running_var, 1.5**2, atol=0.5)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        rng = np.random.default_rng(0)
        for _ in range(20):
            bn(rng.normal(size=(8, 2, 4, 4)))
        bn.eval()
        x = rng.normal(size=(4, 2, 4, 4))
        expected = (x - bn.running_mean.reshape(1, -1, 1, 1)) / np.sqrt(
            bn.running_var.reshape(1, -1, 1, 1) + bn.eps
        )
        np.testing.assert_allclose(bn(x), expected, atol=1e-9)

    def test_input_gradient_training(self):
        # BatchNorm input gradients largely cancel within a batch, so the
        # per-element values are tiny; compare with an absolute tolerance
        # instead of the relative criterion used for the other layers.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3, 5, 5))
        analytic, numeric = check_layer_input_gradient(BatchNorm2d(3), x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_parameter_gradients(self):
        assert_parameter_gradients(BatchNorm2d(2), (4, 2, 5, 5))

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(np.zeros((1, 2, 4, 4)))


class TestActivations:
    @pytest.mark.parametrize("layer", [ReLU(), LeakyReLU(0.1), Sigmoid(), Tanh()])
    def test_input_gradients(self, layer):
        assert_input_gradient(layer, (3, 2, 4, 4))

    def test_relu_zeroes_negatives(self):
        out = ReLU()(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_leaky_relu_scales_negatives(self):
        out = LeakyReLU(0.2)(np.array([[-10.0, 5.0]]))
        np.testing.assert_allclose(out, [[-2.0, 5.0]])

    def test_sigmoid_range(self):
        out = Sigmoid()(np.linspace(-100, 100, 11))
        assert np.all((out >= 0) & (out <= 1))


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_gradient(self):
        assert_input_gradient(MaxPool2d(2), (2, 3, 6, 6), seed=5)

    def test_avgpool_gradient(self):
        assert_input_gradient(AvgPool2d(2), (2, 3, 6, 6), seed=6)

    def test_maxpool_routes_gradient_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool = MaxPool2d(2)
        pool(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        # Only the max positions (5, 7, 13, 15) receive gradient.
        expected = np.zeros((4, 4))
        for idx in (5, 7, 13, 15):
            expected[idx // 4, idx % 4] = 1.0
        np.testing.assert_allclose(grad[0, 0], expected)


class TestUpsampling:
    def test_pixel_shuffle_shape(self):
        out = PixelShuffle(2)(np.zeros((1, 8, 3, 3)))
        assert out.shape == (1, 2, 6, 6)

    def test_pixel_shuffle_is_permutation(self):
        x = np.random.default_rng(0).normal(size=(2, 4, 3, 3))
        out = PixelShuffle(2)(x)
        assert sorted(out.ravel()) == pytest.approx(sorted(x.ravel()))

    def test_pixel_shuffle_gradient(self):
        assert_input_gradient(PixelShuffle(2), (1, 4, 3, 3))

    def test_pixel_shuffle_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            PixelShuffle(2)(np.zeros((1, 3, 4, 4)))

    def test_nearest_upsample_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = NearestUpsample2d(2)(x)
        np.testing.assert_allclose(out[0, 0, :2, :2], np.ones((2, 2)))
        assert out.shape == (1, 1, 4, 4)

    def test_nearest_upsample_gradient(self):
        assert_input_gradient(NearestUpsample2d(2), (1, 2, 3, 3))


class TestLinearFlattenDropout:
    def test_linear_matches_manual(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(layer(x), x @ layer.weight.data.T + layer.bias.data)

    def test_linear_gradients(self):
        assert_parameter_gradients(Linear(3, 2, rng=np.random.default_rng(1)), (4, 3))
        assert_input_gradient(Linear(3, 2, rng=np.random.default_rng(2)), (4, 3))

    def test_flatten_round_trip(self):
        flat = Flatten()
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        out = flat(x)
        assert out.shape == (2, 48)
        grad = flat.backward(out)
        assert grad.shape == x.shape

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = np.random.default_rng(1).normal(size=(5, 5))
        np.testing.assert_allclose(drop(x), x)

    def test_dropout_preserves_expectation(self):
        drop = Dropout(0.3, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = drop(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
