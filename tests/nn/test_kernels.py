"""Parity suite for the fused/compiled convolution kernels.

The compute-saturation engine (``repro.nn.kernels``) promises that the
fused col2im scatter and the single-image weight-gradient GEMM collapse are
**bit-identical** to the reference paths — float64 exactly, and float32
exactly too (the fusions never reassociate an IEEE operation, they only
skip buffer traffic).  This suite pins that promise across seeded random
geometries (stride/padding/dilation/odd shapes), both dtypes, the flag
round-trips, the stacked pre-PR-5 reproduction, and a numerical gradcheck
through the fused path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    ConvTranspose2d,
    check_layer_input_gradient,
    check_layer_parameter_gradients,
    compiled_kernels_disabled,
    compiled_kernels_enabled,
    kernel_backend,
    max_relative_error,
    workspaces_disabled,
)
from repro.nn.functional import col2im, conv_output_size
from repro.nn.kernels import fused_col2im, grad_weight_gemm


def random_geometries(seed: int, count: int):
    """Seeded random (n, c, h, w, kh, kw, stride, padding, dilation) tuples."""
    rng = np.random.default_rng(seed)
    produced = 0
    while produced < count:
        kh, kw = (int(v) for v in rng.integers(1, 6, 2))
        stride = int(rng.integers(1, 4))
        padding = int(rng.integers(0, 4))
        dilation = int(rng.integers(1, 3))
        h = int(rng.integers(1, 17))
        w = int(rng.integers(1, 17))
        n = int(rng.integers(1, 4))
        c = int(rng.integers(1, 4))
        try:
            conv_output_size(h, kh, stride, padding, dilation)
            conv_output_size(w, kw, stride, padding, dilation)
        except ValueError:
            continue  # geometry produces an empty output; not a valid conv
        produced += 1
        yield n, c, h, w, kh, kw, stride, padding, dilation


class TestFusedCol2im:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_bit_identical_to_reference_across_geometries(self, dtype):
        rng = np.random.default_rng(7)
        for n, c, h, w, kh, kw, stride, padding, dilation in random_geometries(11, 40):
            out_h = conv_output_size(h, kh, stride, padding, dilation)
            out_w = conv_output_size(w, kw, stride, padding, dilation)
            cols = rng.standard_normal((n, c * kh * kw, out_h * out_w)).astype(dtype)
            fused = col2im(cols, (n, c, h, w), kh, kw, stride, padding, dilation)
            with compiled_kernels_disabled():
                reference = col2im(cols, (n, c, h, w), kh, kw, stride, padding, dilation)
            assert fused.dtype == reference.dtype == dtype
            # Bit-identity, not allclose: the fusion must not change a
            # single IEEE operation.
            assert np.array_equal(fused, reference, equal_nan=True), (
                n, c, h, w, kh, kw, stride, padding, dilation, dtype,
            )

    def test_float64_matches_pre_pr5_bincount_path(self):
        # compiled_kernels_disabled() + workspaces_disabled() is the pre-PR-5
        # engine (float64 bincount scatter); the fused default must still
        # reproduce it bit for bit in float64.
        rng = np.random.default_rng(13)
        for n, c, h, w, kh, kw, stride, padding, dilation in random_geometries(17, 15):
            out_h = conv_output_size(h, kh, stride, padding, dilation)
            out_w = conv_output_size(w, kw, stride, padding, dilation)
            cols = rng.standard_normal((n, c * kh * kw, out_h * out_w))
            fused = col2im(cols, (n, c, h, w), kh, kw, stride, padding, dilation)
            with compiled_kernels_disabled(), workspaces_disabled():
                historical = col2im(cols, (n, c, h, w), kh, kw, stride, padding, dilation)
            assert np.array_equal(fused, historical)

    def test_direct_kernel_matches_col2im_dispatch(self):
        # fused_col2im is also callable directly (ConvTranspose2d forward
        # uses the same dispatch); pin the raw kernel too.
        rng = np.random.default_rng(3)
        n, c, h, w, kh, kw, stride, padding, dilation = 2, 3, 9, 7, 3, 5, 2, 3, 1
        out_h = conv_output_size(h, kh, stride, padding, dilation)
        out_w = conv_output_size(w, kw, stride, padding, dilation)
        cols = rng.standard_normal((n, c * kh * kw, out_h * out_w))
        direct = fused_col2im(cols, (n, c, h, w), kh, kw, out_h, out_w, stride, padding, dilation)
        via_dispatch = col2im(cols, (n, c, h, w), kh, kw, stride, padding, dilation)
        assert np.array_equal(direct, via_dispatch)

    def test_zero_padding_geometry(self):
        # padding=0 means no tap is ever clipped; the fused path must still
        # agree exactly.
        rng = np.random.default_rng(5)
        n, c, h, w, kh, kw = 2, 2, 8, 8, 3, 3
        out_h = conv_output_size(h, kh, 1, 0, 1)
        cols = rng.standard_normal((n, c * kh * kw, out_h * out_h))
        fused = col2im(cols, (n, c, h, w), kh, kw, 1, 0, 1)
        with compiled_kernels_disabled():
            reference = col2im(cols, (n, c, h, w), kh, kw, 1, 0, 1)
        assert np.array_equal(fused, reference)


class TestGradWeightGemm:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_single_image_collapse_is_bit_identical(self, dtype):
        rng = np.random.default_rng(23)
        for out_channels, ck, length in ((4, 18, 25), (1, 1, 1), (7, 150, 196)):
            grad_flat = rng.standard_normal((1, out_channels, length)).astype(dtype)
            cols = rng.standard_normal((1, ck, length)).astype(dtype)
            collapsed = grad_weight_gemm(grad_flat, cols)
            with compiled_kernels_disabled():
                reference = grad_weight_gemm(grad_flat, cols)
            assert collapsed.shape == (out_channels, ck)
            assert np.array_equal(collapsed, reference)

    def test_staged_variant_matches_unstaged(self):
        rng = np.random.default_rng(29)
        for n in (1, 3):
            grad_flat = rng.standard_normal((n, 4, 10))
            cols = rng.standard_normal((n, 6, 10))
            stage = np.empty((n, 4, 6))
            staged = grad_weight_gemm(grad_flat, cols, stage=stage)
            unstaged = grad_weight_gemm(grad_flat, cols)
            assert np.array_equal(np.asarray(staged), unstaged)

    def test_multi_image_batches_keep_reference_form(self):
        # Batches larger than one must not be collapsed (that would
        # reassociate the per-image partial sums); enabled and disabled
        # paths are literally the same computation.
        rng = np.random.default_rng(31)
        grad_flat = rng.standard_normal((4, 5, 12))
        cols = rng.standard_normal((4, 9, 12))
        enabled = grad_weight_gemm(grad_flat, cols)
        with compiled_kernels_disabled():
            disabled = grad_weight_gemm(grad_flat, cols)
        assert np.array_equal(enabled, disabled)


class TestLayerParity:
    @pytest.mark.parametrize("dtype_name", ["float64", "float32"])
    @pytest.mark.parametrize("batch", [1, 2])
    def test_conv2d_full_step_bit_identity(self, dtype_name, batch):
        fused = Conv2d(3, 5, 3, stride=1, padding=2, dilation=2, rng=np.random.default_rng(41))
        reference = Conv2d(3, 5, 3, stride=1, padding=2, dilation=2, rng=np.random.default_rng(41))
        if dtype_name == "float32":
            fused.set_compute_dtype(np.float32)
            reference.set_compute_dtype(np.float32)
        x = np.random.default_rng(43).standard_normal((batch, 3, 11, 11))
        grad = np.random.default_rng(44).standard_normal(fused(x).shape)
        grad_in_fused = fused.backward(grad)
        with compiled_kernels_disabled():
            reference(x)
            grad_in_reference = reference.backward(grad)
        assert np.array_equal(grad_in_fused, grad_in_reference)
        assert np.array_equal(fused.weight.grad, reference.weight.grad)
        assert np.array_equal(fused.bias.grad, reference.bias.grad)

    @pytest.mark.parametrize("batch", [1, 3])
    def test_conv_transpose2d_full_step_bit_identity(self, batch):
        fused = ConvTranspose2d(4, 2, 4, stride=2, padding=1, rng=np.random.default_rng(47))
        reference = ConvTranspose2d(4, 2, 4, stride=2, padding=1, rng=np.random.default_rng(47))
        x = np.random.default_rng(48).standard_normal((batch, 4, 6, 6))
        grad = np.random.default_rng(49).standard_normal(fused(x).shape)
        grad_in_fused = fused.backward(grad)
        with compiled_kernels_disabled():
            reference(x)
            grad_in_reference = reference.backward(grad)
        assert np.array_equal(grad_in_fused, grad_in_reference)
        assert np.array_equal(fused.weight.grad, reference.weight.grad)
        assert np.array_equal(fused.bias.grad, reference.bias.grad)

    def test_gradcheck_through_fused_path(self):
        # The fused backward must agree with numerical differentiation, not
        # just with the reference implementation.  batch=1 also drives the
        # grad_weight GEMM collapse through the numerical check.
        assert compiled_kernels_enabled()
        layer = Conv2d(2, 3, 3, stride=2, padding=1, rng=np.random.default_rng(53))
        x = np.random.default_rng(54).standard_normal((1, 2, 7, 7))
        analytic, numeric = check_layer_input_gradient(layer, x)
        assert max_relative_error(analytic, numeric) < 1e-6
        for name, (analytic, numeric) in check_layer_parameter_gradients(layer, x).items():
            assert max_relative_error(analytic, numeric) < 1e-6, name


class TestFlags:
    def test_flag_round_trip(self):
        assert compiled_kernels_enabled()
        with compiled_kernels_disabled():
            assert not compiled_kernels_enabled()
            with compiled_kernels_disabled():
                assert not compiled_kernels_enabled()
            assert not compiled_kernels_enabled()
        assert compiled_kernels_enabled()

    def test_flag_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with compiled_kernels_disabled():
                raise RuntimeError("boom")
        assert compiled_kernels_enabled()

    def test_kernel_backend_reports_available_engine(self):
        # numba is optional; whichever engine is active, the report must be
        # one of the two known backends and honor the disable flag.
        assert kernel_backend() in ("numba", "numpy")
        with compiled_kernels_disabled():
            assert kernel_backend() == "numpy"
