"""Tests for the compute-dtype contract and the persistent layer workspaces.

Two guarantees are pinned here:

* ``float64`` (the default) is the historical engine: switching workspaces
  off must not change a single bit, and every layer/loss still produces
  float64 everywhere.
* ``float32`` is a *local* fast path: layer outputs and gradients track the
  prediction dtype within float32 tolerance of the float64 results, while
  everything at the state boundary (``state_dict``, ``flat_model_state``)
  stays float64.
"""

import pickle

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    GroupNorm,
    Linear,
    MaxPool2d,
    MSELoss,
    Workspace,
    make_loss,
    resolve_compute_dtype,
    workspaces_disabled,
    workspaces_enabled,
)
from repro.nn import functional as F
from repro.models import FLNet
from repro.models.routenet import RouteNet


def rng(seed=0):
    return np.random.default_rng(seed)


class TestResolveComputeDtype:
    def test_accepts_names_dtypes_and_none(self):
        assert resolve_compute_dtype(None) == np.float64
        assert resolve_compute_dtype("float64") == np.float64
        assert resolve_compute_dtype("float32") == np.float32
        assert resolve_compute_dtype(np.float32) == np.float32

    def test_rejects_everything_else(self):
        for bad in ("float16", "int64", np.int32, "bfloat16"):
            with pytest.raises(ValueError):
                resolve_compute_dtype(bad)


class TestSetComputeDtype:
    def test_casts_parameters_gradients_and_buffers(self):
        layer = BatchNorm2d(3)
        layer.set_compute_dtype("float32")
        assert layer.compute_dtype == np.float32
        assert layer.weight.data.dtype == np.float32
        assert layer.weight.grad.dtype == np.float32
        assert layer.running_mean.dtype == np.float32
        assert layer._buffers["running_var"].dtype == np.float32

    def test_recursive_and_idempotent(self):
        model = FLNet(3, seed=0)
        model.set_compute_dtype("float32")
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        before = [p.data for p in model.parameters()]
        model.set_compute_dtype("float32")  # no-op: same arrays, no recast
        assert all(a is b for a, b in zip(before, [p.data for p in model.parameters()]))
        model.set_compute_dtype("float64")
        assert all(p.data.dtype == np.float64 for p in model.parameters())

    def test_state_dict_always_float64(self):
        model = FLNet(3, seed=1).set_compute_dtype("float32")
        state = model.state_dict()
        assert all(value.dtype == np.float64 for value in state.values())

    def test_load_state_dict_casts_down_once(self):
        model = FLNet(3, seed=2).set_compute_dtype("float32")
        state = {name: value + 1.0 for name, value in model.state_dict().items()}
        model.load_state_dict(state)
        assert model.input_conv.weight.data.dtype == np.float32
        np.testing.assert_allclose(
            model.input_conv.weight.data,
            state["input_conv.weight"].astype(np.float32),
            rtol=0,
            atol=0,
        )

    def test_buffer_updates_stay_in_compute_dtype(self):
        layer = BatchNorm2d(2).set_compute_dtype("float32")
        layer.forward(rng().normal(size=(4, 2, 6, 6)).astype(np.float32))
        assert layer.running_mean.dtype == np.float32
        assert layer.running_var.dtype == np.float32


@pytest.mark.parametrize(
    "make_layer",
    [
        lambda: Conv2d(3, 8, 3, padding=1, rng=rng(1)),
        lambda: ConvTranspose2d(3, 5, 4, stride=2, padding=1, rng=rng(2)),
        lambda: Linear(12, 7, rng=rng(3)),
        lambda: BatchNorm2d(3),
        lambda: GroupNorm(1, 3),
        lambda: MaxPool2d(2),
    ],
    ids=["conv", "convtranspose", "linear", "batchnorm", "groupnorm", "maxpool"],
)
class TestLayerDtypeParity:
    def _io(self, make_layer, dtype):
        layer = make_layer().set_compute_dtype(dtype)
        if isinstance(layer, Linear):
            x = rng(7).normal(size=(4, 12))
        else:
            x = rng(7).normal(size=(4, 3, 8, 8))
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        return out, grad_in

    def test_float32_outputs_are_float32(self, make_layer):
        out, grad_in = self._io(make_layer, "float32")
        assert out.dtype == np.float32
        assert grad_in.dtype == np.float32

    def test_float32_tracks_float64(self, make_layer):
        out64, grad64 = self._io(make_layer, "float64")
        out32, grad32 = self._io(make_layer, "float32")
        np.testing.assert_allclose(out32, out64, rtol=2e-5, atol=2e-5)
        np.testing.assert_allclose(grad32, grad64, rtol=2e-5, atol=2e-5)


class TestWorkspaceParity:
    """Workspaces must never change float64 values beyond kernel-level ulps."""

    def test_conv_forward_backward_bit_identical(self):
        x = rng(4).normal(size=(3, 3, 10, 10))
        grad = rng(5).normal(size=(3, 6, 10, 10))
        on = Conv2d(3, 6, 5, padding=2, rng=rng(6))
        off = Conv2d(3, 6, 5, padding=2, rng=rng(6))
        out_on = on.forward(x)
        grad_on = on.backward(grad)
        with workspaces_disabled():
            out_off = off.forward(x)
            grad_off = off.backward(grad)
        np.testing.assert_array_equal(out_on, out_off)
        np.testing.assert_array_equal(grad_on, grad_off)
        np.testing.assert_array_equal(on.weight.grad, off.weight.grad)

    def test_col2im_taps_match_bincount_bitwise(self):
        cases = [
            (2, 3, 8, 8, 3, 3, 1, 1, 1),
            (4, 4, 12, 12, 9, 9, 1, 4, 1),
            (3, 5, 11, 13, 3, 5, 2, 1, 1),
            (2, 4, 12, 12, 3, 3, 1, 2, 2),
            (2, 2, 6, 6, 2, 2, 2, 0, 1),
        ]
        for n, c, h, w, kh, kw, stride, padding, dilation in cases:
            out_h = F.conv_output_size(h, kh, stride, padding, dilation)
            out_w = F.conv_output_size(w, kw, stride, padding, dilation)
            cols = rng(n + c).normal(size=(n, c * kh * kw, out_h * out_w))
            engine = F.col2im(cols, (n, c, h, w), kh, kw, stride, padding, dilation)
            with workspaces_disabled():
                reference = F.col2im(cols, (n, c, h, w), kh, kw, stride, padding, dilation)
            np.testing.assert_array_equal(engine, reference)

    def test_im2col_out_path_bit_identical(self):
        x = rng(8).normal(size=(2, 4, 9, 9))
        reference = F.im2col(x, 3, 3, stride=2, padding=1)
        out = np.empty_like(reference)
        result = F.im2col(x, 3, 3, stride=2, padding=1, out=out)
        assert result is out
        np.testing.assert_array_equal(result, reference)

    def test_mse_loss_workspace_bit_identical(self):
        prediction = rng(9).normal(size=(4, 1, 8, 8))
        target = rng(10).normal(size=(4, 1, 8, 8))
        warm = MSELoss()
        warm.forward(prediction, target)  # allocate workspace
        value_on = warm.forward(prediction, target)
        grad_on = warm.backward()
        cold = MSELoss()
        with workspaces_disabled():
            value_off = cold.forward(prediction, target)
            grad_off = cold.backward()
        assert value_on == value_off
        np.testing.assert_array_equal(grad_on, grad_off)

    def test_layer_outputs_never_alias_scratch(self):
        # Returned arrays must stay valid across later forward calls
        # (predict_dataset collects outputs batch by batch).
        conv = Conv2d(2, 3, 3, padding=1, rng=rng(11))
        first = conv.forward(rng(12).normal(size=(2, 2, 6, 6)))
        kept = first.copy()
        conv.forward(rng(13).normal(size=(2, 2, 6, 6)))
        np.testing.assert_array_equal(first, kept)


class TestWorkspaceObject:
    def test_get_reuses_and_keys_by_shape_dtype(self):
        ws = Workspace()
        a = ws.get("x", (3, 4), np.float64)
        assert ws.get("x", (3, 4), np.float64) is a
        assert ws.get("x", (3, 4), np.float32) is not a
        assert ws.get("x", (4, 3), np.float64) is not a
        assert len(ws) == 3

    def test_zeros_prefills_once(self):
        ws = Workspace()
        buf = ws.zeros("pad", (4,))
        np.testing.assert_array_equal(buf, np.zeros(4))
        buf[:] = 7.0
        assert ws.zeros("pad", (4,)) is buf  # not re-zeroed: border contract

    def test_disabled_returns_none(self):
        ws = Workspace()
        with workspaces_disabled():
            assert not workspaces_enabled()
            assert ws.get("x", (2,)) is None
            assert ws.zeros("x", (2,)) is None
        assert workspaces_enabled()

    def test_pickles_empty(self):
        ws = Workspace()
        ws.get("big", (64, 64))
        clone = pickle.loads(pickle.dumps(ws))
        assert len(clone) == 0
        assert clone.get("fresh", (2, 2)) is not None

    def test_model_pickle_drops_scratch(self):
        model = FLNet(3, seed=3)
        model.forward(rng(14).normal(size=(2, 3, 8, 8)))
        assert len(model.input_conv._ws) > 0
        clone = pickle.loads(pickle.dumps(model))
        assert len(clone.input_conv._ws) == 0
        np.testing.assert_array_equal(
            clone.input_conv.weight.data, model.input_conv.weight.data
        )


class TestFloat32ModelParity:
    @pytest.mark.parametrize("build", [lambda s: FLNet(4, seed=s), lambda s: RouteNet(4, seed=s)], ids=["flnet", "routenet"])
    def test_forward_tracks_float64(self, build):
        x = rng(20).normal(size=(2, 4, 16, 16))
        out64 = build(5).forward(x)
        out32 = build(5).set_compute_dtype("float32").forward(x)
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, out64, rtol=5e-4, atol=5e-4)

    def test_optimizer_state_follows_param_dtype(self):
        model = FLNet(3, seed=6).set_compute_dtype("float32")
        optimizer = Adam(model.parameters(), lr=1e-3)
        out = model.forward(rng(21).normal(size=(2, 3, 8, 8)))
        loss = make_loss("mse")
        loss.forward(out, np.zeros_like(out))
        model.backward(loss.backward())
        optimizer.step()
        assert all(m.dtype == np.float32 for m in optimizer._first_moment.values())
        assert all(v.dtype == np.float32 for v in optimizer._second_moment.values())
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_dropout_mask_consumes_same_rng_stream(self):
        d64 = Dropout(0.4, rng=np.random.default_rng(3))
        d32 = Dropout(0.4, rng=np.random.default_rng(3)).set_compute_dtype("float32")
        x = rng(22).normal(size=(64, 16))
        out64 = d64.forward(x)
        out32 = d32.forward(x.astype(np.float32))
        assert out32.dtype == np.float32
        # Identical draws => identical zero pattern.
        np.testing.assert_array_equal(out64 == 0.0, out32 == 0.0)
