"""Tests for Module registration, state dicts, and containers."""

import numpy as np
import pytest

from repro.nn import Conv2d, Identity, Linear, Module, Parameter, ReLU, Sequential
from repro.nn.layers import BatchNorm2d


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad):
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))


class TestRegistration:
    def test_parameters_are_discovered(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_register_buffer_appears_in_state_dict(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_explicit_register_parameter(self):
        module = Module()
        param = module.register_parameter("p", Parameter(np.zeros(3)))
        assert module.parameters() == [param]


class TestStateDict:
    def test_round_trip(self):
        net = TinyNet()
        other = TinyNet()
        other.load_state_dict(net.state_dict())
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][:] = 999.0
        assert not np.any(net.fc1.weight.data == 999.0)

    def test_strict_load_rejects_missing_keys(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc2.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_strict_load_rejects_unexpected_keys(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_non_strict_load_ignores_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc2.bias"]
        state["bogus"] = np.zeros(1)
        net.load_state_dict(state, strict=False)

    def test_buffer_round_trip(self):
        bn = BatchNorm2d(2)
        bn.forward(np.random.default_rng(0).normal(size=(4, 2, 3, 3)))
        other = BatchNorm2d(2)
        other.load_state_dict(bn.state_dict())
        np.testing.assert_allclose(other.running_mean, bn.running_mean)
        np.testing.assert_allclose(other.running_var, bn.running_var)


class TestTrainEval:
    def test_train_eval_propagates_to_children(self):
        seq = Sequential(BatchNorm2d(2), ReLU())
        seq.eval()
        assert not seq[0].training and not seq[1].training
        seq.train()
        assert seq[0].training and seq[1].training

    def test_zero_grad_resets_all(self):
        net = TinyNet()
        x = np.random.default_rng(0).normal(size=(3, 4))
        out = net(x)
        net.backward(np.ones_like(out))
        assert any(np.any(p.grad != 0) for p in net.parameters())
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())


class TestSequential:
    def test_forward_matches_manual_chain(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        relu = ReLU()
        seq = Sequential(conv, relu)
        x = rng.normal(size=(1, 2, 5, 5))
        np.testing.assert_allclose(seq(x), relu(conv(x)))

    def test_len_and_getitem(self):
        seq = Sequential(ReLU(), Identity())
        assert len(seq) == 2
        assert isinstance(seq[1], Identity)

    def test_append(self):
        seq = Sequential(ReLU())
        seq.append(Identity())
        assert len(seq) == 2

    def test_backward_reverses_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        out = seq(x)
        grad_in = seq.backward(np.ones_like(out))
        assert grad_in.shape == x.shape


class TestParameter:
    def test_copy_checks_shape(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            param.copy_(np.zeros(3))

    def test_clone_is_independent(self):
        param = Parameter(np.ones(3))
        cloned = param.clone()
        cloned[:] = 5.0
        np.testing.assert_allclose(param.data, np.ones(3))
