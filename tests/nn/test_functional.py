"""Tests for im2col / col2im and numerically stable activations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputSize:
    def test_same_padding_preserves_size(self):
        assert F.conv_output_size(32, 9, stride=1, padding=4) == 32

    def test_stride_two_halves_size(self):
        assert F.conv_output_size(32, 4, stride=2, padding=1) == 16

    def test_dilation_expands_kernel(self):
        # Effective kernel = 2*(3-1)+1 = 5.
        assert F.conv_output_size(10, 3, stride=1, padding=0, dilation=2) == 6

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(3, 9, stride=1, padding=0)

    def test_transpose_inverts_stride_two(self):
        out = F.conv_transpose_output_size(16, 4, stride=2, padding=1)
        assert out == 32

    def test_transpose_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_transpose_output_size(1, 1, stride=1, padding=3)


class TestIm2Col:
    def test_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        cols = F.im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 25)

    def test_identity_kernel_1x1(self):
        x = np.random.default_rng(0).normal(size=(1, 2, 4, 4))
        cols = F.im2col(x, 1, 1)
        np.testing.assert_allclose(cols.reshape(1, 2, 4, 4), x)

    def test_known_patch_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = F.im2col(x, 2, 2, stride=2)
        # First patch is the top-left 2x2 block.
        np.testing.assert_allclose(cols[0, :, 0], [0, 1, 4, 5])
        # Last patch is the bottom-right 2x2 block.
        np.testing.assert_allclose(cols[0, :, -1], [10, 11, 14, 15])

    def test_dilation_picks_spread_values(self):
        x = np.arange(25, dtype=float).reshape(1, 1, 5, 5)
        cols = F.im2col(x, 3, 3, dilation=2)
        # Single output position, samples every other element.
        assert cols.shape == (1, 9, 1)
        np.testing.assert_allclose(cols[0, :, 0], [0, 2, 4, 10, 12, 14, 20, 22, 24])

    def test_col2im_shape_mismatch_raises(self):
        cols = np.zeros((1, 9, 5))  # 4x4 input with a 3x3 kernel yields 4 positions, not 5
        with pytest.raises(ValueError):
            F.col2im(cols, (1, 1, 4, 4), 3, 3, stride=1, padding=0)


class TestCol2ImAdjoint:
    @pytest.mark.parametrize(
        "shape,kernel,stride,padding,dilation",
        [
            ((2, 3, 8, 8), 3, 1, 1, 1),
            ((1, 2, 9, 7), 3, 2, 1, 1),
            ((2, 1, 10, 10), 3, 1, 2, 2),
            ((1, 4, 6, 6), 5, 1, 2, 1),
        ],
    )
    def test_adjoint_identity(self, shape, kernel, stride, padding, dilation):
        """<im2col(x), c> == <x, col2im(c)> for random x and c (adjointness)."""
        rng = np.random.default_rng(42)
        x = rng.normal(size=shape)
        cols = F.im2col(x, kernel, kernel, stride, padding, dilation)
        c = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * c))
        x_back = F.col2im(c, shape, kernel, kernel, stride, padding, dilation)
        rhs = float(np.sum(x * x_back))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_counts_overlaps(self):
        x = np.ones((1, 1, 4, 4))
        cols = F.im2col(x, 3, 3, stride=1, padding=1)
        back = F.col2im(np.ones_like(cols), x.shape, 3, 3, stride=1, padding=1)
        # Interior pixels are covered by 9 patches, corners by 4.
        assert back[0, 0, 1, 1] == pytest.approx(9.0)
        assert back[0, 0, 0, 0] == pytest.approx(4.0)


class TestGatherIndexCaching:
    """The im2col/col2im index arrays are memoized per geometry key."""

    def test_repeated_calls_hit_the_cache(self):
        from repro.nn.workspace import workspaces_disabled

        F._im2col_indices.cache_clear()
        F._col2im_flat_index.cache_clear()
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        first = F.im2col(x, 3, 3, stride=1, padding=1)
        second = F.im2col(x, 3, 3, stride=1, padding=1)
        np.testing.assert_array_equal(first, second)
        info = F._im2col_indices.cache_info()
        assert info.hits >= 1 and info.misses == 1
        cols = np.random.default_rng(1).normal(size=first.shape)
        # The bincount reference path (workspaces disabled) memoizes the
        # flattened scatter index; the tap-accumulation engine path must
        # reproduce it bit for bit.
        with workspaces_disabled():
            reference = F.col2im(cols, x.shape, 3, 3, stride=1, padding=1)
            F.col2im(cols, x.shape, 3, 3, stride=1, padding=1)
        flat_info = F._col2im_flat_index.cache_info()
        assert flat_info.hits >= 1 and flat_info.misses == 1
        engine = F.col2im(cols, x.shape, 3, 3, stride=1, padding=1)
        np.testing.assert_array_equal(engine, reference)

    def test_cached_indices_are_read_only(self):
        for index in F._im2col_indices(2, 3, 3, 4, 4, 1, 1):
            assert not index.flags.writeable
        assert not F._col2im_flat_index(2, 3, 3, 4, 4, 1, 1, 6, 6).flags.writeable

    def test_distinct_geometries_get_distinct_entries(self):
        small = F._im2col_indices(1, 3, 3, 4, 4, 1, 1)
        large = F._im2col_indices(1, 3, 3, 6, 6, 1, 1)
        assert small[1].shape != large[1].shape


class TestActivations:
    def test_sigmoid_symmetry(self):
        x = np.linspace(-20, 20, 101)
        np.testing.assert_allclose(F.sigmoid(x) + F.sigmoid(-x), np.ones_like(x), atol=1e-12)

    def test_sigmoid_extremes_do_not_overflow(self):
        values = F.sigmoid(np.array([-1e4, 1e4]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)

    def test_log_sigmoid_matches_log_of_sigmoid(self):
        x = np.linspace(-30, 30, 61)
        np.testing.assert_allclose(F.log_sigmoid(x), np.log(F.sigmoid(x) + 1e-300), atol=1e-9)

    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 7)) * 50
        probs = F.softmax(x, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-12)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_monotone(self, values):
        x = np.sort(np.array(values))
        y = F.sigmoid(x)
        assert np.all(np.diff(y) >= -1e-15)

    @given(st.floats(-30, 30))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_in_unit_interval(self, value):
        y = float(F.sigmoid(np.array([value]))[0])
        assert 0.0 <= y <= 1.0
