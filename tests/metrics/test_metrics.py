"""Tests for ROC AUC and threshold classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from repro.metrics.roc import auc_from_curve


class TestRocAuc:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(labels, scores) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(labels, scores) == pytest.approx(0.0)

    def test_random_constant_scores_give_half(self):
        labels = np.array([0, 1, 0, 1, 1, 0])
        scores = np.zeros(6)
        assert roc_auc_score(labels, scores) == pytest.approx(0.5)

    def test_known_mixed_case(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.3, 0.1])
        # Pairs: (0.9>0.8), (0.9>0.1), (0.3<0.8), (0.3>0.1) -> 3/4 correct.
        assert roc_auc_score(labels, scores) == pytest.approx(0.75)

    def test_matches_trapezoidal_curve_area(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(200) > 0.7).astype(float)
        scores = rng.normal(size=200) + labels
        fpr, tpr, _ = roc_curve(labels, scores)
        assert roc_auc_score(labels, scores) == pytest.approx(auc_from_curve(fpr, tpr), abs=1e-9)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(5), np.arange(5))

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([0, 1, 2]), np.arange(3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([0, 1]), np.arange(3))

    def test_accepts_2d_maps(self):
        labels = np.array([[0, 1], [1, 0]])
        scores = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert roc_auc_score(labels, scores) == pytest.approx(1.0)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_invariant_under_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=30)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=30)
        base = roc_auc_score(labels, scores)
        transformed = roc_auc_score(labels, np.exp(scores * 0.5) + 3.0)
        assert base == pytest.approx(transformed, abs=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_complement_symmetry(self, seed):
        """AUC(labels, scores) + AUC(labels, -scores) == 1."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=40)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=40)
        assert roc_auc_score(labels, scores) + roc_auc_score(labels, -scores) == pytest.approx(1.0)


class TestRocCurve:
    def test_endpoints(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.2, 0.7, 0.4, 0.9])
        fpr, tpr, thresholds = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_monotone_non_decreasing(self):
        rng = np.random.default_rng(1)
        labels = (rng.random(100) > 0.6).astype(float)
        scores = rng.normal(size=100)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)


class TestConfusionMetrics:
    def test_confusion_matrix_layout(self):
        labels = np.array([0, 0, 1, 1, 1])
        predictions = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(labels, predictions)
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 2]])

    def test_accuracy(self):
        labels = np.array([0, 0, 1, 1])
        predictions = np.array([0, 1, 1, 1])
        assert accuracy_score(labels, predictions) == pytest.approx(0.75)

    def test_precision_recall_f1(self):
        labels = np.array([1, 1, 0, 0, 1])
        predictions = np.array([1, 0, 1, 0, 1])
        assert precision_score(labels, predictions) == pytest.approx(2 / 3)
        assert recall_score(labels, predictions) == pytest.approx(2 / 3)
        assert f1_score(labels, predictions) == pytest.approx(2 / 3)

    def test_zero_division_cases(self):
        labels = np.array([1, 1, 0])
        predictions = np.zeros(3, dtype=int)
        assert precision_score(labels, predictions) == 0.0
        assert f1_score(labels, predictions) == 0.0

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 2]), np.array([0, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0, 1, 1]))
