"""Tests for the cluster-aware placer."""

import numpy as np
import pytest

from repro.eda.benchmarks import generate_design
from repro.eda.placement import Placement, PlacementConfig, Placer, sweep_placements


@pytest.fixture(scope="module")
def design():
    return generate_design("iscas89", "placer_design", seed=21, cell_count=350)


@pytest.fixture(scope="module")
def macro_design():
    return generate_design("ispd15", "placer_macro_design", seed=22, cell_count=1900)


class TestPlacementConfig:
    def test_defaults_valid(self):
        PlacementConfig()

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            PlacementConfig(utilization=1.5)
        with pytest.raises(ValueError):
            PlacementConfig(utilization=0.01)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            PlacementConfig(grid_width=0)


class TestPlacer:
    def test_all_cells_inside_die(self, design):
        placement = Placer().place(design, PlacementConfig(seed=1))
        upper = placement.positions_um + placement.sizes_um
        assert np.all(placement.positions_um >= -1e-9)
        assert np.all(upper[:, 0] <= placement.die_width_um + 1e-6)
        assert np.all(upper[:, 1] <= placement.die_height_um + 1e-6)

    def test_utilization_close_to_target(self, design):
        config = PlacementConfig(utilization=0.7, seed=2)
        placement = Placer().place(design, config)
        assert placement.utilization_achieved() == pytest.approx(0.7, rel=0.05)

    def test_aspect_ratio_respected(self, design):
        config = PlacementConfig(aspect_ratio=2.0, seed=3)
        placement = Placer().place(design, config)
        assert placement.die_width_um / placement.die_height_um == pytest.approx(2.0, rel=1e-6)

    def test_deterministic_given_seed(self, design):
        config = PlacementConfig(seed=4)
        a = Placer().place(design, config)
        b = Placer().place(design, config)
        np.testing.assert_allclose(a.positions_um, b.positions_um)

    def test_different_seeds_move_cells(self, design):
        a = Placer().place(design, PlacementConfig(seed=5))
        b = Placer().place(design, PlacementConfig(seed=6))
        assert not np.allclose(a.positions_um, b.positions_um)

    def test_macros_are_placed(self, macro_design):
        placement = Placer().place(macro_design, PlacementConfig(utilization=0.55, seed=7))
        assert placement.is_macro.sum() == macro_design.netlist.num_macros
        macro_positions = placement.positions_um[placement.is_macro]
        assert np.all(np.isfinite(macro_positions))

    def test_grid_and_bin_geometry(self, design):
        config = PlacementConfig(grid_width=20, grid_height=10, seed=1)
        placement = Placer().place(design, config)
        assert placement.grid_shape == (10, 20)
        assert placement.bin_width_um * 20 == pytest.approx(placement.die_width_um)
        assert placement.bin_height_um * 10 == pytest.approx(placement.die_height_um)

    def test_cell_lookup(self, design):
        placement = Placer().place(design, PlacementConfig(seed=1))
        name = placement.cell_names[0]
        index = placement.cell_index(name)
        assert index == 0
        cx, cy = placement.cell_center_um(name)
        assert 0 <= cx <= placement.die_width_um
        assert 0 <= cy <= placement.die_height_um


class TestSweepPlacements:
    def test_count_and_variety(self, design):
        placements = sweep_placements(design, count=4, grid_width=16, grid_height=16, base_seed=0)
        assert len(placements) == 4
        utilizations = {round(p.config.utilization, 4) for p in placements}
        assert len(utilizations) > 1

    def test_utilization_within_suite_range(self, design):
        placements = sweep_placements(design, count=5, base_seed=1)
        lo, hi = design.style.utilization_range
        for placement in placements:
            assert lo <= placement.config.utilization <= hi

    def test_deterministic(self, design):
        a = sweep_placements(design, count=2, base_seed=3)
        b = sweep_placements(design, count=2, base_seed=3)
        np.testing.assert_allclose(a[0].positions_um, b[0].positions_um)
        assert a[1].config.seed == b[1].config.seed

    def test_invalid_count(self, design):
        with pytest.raises(ValueError):
            sweep_placements(design, count=0)
