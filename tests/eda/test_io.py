"""Round-trip tests for the netlist / placement interchange formats."""

import numpy as np
import pytest

from repro.eda.benchmarks import generate_design
from repro.eda.io import (
    DEF_UNITS_PER_MICRON,
    apply_positions,
    read_bookshelf_pl,
    read_design,
    read_netlist_verilog,
    read_placement_def,
    write_bookshelf_pl,
    write_design,
    write_netlist_verilog,
    write_placement_def,
)
from repro.eda.placement import PlacementConfig, Placer


class TestNetlistVerilogRoundTrip:
    def test_cells_and_nets_preserved(self, small_design, tmp_path):
        path = write_netlist_verilog(small_design.netlist, tmp_path / "design.v", suite=small_design.suite)
        netlist, suite, _ = read_netlist_verilog(path)
        original = small_design.netlist
        assert suite == small_design.suite
        assert netlist.name == original.name
        assert set(netlist.cells) == set(original.cells)
        assert set(netlist.nets) == set(original.nets)

    def test_cell_attributes_preserved(self, small_design, tmp_path):
        path = write_netlist_verilog(small_design.netlist, tmp_path / "design.v")
        netlist, _, _ = read_netlist_verilog(path)
        for name, cell in small_design.netlist.cells.items():
            loaded = netlist.cells[name]
            assert loaded.width_sites == cell.width_sites
            assert loaded.height_rows == cell.height_rows
            assert loaded.is_macro == cell.is_macro
            assert loaded.is_sequential == cell.is_sequential
            assert loaded.cluster == cell.cluster

    def test_pin_connectivity_preserved(self, small_design, tmp_path):
        path = write_netlist_verilog(small_design.netlist, tmp_path / "design.v")
        netlist, _, _ = read_netlist_verilog(path)
        for name, net in small_design.netlist.nets.items():
            loaded = netlist.nets[name]
            assert {(p.cell_name, p.pin_name, p.direction) for p in loaded.pins} == {
                (p.cell_name, p.pin_name, p.direction) for p in net.pins
            }

    def test_loaded_netlist_validates(self, small_design, tmp_path):
        path = write_netlist_verilog(small_design.netlist, tmp_path / "design.v")
        netlist, _, _ = read_netlist_verilog(path)
        netlist.validate()


class TestDesignRoundTrip:
    def test_design_round_trip(self, small_design, tmp_path):
        path = write_design(small_design, tmp_path / f"{small_design.name}.v")
        loaded = read_design(path)
        assert loaded.name == small_design.name
        assert loaded.suite == small_design.suite
        assert loaded.seed == small_design.seed
        assert loaded.netlist.num_cells == small_design.netlist.num_cells

    def test_unknown_suite_rejected(self, small_design, tmp_path):
        path = write_netlist_verilog(small_design.netlist, tmp_path / "odd.v", suite="sram_compiler")
        with pytest.raises(ValueError, match="unknown suite"):
            read_design(path)


class TestPlacementDefRoundTrip:
    def test_positions_preserved(self, small_placement, tmp_path):
        path = write_placement_def(small_placement, tmp_path / "design.def")
        loaded = read_placement_def(path, small_placement.design)
        assert loaded.cell_names == small_placement.cell_names
        np.testing.assert_allclose(
            loaded.positions_um,
            small_placement.positions_um,
            atol=1.0 / DEF_UNITS_PER_MICRON,
        )

    def test_config_and_die_preserved(self, small_placement, tmp_path):
        path = write_placement_def(small_placement, tmp_path / "design.def")
        loaded = read_placement_def(path, small_placement.design)
        assert loaded.config == small_placement.config
        assert loaded.die_width_um == pytest.approx(small_placement.die_width_um, abs=1e-3)
        assert loaded.die_height_um == pytest.approx(small_placement.die_height_um, abs=1e-3)

    def test_macro_flags_follow_netlist(self, macro_placement, tmp_path):
        path = write_placement_def(macro_placement, tmp_path / "macro.def")
        loaded = read_placement_def(path, macro_placement.design)
        np.testing.assert_array_equal(loaded.is_macro, macro_placement.is_macro)

    def test_wrong_design_rejected(self, small_placement, tmp_path):
        path = write_placement_def(small_placement, tmp_path / "design.def")
        other = generate_design("iscas89", "other_design", seed=99, cell_count=260)
        with pytest.raises(ValueError, match="not"):
            read_placement_def(path, other)

    def test_missing_pragma_rejected(self, small_placement, tmp_path):
        path = write_placement_def(small_placement, tmp_path / "design.def")
        stripped = "\n".join(
            line for line in path.read_text().splitlines() if not line.startswith("# repro:placement")
        )
        path.write_text(stripped)
        with pytest.raises(ValueError, match="pragma"):
            read_placement_def(path, small_placement.design)


class TestBookshelfPl:
    def test_round_trip_positions(self, small_placement, tmp_path):
        path = write_bookshelf_pl(small_placement, tmp_path / "design.pl")
        positions = read_bookshelf_pl(path)
        assert set(positions) == set(small_placement.cell_names)
        for index, name in enumerate(small_placement.cell_names):
            assert positions[name][0] == pytest.approx(small_placement.positions_um[index, 0], abs=1e-3)
            assert positions[name][1] == pytest.approx(small_placement.positions_um[index, 1], abs=1e-3)

    def test_comments_and_header_skipped(self, tmp_path):
        content = "UCLA pl 1.0\n# a comment\n\ncellA  1.5  2.5 : N\n"
        path = tmp_path / "tiny.pl"
        path.write_text(content)
        assert read_bookshelf_pl(path) == {"cellA": (1.5, 2.5)}


class TestApplyPositions:
    def test_moves_named_cells_only(self, small_placement):
        name = small_placement.cell_names[0]
        other = small_placement.cell_names[1]
        moved = apply_positions(small_placement, {name: (1.0, 2.0)})
        assert tuple(moved.positions_um[moved.cell_index(name)]) == (1.0, 2.0)
        np.testing.assert_array_equal(
            moved.positions_um[moved.cell_index(other)],
            small_placement.positions_um[small_placement.cell_index(other)],
        )

    def test_original_untouched(self, small_placement):
        name = small_placement.cell_names[0]
        before = small_placement.positions_um[small_placement.cell_index(name)].copy()
        apply_positions(small_placement, {name: (0.0, 0.0)})
        np.testing.assert_array_equal(
            small_placement.positions_um[small_placement.cell_index(name)], before
        )

    def test_unknown_cell_rejected(self, small_placement):
        with pytest.raises(ValueError, match="unknown cells"):
            apply_positions(small_placement, {"no_such_cell": (0.0, 0.0)})

    def test_pl_file_feeds_apply_positions(self, small_placement, tmp_path):
        """External-tool style flow: dump .pl, read it back, re-apply."""
        path = write_bookshelf_pl(small_placement, tmp_path / "design.pl")
        positions = read_bookshelf_pl(path)
        rebuilt = apply_positions(small_placement, positions)
        np.testing.assert_allclose(rebuilt.positions_um, small_placement.positions_um, atol=1e-3)
