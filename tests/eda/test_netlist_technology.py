"""Tests for the netlist data model and technology abstraction."""

import pytest

from repro.eda import Cell, Net, Netlist, Pin, RoutingLayer, Technology, merge_statistics, nangate45


class TestCellPinNet:
    def test_cell_area(self):
        assert Cell("a", width_sites=3, height_rows=2).area_sites == 6

    def test_cell_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Cell("a", width_sites=0)

    def test_pin_direction_validation(self):
        with pytest.raises(ValueError):
            Pin("a", "x", direction="bidir")

    def test_net_driver_and_sinks(self):
        net = Net("n", [Pin("a", "o", "output"), Pin("b", "i", "input"), Pin("c", "i", "input")])
        assert net.driver.cell_name == "a"
        assert [p.cell_name for p in net.sinks] == ["b", "c"]
        assert net.degree == 3

    def test_net_cell_names_deduplicated(self):
        net = Net("n", [Pin("a", "o", "output"), Pin("a", "i0", "input"), Pin("b", "i", "input")])
        assert net.cell_names() == ["a", "b"]


class TestNetlist:
    def make_netlist(self):
        netlist = Netlist("top")
        for name in ("a", "b", "c"):
            netlist.add_cell(Cell(name))
        netlist.add_net(Net("n1", [Pin("a", "o", "output"), Pin("b", "i", "input")]))
        netlist.add_net(Net("n2", [Pin("b", "o", "output"), Pin("c", "i", "input"), Pin("a", "i2", "input")]))
        return netlist

    def test_counts(self):
        netlist = self.make_netlist()
        assert netlist.num_cells == 3
        assert netlist.num_nets == 2
        assert netlist.num_pins == 5
        assert netlist.average_net_degree() == pytest.approx(2.5)

    def test_duplicate_cell_rejected(self):
        netlist = self.make_netlist()
        with pytest.raises(ValueError):
            netlist.add_cell(Cell("a"))

    def test_net_referencing_unknown_cell_rejected(self):
        netlist = self.make_netlist()
        with pytest.raises(ValueError):
            netlist.add_net(Net("bad", [Pin("zz", "o", "output"), Pin("a", "i", "input")]))

    def test_pin_counts_per_cell(self):
        counts = self.make_netlist().pin_counts_per_cell()
        assert counts == {"a": 2, "b": 2, "c": 1}

    def test_validate_accepts_good_netlist(self):
        self.make_netlist().validate()

    def test_validate_rejects_driverless_net(self):
        netlist = Netlist("bad")
        netlist.add_cell(Cell("a"))
        netlist.add_cell(Cell("b"))
        netlist.add_net(Net("n", [Pin("a", "i", "input"), Pin("b", "i", "input")]))
        with pytest.raises(ValueError):
            netlist.validate()

    def test_connectivity_graph(self):
        graph = self.make_netlist().connectivity_graph()
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")

    def test_merge_statistics(self):
        stats = merge_statistics([self.make_netlist(), self.make_netlist()])
        assert stats["designs"] == 2
        assert stats["cells"] == 6
        assert merge_statistics([])["designs"] == 0


class TestTechnology:
    def test_nangate45_layers(self):
        tech = nangate45()
        assert len(tech.horizontal_layers) == 3
        assert len(tech.vertical_layers) == 3
        assert tech.site_area_um2() > 0

    def test_capacity_scales_with_span(self):
        tech = nangate45()
        assert tech.horizontal_capacity(20.0) == pytest.approx(2 * tech.horizontal_capacity(10.0))

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            RoutingLayer("m1", "diagonal", 0.2)
        with pytest.raises(ValueError):
            RoutingLayer("m1", "horizontal", -1.0)

    def test_technology_requires_layers(self):
        with pytest.raises(ValueError):
            Technology("t", 0.2, 1.4, ())

    def test_tracks_in_span(self):
        layer = RoutingLayer("m2", "horizontal", 0.2)
        assert layer.tracks_in(2.0) == pytest.approx(10.0)
