"""Tests for grid map extraction, the congestion model, and DRC labeling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda import maps as map_ext
from repro.eda.drc import DrcHotspotLabeler, label_hotspots
from repro.eda.routing import CongestionModelConfig, estimate_congestion


class TestCellDensityMap:
    def test_shape_matches_grid(self, small_placement):
        density = map_ext.cell_density_map(small_placement)
        assert density.shape == small_placement.grid_shape

    def test_non_negative(self, small_placement):
        assert np.all(map_ext.cell_density_map(small_placement) >= 0)

    def test_total_area_is_conserved(self, small_placement):
        """Sum of per-bin density x bin area equals total standard-cell area."""
        density = map_ext.cell_density_map(small_placement)
        bin_area = small_placement.bin_width_um * small_placement.bin_height_um
        mask = ~small_placement.is_macro
        total_cell_area = float(np.prod(small_placement.sizes_um[mask], axis=1).sum())
        assert density.sum() * bin_area == pytest.approx(total_cell_area, rel=1e-6)

    def test_mean_density_tracks_utilization(self, small_placement):
        density = map_ext.cell_density_map(small_placement)
        assert density.mean() == pytest.approx(small_placement.config.utilization, rel=0.1)


class TestMacroAndPinMaps:
    def test_macro_map_zero_without_macros(self, small_placement):
        assert np.all(map_ext.macro_map(small_placement) == 0)

    def test_macro_map_nonzero_with_macros(self, macro_placement):
        macro = map_ext.macro_map(macro_placement)
        assert macro.max() > 0.5
        assert np.all((macro >= 0) & (macro <= 1))

    def test_pin_density_total_equals_pin_count(self, small_placement):
        pins = map_ext.pin_density_map(small_placement)
        assert pins.sum() == pytest.approx(small_placement.design.netlist.num_pins)

    def test_pin_density_non_negative(self, small_placement):
        assert np.all(map_ext.pin_density_map(small_placement) >= 0)


class TestRudyAndFlylines:
    def test_rudy_keys_and_shapes(self, small_placement):
        rudy = map_ext.rudy_maps(small_placement)
        assert set(rudy) == {"rudy", "rudy_horizontal", "rudy_vertical"}
        for values in rudy.values():
            assert values.shape == small_placement.grid_shape
            assert np.all(values >= 0)

    def test_combined_rudy_is_sum_of_directions(self, small_placement):
        rudy = map_ext.rudy_maps(small_placement)
        np.testing.assert_allclose(
            rudy["rudy"], rudy["rudy_horizontal"] + rudy["rudy_vertical"], rtol=1e-9
        )

    def test_flyline_counts_bounded_by_net_count(self, small_placement):
        flylines = map_ext.flyline_map(small_placement)
        boxes, _ = map_ext.net_bounding_boxes(small_placement)
        assert flylines.max() <= boxes.shape[0]
        assert flylines.min() >= 0

    def test_net_bounding_boxes_ordered(self, small_placement):
        boxes, names = map_ext.net_bounding_boxes(small_placement)
        assert boxes.shape[0] == len(names)
        assert np.all(boxes[:, 2] >= boxes[:, 0])
        assert np.all(boxes[:, 3] >= boxes[:, 1])

    def test_all_maps_bundle(self, small_placement):
        bundle = map_ext.all_maps(small_placement)
        expected = {"cell_density", "macro", "pin_density", "flylines", "rudy", "rudy_horizontal", "rudy_vertical"}
        assert expected == set(bundle)


class TestRectBinOverlapProperty:
    @given(
        rects=st.lists(
            st.tuples(
                st.floats(0.0, 80.0),
                st.floats(0.0, 80.0),
                st.floats(0.5, 20.0),
                st.floats(0.5, 20.0),
                st.floats(0.1, 5.0),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_weight_conservation(self, rects, small_placement):
        """Each rectangle's weight is fully distributed over the grid when it fits inside the die."""
        die_w = small_placement.die_width_um
        die_h = small_placement.die_height_um
        x0 = np.array([min(r[0], die_w * 0.5) for r in rects])
        y0 = np.array([min(r[1], die_h * 0.5) for r in rects])
        x1 = np.minimum(x0 + np.array([r[2] for r in rects]), die_w)
        y1 = np.minimum(y0 + np.array([r[3] for r in rects]), die_h)
        weights = np.array([r[4] for r in rects])
        result = map_ext._rect_bin_overlap(small_placement, x0, y0, x1, y1, weights)
        assert result.sum() == pytest.approx(weights.sum(), rel=1e-6)


class TestCongestionModel:
    def test_outputs_and_shapes(self, small_placement, analysis_maps):
        congestion = estimate_congestion(small_placement, precomputed_maps=analysis_maps)
        assert set(congestion) == {
            "congestion_horizontal",
            "congestion_vertical",
            "congestion",
            "overflow",
        }
        for values in congestion.values():
            assert values.shape == small_placement.grid_shape
            assert np.all(values >= 0)

    def test_congestion_is_max_of_directions(self, small_placement, analysis_maps):
        congestion = estimate_congestion(small_placement, precomputed_maps=analysis_maps)
        np.testing.assert_allclose(
            congestion["congestion"],
            np.maximum(congestion["congestion_horizontal"], congestion["congestion_vertical"]),
        )

    def test_overflow_only_above_capacity(self, small_placement, analysis_maps):
        congestion = estimate_congestion(small_placement, precomputed_maps=analysis_maps)
        overflow = congestion["overflow"]
        assert np.all(overflow[congestion["congestion"] <= 1.0] == 0)

    def test_macro_blockage_increases_congestion(self, macro_placement):
        blocked = estimate_congestion(
            macro_placement, CongestionModelConfig(macro_blockage_factor=0.9)
        )
        unblocked = estimate_congestion(
            macro_placement, CongestionModelConfig(macro_blockage_factor=0.0)
        )
        assert blocked["congestion"].mean() >= unblocked["congestion"].mean()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CongestionModelConfig(demand_scale=0)
        with pytest.raises(ValueError):
            CongestionModelConfig(macro_blockage_factor=1.5)


class TestDrcLabeler:
    def test_label_shapes_and_binary(self, small_placement):
        score, hotspots = label_hotspots(small_placement)
        assert score.shape == small_placement.grid_shape
        assert hotspots.shape == small_placement.grid_shape
        assert set(np.unique(hotspots)).issubset({0.0, 1.0})

    def test_hotspot_fraction_near_quantile(self, small_placement):
        result = DrcHotspotLabeler().label(small_placement)
        expected = 1.0 - small_placement.design.style.drc.hotspot_quantile
        assert result.hotspot_fraction == pytest.approx(expected, abs=0.08)

    def test_always_both_classes_present(self, small_placement):
        result = DrcHotspotLabeler().label(small_placement)
        assert 0 < result.num_hotspots < result.hotspots.size

    def test_deterministic_given_seed(self, small_placement):
        a = DrcHotspotLabeler(label_seed=3).label(small_placement)
        b = DrcHotspotLabeler(label_seed=3).label(small_placement)
        np.testing.assert_allclose(a.hotspots, b.hotspots)

    def test_noise_seed_changes_labels(self, small_placement):
        """With a large noise sigma, different label seeds flip some hotspot bins."""
        from repro.eda.benchmarks import DrcSensitivity

        noisy = DrcSensitivity(noise_sigma=1.0)
        a = DrcHotspotLabeler(label_seed=3).label(small_placement, sensitivity=noisy)
        b = DrcHotspotLabeler(label_seed=4).label(small_placement, sensitivity=noisy)
        assert not np.array_equal(a.hotspots, b.hotspots)

    def test_hotspots_correlate_with_score(self, small_placement):
        result = DrcHotspotLabeler().label(small_placement)
        hot_mean = result.score[result.hotspots == 1].mean()
        cold_mean = result.score[result.hotspots == 0].mean()
        assert hot_mean > cold_mean

    def test_macro_design_hotspots_near_macros(self, macro_placement):
        """ISPD'15-style designs get blockage-related hotspots (macro_weight > 0)."""
        result = DrcHotspotLabeler().label(macro_placement)
        assert result.num_hotspots > 0
