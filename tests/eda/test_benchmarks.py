"""Tests for the synthetic benchmark-suite generators."""

import numpy as np
import pytest

from repro.eda.benchmarks import (
    SUITES,
    generate_design,
    generate_suite_designs,
    suite_names,
)


class TestSuiteRegistry:
    def test_all_four_suites_present(self):
        assert set(suite_names()) == {"iscas89", "itc99", "iwls05", "ispd15"}

    def test_only_ispd15_has_macros(self):
        assert SUITES["ispd15"].macro_count_range[1] > 0
        for name in ("iscas89", "itc99", "iwls05"):
            assert SUITES[name].macro_count_range == (0, 0)

    def test_suites_have_distinct_size_ranges(self):
        ranges = {name: style.cell_count_range for name, style in SUITES.items()}
        assert ranges["iscas89"][1] < ranges["ispd15"][0] + ranges["ispd15"][1]
        assert ranges["iscas89"][0] < ranges["itc99"][0] < ranges["ispd15"][0]

    def test_drc_sensitivities_differ_across_suites(self):
        quantiles = {style.drc.hotspot_quantile for style in SUITES.values()}
        macro_weights = {style.drc.macro_weight for style in SUITES.values()}
        assert len(quantiles) > 1
        assert len(macro_weights) > 1


class TestGenerateDesign:
    def test_deterministic_for_same_seed(self):
        a = generate_design("iscas89", "d", seed=3)
        b = generate_design("iscas89", "d", seed=3)
        assert a.netlist.num_cells == b.netlist.num_cells
        assert a.netlist.num_nets == b.netlist.num_nets
        assert list(a.netlist.cells) == list(b.netlist.cells)

    def test_different_seeds_differ(self):
        a = generate_design("iscas89", "d", seed=3)
        b = generate_design("iscas89", "d", seed=4)
        assert (a.netlist.num_cells, a.netlist.num_nets) != (b.netlist.num_cells, b.netlist.num_nets)

    def test_cell_count_within_suite_range(self):
        for suite, style in SUITES.items():
            design = generate_design(suite, f"{suite}_probe", seed=0)
            lo, hi = style.cell_count_range
            assert lo <= design.netlist.num_cells <= hi

    def test_explicit_cell_count(self):
        design = generate_design("itc99", "d", seed=0, cell_count=777)
        assert design.netlist.num_cells == 777

    def test_ispd15_contains_macros(self):
        design = generate_design("ispd15", "d", seed=1, cell_count=2000)
        assert design.netlist.num_macros >= SUITES["ispd15"].macro_count_range[0]

    def test_netlist_is_valid(self):
        design = generate_design("iwls05", "d", seed=2, cell_count=1000)
        design.netlist.validate()

    def test_average_net_degree_tracks_suite_fanout(self):
        small = generate_design("iscas89", "a", seed=0, cell_count=600)
        large = generate_design("ispd15", "b", seed=0, cell_count=2500)
        assert large.netlist.average_net_degree() > small.netlist.average_net_degree() - 0.5

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            generate_design("mcnc", "d", seed=0)

    def test_clusters_are_assigned(self):
        design = generate_design("iscas89", "d", seed=0, cell_count=400)
        clusters = {cell.cluster for cell in design.netlist.iter_cells()}
        assert len(clusters) > 1

    def test_design_style_property(self):
        design = generate_design("itc99", "d", seed=0, cell_count=700)
        assert design.style is SUITES["itc99"]


class TestGenerateSuiteDesigns:
    def test_count_and_unique_names(self):
        designs = generate_suite_designs("iscas89", count=3, base_seed=9)
        assert len(designs) == 3
        assert len({d.name for d in designs}) == 3

    def test_deterministic_across_calls(self):
        first = generate_suite_designs("iscas89", count=2, base_seed=1)
        second = generate_suite_designs("iscas89", count=2, base_seed=1)
        for a, b in zip(first, second):
            assert a.netlist.num_cells == b.netlist.num_cells

    def test_designs_are_distinct(self):
        designs = generate_suite_designs("iscas89", count=3, base_seed=1)
        sizes = [d.netlist.num_cells for d in designs]
        assert len(set(sizes)) > 1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_suite_designs("iscas89", count=0)
