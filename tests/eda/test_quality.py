"""Tests for placement and routing quality metrics."""

import numpy as np
import pytest

from repro.eda.global_router import route_placement
from repro.eda.placement import PlacementConfig, Placer
from repro.eda.quality import (
    compare_placements,
    net_wirelengths,
    placement_quality,
    quality_table,
    routing_quality,
    total_hpwl,
    total_steiner_wirelength,
)
from repro.eda.steiner import hpwl


class TestNetWirelengths:
    def test_covers_every_multi_cell_net(self, small_placement):
        lengths = net_wirelengths(small_placement)
        netlist = small_placement.design.netlist
        multi = [net.name for net in netlist.iter_nets() if len(net.cell_names()) >= 2]
        assert set(lengths) == set(multi)

    def test_matches_manual_hpwl(self, small_placement):
        lengths = net_wirelengths(small_placement)
        centers = small_placement.centers_um()
        net = next(iter(small_placement.design.netlist.iter_nets()))
        points = centers[[small_placement.cell_index(n) for n in net.cell_names()]]
        assert lengths[net.name] == pytest.approx(hpwl(points))

    def test_steiner_at_least_hpwl(self, small_placement):
        plain = net_wirelengths(small_placement, steiner=False)
        steiner = net_wirelengths(small_placement, steiner=True)
        for name, value in plain.items():
            assert steiner[name] >= value - 1e-9

    def test_totals_are_sums(self, small_placement):
        assert total_hpwl(small_placement) == pytest.approx(
            sum(net_wirelengths(small_placement).values())
        )
        assert total_steiner_wirelength(small_placement) >= total_hpwl(small_placement)


class TestPlacementQuality:
    def test_report_fields(self, small_placement):
        report = placement_quality(small_placement)
        netlist = small_placement.design.netlist
        assert report.design == small_placement.design.name
        assert report.num_cells == netlist.num_cells
        assert report.num_nets == netlist.num_nets
        assert report.total_hpwl_um > 0
        assert report.max_net_hpwl_um >= report.mean_net_hpwl_um
        assert 0 < report.utilization < 1.5
        assert report.macro_coverage == 0.0

    def test_macro_design_reports_coverage(self, macro_placement):
        report = placement_quality(macro_placement)
        assert report.num_macros > 0
        assert report.macro_coverage > 0.0

    def test_to_dict_round_trip(self, small_placement):
        report = placement_quality(small_placement)
        data = report.to_dict()
        assert data["design"] == report.design
        assert data["total_hpwl_um"] == report.total_hpwl_um
        assert len(data) == len(report.__dataclass_fields__)

    def test_lower_utilization_means_larger_die_and_hpwl(self, small_design):
        placer = Placer()
        dense = placer.place(small_design, PlacementConfig(grid_width=16, grid_height=16, utilization=0.85, seed=2))
        sparse = placer.place(small_design, PlacementConfig(grid_width=16, grid_height=16, utilization=0.40, seed=2))
        dense_report = placement_quality(dense)
        sparse_report = placement_quality(sparse)
        assert sparse_report.die_width_um > dense_report.die_width_um
        assert sparse_report.total_hpwl_um > dense_report.total_hpwl_um


class TestRoutingQuality:
    @pytest.fixture(scope="class")
    def routed(self, small_placement):
        return route_placement(small_placement)

    def test_report_consistent_with_result(self, routed):
        report = routing_quality(routed)
        assert report.nets_routed == len(routed.routes)
        assert report.wirelength_bins == routed.total_wirelength_bins
        assert report.overflow_total == pytest.approx(routed.total_overflow)
        assert 0.0 <= report.congested_bin_fraction <= 1.0
        assert report.max_congestion >= report.mean_congestion

    def test_threshold_validation(self, routed):
        with pytest.raises(ValueError):
            routing_quality(routed, congestion_threshold=0.0)

    def test_to_dict(self, routed):
        data = routing_quality(routed).to_dict()
        assert data["nets_routed"] == len(routed.routes)


class TestComparisonHelpers:
    def test_compare_placements_sorted_by_hpwl(self, small_design):
        placer = Placer()
        placements = [
            placer.place(small_design, PlacementConfig(grid_width=16, grid_height=16, utilization=u, seed=s))
            for u, s in ((0.8, 1), (0.5, 2), (0.65, 3))
        ]
        ranked = compare_placements(placements)
        hpwls = [report.total_hpwl_um for _, report in ranked]
        assert hpwls == sorted(hpwls)

    def test_quality_table_renders_rows(self, small_placement, macro_placement):
        reports = [placement_quality(small_placement), placement_quality(macro_placement)]
        table = quality_table(reports)
        assert small_placement.design.name in table
        assert macro_placement.design.name in table
        assert len(table.splitlines()) == 2 + len(reports)

    def test_quality_table_empty(self):
        assert "no placements" in quality_table([])
