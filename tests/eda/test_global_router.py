"""Tests for the capacity-aware global router and its routing grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda import maps as map_ext
from repro.eda.drc import DrcHotspotLabeler
from repro.eda.global_router import (
    GlobalRouter,
    GlobalRouterConfig,
    RoutingGrid,
    route_placement,
)


@pytest.fixture(scope="module")
def routed(small_placement):
    """One routed solution of the small fixture placement (shared, read-only)."""
    return route_placement(small_placement)


class TestGlobalRouterConfig:
    def test_defaults_valid(self):
        GlobalRouterConfig()

    def test_rejects_bad_blockage_factor(self):
        with pytest.raises(ValueError):
            GlobalRouterConfig(macro_blockage_factor=1.5)

    def test_rejects_negative_penalties(self):
        with pytest.raises(ValueError):
            GlobalRouterConfig(pin_access_cost=-0.1)
        with pytest.raises(ValueError):
            GlobalRouterConfig(bend_penalty=-1.0)
        with pytest.raises(ValueError):
            GlobalRouterConfig(history_increment=-0.5)

    def test_rejects_nonpositive_overflow_penalty(self):
        with pytest.raises(ValueError):
            GlobalRouterConfig(overflow_penalty=0.0)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            GlobalRouterConfig(max_ripup_iterations=-1)


class TestRoutingGrid:
    def test_capacity_shapes(self, small_placement):
        grid = RoutingGrid(small_placement)
        height, width = small_placement.grid_shape
        assert grid.capacity_h.shape == (height, width - 1)
        assert grid.capacity_v.shape == (height - 1, width)

    def test_capacities_positive(self, small_placement):
        grid = RoutingGrid(small_placement)
        assert np.all(grid.capacity_h > 0)
        assert np.all(grid.capacity_v > 0)

    def test_macro_blockage_reduces_capacity(self, macro_placement):
        blocked = RoutingGrid(macro_placement, GlobalRouterConfig(macro_blockage_factor=0.9))
        free = RoutingGrid(macro_placement, GlobalRouterConfig(macro_blockage_factor=0.0))
        assert blocked.capacity_h.sum() < free.capacity_h.sum()
        assert blocked.capacity_v.sum() < free.capacity_v.sum()

    def test_edge_usage_roundtrip(self, small_placement):
        grid = RoutingGrid(small_placement)
        edge = ((0, 0), (0, 1))
        assert grid.edge_usage(edge) == 0.0
        grid.add_usage(edge)
        grid.add_usage(edge)
        assert grid.edge_usage(edge) == 2.0
        grid.remove_usage(edge)
        assert grid.edge_usage(edge) == 1.0

    def test_remove_never_goes_negative(self, small_placement):
        grid = RoutingGrid(small_placement)
        edge = ((1, 1), (2, 1))
        grid.remove_usage(edge)
        assert grid.edge_usage(edge) == 0.0

    def test_edge_between_is_canonical(self):
        assert RoutingGrid.edge_between((1, 2), (1, 1)) == ((1, 1), (1, 2))
        assert RoutingGrid.edge_between((0, 0), (1, 0)) == ((0, 0), (1, 0))

    def test_rejects_non_adjacent_edge(self, small_placement):
        grid = RoutingGrid(small_placement)
        with pytest.raises(ValueError):
            grid.edge_usage(((0, 0), (0, 2)))
        with pytest.raises(ValueError):
            grid.edge_usage(((0, 0), (1, 1)))

    def test_cost_increases_with_overflow(self, small_placement):
        grid = RoutingGrid(small_placement)
        edge = ((3, 3), (3, 4))
        base_cost = grid.edge_cost(edge)
        for _ in range(int(grid.edge_capacity(edge)) + 5):
            grid.add_usage(edge)
        assert grid.edge_cost(edge) > base_cost

    def test_history_bump_counts_overflowed_edges(self, small_placement):
        grid = RoutingGrid(small_placement)
        edge = ((2, 2), (2, 3))
        for _ in range(int(grid.edge_capacity(edge)) + 3):
            grid.add_usage(edge)
        assert grid.bump_history() == 1
        assert grid.edge_cost(edge) > 1.0

    def test_overflow_edges_empty_initially(self, small_placement):
        grid = RoutingGrid(small_placement)
        assert grid.overflow_edges() == []
        assert grid.total_overflow() == 0.0

    def test_neighbors_inside_grid(self, small_placement):
        grid = RoutingGrid(small_placement)
        assert set(grid.neighbors((0, 0))) == {(0, 1), (1, 0)}
        interior = grid.neighbors((3, 3))
        assert len(interior) == 4

    def test_bin_utilization_keys_and_shapes(self, small_placement):
        grid = RoutingGrid(small_placement)
        maps = grid.bin_utilization()
        for key in ("congestion_horizontal", "congestion_vertical", "congestion", "overflow"):
            assert maps[key].shape == small_placement.grid_shape
            assert np.all(maps[key] >= 0)


class TestPathPrimitives:
    def test_straight_path_horizontal(self):
        path = GlobalRouter._straight_path((2, 1), (2, 4))
        assert path == [(2, 1), (2, 2), (2, 3), (2, 4)]

    def test_straight_path_vertical(self):
        path = GlobalRouter._straight_path((4, 2), (1, 2))
        assert path == [(4, 2), (3, 2), (2, 2), (1, 2)]

    def test_l_shapes_are_two_distinct_paths(self):
        router = GlobalRouter()
        paths = router._l_shape_paths((0, 0), (3, 3))
        assert len(paths) == 2
        assert paths[0] != paths[1]
        for path in paths:
            assert path[0] == (0, 0)
            assert path[-1] == (3, 3)
            assert len(path) == 7  # Manhattan distance 6 => 7 nodes.

    def test_l_shape_degenerates_for_aligned_pins(self):
        router = GlobalRouter()
        paths = router._l_shape_paths((1, 0), (1, 5))
        assert len(paths) == 1

    def test_maze_route_connects_endpoints(self, small_placement):
        router = GlobalRouter()
        grid = RoutingGrid(small_placement)
        path = router._maze_route((0, 0), (5, 7), grid)
        assert path[0] == (0, 0)
        assert path[-1] == (5, 7)
        for a, b in zip(path[:-1], path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
    )
    @settings(max_examples=40, deadline=None)
    def test_straight_and_l_paths_have_manhattan_length(self, source, target):
        router = GlobalRouter()
        manhattan = abs(source[0] - target[0]) + abs(source[1] - target[1])
        for path in router._l_shape_paths(source, target):
            assert len(path) == manhattan + 1
            for a, b in zip(path[:-1], path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


class TestRoutingResult:
    def test_routes_every_multi_bin_net(self, small_placement, routed):
        pin_bins = GlobalRouter._net_pin_bins(small_placement, routed.grid)
        assert set(routed.routes) == set(pin_bins)

    def test_segments_connect_pin_bins(self, routed):
        for route in routed.routes.values():
            covered = set()
            for path in route.segments:
                covered.update(path)
            for pin_bin in route.pin_bins:
                assert pin_bin in covered

    def test_segments_are_adjacent_walks(self, routed):
        for route in routed.routes.values():
            for path in route.segments:
                for a, b in zip(path[:-1], path[1:]):
                    assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_usage_matches_route_edges(self, small_placement, routed):
        """Grid usage equals the number of route edges crossing each cut."""
        total_edges = sum(len(route.edges()) for route in routed.routes.values())
        total_usage = float(routed.grid.usage_h.sum() + routed.grid.usage_v.sum())
        assert total_usage == pytest.approx(total_edges)

    def test_wirelength_positive(self, routed):
        assert routed.total_wirelength_bins > 0
        assert routed.total_wirelength_um > 0

    def test_congestion_maps_compatible_keys(self, routed, small_placement):
        maps = routed.congestion_maps()
        reference = map_ext.all_maps(small_placement)
        assert set(maps) == {"congestion_horizontal", "congestion_vertical", "congestion", "overflow"}
        assert maps["congestion"].shape == reference["cell_density"].shape

    def test_summary_fields(self, routed):
        summary = routed.summary()
        assert summary["nets_routed"] == len(routed.routes)
        assert summary["wirelength_bins"] == routed.total_wirelength_bins
        assert summary["overflow_total"] >= 0.0

    def test_negotiation_does_not_increase_overflow(self, routed):
        assert routed.total_overflow <= routed.initial_overflow + 1e-9

    def test_max_nets_limits_workload(self, small_placement):
        limited = route_placement(small_placement, max_nets=10)
        assert len(limited.routes) == 10

    def test_deterministic(self, small_placement):
        again = route_placement(small_placement)
        first = route_placement(small_placement)
        assert first.total_wirelength_bins == again.total_wirelength_bins
        assert first.total_overflow == pytest.approx(again.total_overflow)


class TestRouterDrcIntegration:
    def test_labeler_accepts_router_source(self, small_placement):
        labeler = DrcHotspotLabeler(congestion_source="router", label_seed=3)
        result = labeler.label(small_placement)
        assert result.hotspots.shape == small_placement.grid_shape
        assert set(np.unique(result.hotspots)).issubset({0.0, 1.0})
        assert 0 < result.num_hotspots < result.hotspots.size

    def test_labeler_rejects_unknown_source(self):
        with pytest.raises(ValueError):
            DrcHotspotLabeler(congestion_source="oracle")

    def test_router_and_model_labels_correlate(self, small_placement):
        """Both congestion sources should flag broadly similar regions."""
        model_scores, _ = DrcHotspotLabeler(label_seed=3).label(small_placement).score, None
        router_scores = DrcHotspotLabeler(congestion_source="router", label_seed=3).label(small_placement).score
        correlation = np.corrcoef(model_scores.ravel(), router_scores.ravel())[0, 1]
        assert correlation > 0.3
