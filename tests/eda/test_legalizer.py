"""Tests for row legalization and placement perturbation."""

import numpy as np
import pytest

from repro.eda.legalizer import (
    LegalizationReport,
    Legalizer,
    legalize_placement,
    perturb_placement,
)
from repro.eda.quality import total_hpwl


def _assert_no_std_cell_overlap(placement, tolerance=1e-6):
    """Check pairwise, per-row, that no two standard cells overlap."""
    std = np.flatnonzero(~placement.is_macro)
    positions = placement.positions_um[std]
    sizes = placement.sizes_um[std]
    rows = np.round(positions[:, 1] / placement.technology.site_height_um).astype(int)
    for row in np.unique(rows):
        members = np.flatnonzero(rows == row)
        order = members[np.argsort(positions[members, 0])]
        for left, right in zip(order[:-1], order[1:]):
            left_end = positions[left, 0] + sizes[left, 0]
            assert left_end <= positions[right, 0] + tolerance


class TestLegalizer:
    @pytest.fixture(scope="class")
    def legalized(self, small_placement):
        return Legalizer().legalize(small_placement)

    def test_returns_placement_and_report(self, legalized):
        placement, report = legalized
        assert isinstance(report, LegalizationReport)
        assert placement.num_cells == len(placement.cell_names)

    def test_cells_snapped_to_rows(self, legalized, small_placement):
        placement, report = legalized
        row_height = small_placement.technology.site_height_um
        std = np.flatnonzero(~placement.is_macro)
        moved = np.flatnonzero(
            np.abs(placement.positions_um - small_placement.positions_um).sum(axis=1) > 1e-9
        )
        # Every cell that the legalizer moved sits exactly on a row.
        for index in np.intersect1d(std, moved):
            y = placement.positions_um[index, 1]
            assert y / row_height == pytest.approx(round(y / row_height), abs=1e-6)

    def test_no_overlaps_among_moved_rows(self, legalized):
        placement, _ = legalized
        _assert_no_std_cell_overlap(placement)

    def test_overlap_reduced(self, legalized):
        _, report = legalized
        assert report.overlap_area_after_um2 <= report.overlap_area_before_um2 + 1e-6

    def test_cells_stay_inside_die(self, legalized):
        placement, _ = legalized
        ends = placement.positions_um + placement.sizes_um
        assert np.all(placement.positions_um >= -1e-6)
        assert np.all(ends[:, 0] <= placement.die_width_um + 1e-6)

    def test_macros_not_moved(self, macro_placement):
        placement, _ = Legalizer().legalize(macro_placement)
        macro = macro_placement.is_macro
        np.testing.assert_array_equal(
            placement.positions_um[macro], macro_placement.positions_um[macro]
        )

    def test_report_statistics_consistent(self, legalized, small_placement):
        _, report = legalized
        std_count = int((~small_placement.is_macro).sum())
        assert 0 <= report.num_moved <= std_count
        assert report.max_displacement_um >= report.mean_displacement_um >= 0
        assert report.total_displacement_um == pytest.approx(
            report.mean_displacement_um * std_count, rel=1e-6
        )

    def test_displacement_is_bounded(self, legalized, small_placement):
        """Tetris legalization should not fling cells across the die."""
        _, report = legalized
        die_span = small_placement.die_width_um + small_placement.die_height_um
        assert report.max_displacement_um <= die_span

    def test_rejects_bad_row_spacing(self):
        with pytest.raises(ValueError):
            Legalizer(row_spacing_um=0.0)

    def test_convenience_wrapper(self, small_placement):
        placement, report = legalize_placement(small_placement)
        assert placement.num_cells == small_placement.num_cells
        assert isinstance(report, LegalizationReport)

    def test_idempotent_on_legal_placement(self, legalized):
        """Re-legalizing a legal placement moves (almost) nothing."""
        placement, _ = legalized
        again, report = Legalizer().legalize(placement)
        assert report.mean_displacement_um <= 1.0


class TestPerturbPlacement:
    def test_moves_requested_fraction(self, small_placement):
        variant = perturb_placement(small_placement, magnitude=0.1, fraction=0.5, seed=1)
        moved = np.abs(variant.positions_um - small_placement.positions_um).sum(axis=1) > 1e-9
        std_count = int((~small_placement.is_macro).sum())
        assert 0.3 * std_count <= moved.sum() <= 0.7 * std_count

    def test_zero_magnitude_is_identity(self, small_placement):
        variant = perturb_placement(small_placement, magnitude=0.0, fraction=0.5, seed=1)
        np.testing.assert_array_equal(variant.positions_um, small_placement.positions_um)

    def test_macros_never_move(self, macro_placement):
        variant = perturb_placement(macro_placement, magnitude=0.2, fraction=1.0, seed=3)
        macro = macro_placement.is_macro
        np.testing.assert_array_equal(
            variant.positions_um[macro], macro_placement.positions_um[macro]
        )

    def test_deterministic_per_seed(self, small_placement):
        a = perturb_placement(small_placement, magnitude=0.1, fraction=0.4, seed=7)
        b = perturb_placement(small_placement, magnitude=0.1, fraction=0.4, seed=7)
        np.testing.assert_array_equal(a.positions_um, b.positions_um)

    def test_different_seeds_differ(self, small_placement):
        a = perturb_placement(small_placement, magnitude=0.1, fraction=0.4, seed=7)
        b = perturb_placement(small_placement, magnitude=0.1, fraction=0.4, seed=8)
        assert not np.array_equal(a.positions_um, b.positions_um)

    def test_cells_stay_inside_die(self, small_placement):
        variant = perturb_placement(small_placement, magnitude=0.5, fraction=1.0, seed=2)
        ends = variant.positions_um + variant.sizes_um
        assert np.all(variant.positions_um >= -1e-9)
        assert np.all(ends[:, 0] <= variant.die_width_um + 1e-6)
        assert np.all(ends[:, 1] <= variant.die_height_um + 1e-6)

    def test_perturbation_changes_hpwl(self, small_placement):
        variant = perturb_placement(small_placement, magnitude=0.2, fraction=0.8, seed=5)
        assert total_hpwl(variant) != pytest.approx(total_hpwl(small_placement), rel=1e-6)

    def test_legalize_flag_produces_row_aligned_variant(self, small_placement):
        variant = perturb_placement(small_placement, magnitude=0.1, fraction=0.5, seed=4, legalize=True)
        _assert_no_std_cell_overlap(variant)

    def test_rejects_bad_arguments(self, small_placement):
        with pytest.raises(ValueError):
            perturb_placement(small_placement, fraction=1.5)
        with pytest.raises(ValueError):
            perturb_placement(small_placement, magnitude=-0.1)

    def test_original_untouched(self, small_placement):
        before = small_placement.positions_um.copy()
        perturb_placement(small_placement, magnitude=0.3, fraction=1.0, seed=11)
        np.testing.assert_array_equal(small_placement.positions_um, before)
