"""Tests for HPWL, rectilinear spanning trees, and Steiner-tree heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.steiner import (
    decompose_to_two_pin,
    hpwl,
    manhattan_distance,
    rectilinear_mst,
    rsmt_length_estimate,
    single_trunk_steiner,
    tree_length,
)

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=2,
    max_size=12,
)


class TestHpwl:
    def test_two_points(self):
        assert hpwl([(0, 0), (3, 4)]) == pytest.approx(7.0)

    def test_single_point_is_zero(self):
        assert hpwl([(5, 5)]) == 0.0

    def test_collinear_points(self):
        assert hpwl([(0, 0), (2, 0), (7, 0)]) == pytest.approx(7.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hpwl(np.zeros((3, 3)))

    @given(points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_translation_invariant(self, points):
        array = np.asarray(points)
        shifted = array + np.array([13.0, -7.0])
        assert hpwl(array) == pytest.approx(hpwl(shifted), abs=1e-6)


class TestManhattanDistance:
    def test_basic(self):
        assert manhattan_distance((1, 2), (4, 6)) == 7.0

    def test_symmetry(self):
        assert manhattan_distance((0, 0), (5, -3)) == manhattan_distance((5, -3), (0, 0))


class TestRectilinearMst:
    def test_two_points_single_edge(self):
        edges, length = rectilinear_mst([(0, 0), (3, 4)])
        assert edges == [(0, 1)]
        assert length == pytest.approx(7.0)

    def test_fewer_than_two_points(self):
        assert rectilinear_mst([(1, 1)]) == ([], 0.0)
        assert rectilinear_mst(np.zeros((0, 2))) == ([], 0.0)

    def test_square_corners(self):
        """Unit-square corners: the MST uses three unit edges."""
        edges, length = rectilinear_mst([(0, 0), (0, 1), (1, 0), (1, 1)])
        assert len(edges) == 3
        assert length == pytest.approx(3.0)

    @given(points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_spanning_tree_structure(self, points):
        """n points yield n-1 edges connecting every point exactly once as a child."""
        edges, length = rectilinear_mst(points)
        n = len(points)
        assert len(edges) == n - 1
        touched = {0}
        for parent, child in edges:
            assert parent in touched
            touched.add(child)
        assert touched == set(range(n))
        assert length == pytest.approx(tree_length(points, edges), rel=1e-9)

    @given(points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_at_least_hpwl_lower_bound_half(self, points):
        """MST length is never shorter than HPWL / 2 nor shorter than the max pairwise gap."""
        _, length = rectilinear_mst(points)
        assert length >= hpwl(points) / 2.0 - 1e-9

    @given(points_strategy)
    @settings(max_examples=30, deadline=None)
    def test_no_longer_than_star_topology(self, points):
        """An MST never costs more than connecting everything to point 0."""
        _, length = rectilinear_mst(points)
        array = np.asarray(points)
        star = float(np.abs(array - array[0]).sum())
        assert length <= star + 1e-9


class TestDecomposeToTwoPin:
    def test_matches_mst_edges(self):
        points = [(0, 0), (5, 0), (5, 5), (0, 5)]
        assert decompose_to_two_pin(points) == rectilinear_mst(points)[0]

    def test_empty_for_single_pin(self):
        assert decompose_to_two_pin([(2, 2)]) == []


class TestSingleTrunkSteiner:
    def test_two_pins_is_l_shape(self):
        tree = single_trunk_steiner([(0, 0), (4, 3)])
        assert tree.length == pytest.approx(7.0)

    def test_single_pin_empty_tree(self):
        tree = single_trunk_steiner([(1, 1)])
        assert tree.length == 0.0
        assert tree.edges == ()

    def test_cross_topology_beats_mst(self):
        """A plus-sign pin set is where Steiner points pay off."""
        points = [(0, 5), (10, 5), (5, 0), (5, 10)]
        tree = single_trunk_steiner(points)
        _, mst_length = rectilinear_mst(points)
        assert tree.length <= mst_length + 1e-9

    @given(points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_never_shorter_than_hpwl_longest_span(self, points):
        """The trunk alone spans the on-axis extent, so length >= max span."""
        tree = single_trunk_steiner(points)
        array = np.asarray(points)
        spans = array.max(axis=0) - array.min(axis=0)
        assert tree.length >= float(spans.min()) - 1e-9

    @given(points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_all_points_shape(self, points):
        tree = single_trunk_steiner(points)
        assert tree.all_points.shape[0] == len(points) + tree.steiner_points.shape[0]


class TestRsmtEstimate:
    def test_small_nets_equal_hpwl(self):
        points = [(0, 0), (3, 1), (5, 2)]
        assert rsmt_length_estimate(points) == pytest.approx(hpwl(points))

    def test_large_nets_exceed_hpwl(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 50, size=(20, 2))
        assert rsmt_length_estimate(points) > hpwl(points)

    def test_monotone_in_pin_count_factor(self):
        """With identical bounding boxes, more pins means a larger estimate."""
        rng = np.random.default_rng(1)
        base = [(0.0, 0.0), (50.0, 50.0)]
        small = base + [tuple(p) for p in rng.uniform(1, 49, size=(4, 2))]
        large = base + [tuple(p) for p in rng.uniform(1, 49, size=(28, 2))]
        assert rsmt_length_estimate(large) > rsmt_length_estimate(small)

    def test_zero_for_coincident_points(self):
        assert rsmt_length_estimate([(2, 2), (2, 2), (2, 2), (2, 2), (2, 2)]) == 0.0
