"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable installs
(`pip install -e .`) work in offline environments whose pip cannot set up an
isolated PEP 517 build (no network access to fetch the build backend).
"""

from setuptools import setup

setup()
