"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable installs
(`pip install -e .`) work in offline environments whose pip cannot set up an
isolated PEP 517 build (no network access to fetch the build backend), and to
inject README.md as the package's long description (declared ``dynamic`` in
pyproject.toml).
"""

from pathlib import Path

from setuptools import setup

readme = Path(__file__).parent / "README.md"
long_description = readme.read_text(encoding="utf-8") if readme.exists() else ""

setup(
    long_description=long_description,
    long_description_content_type="text/markdown",
)
