"""Threshold-based binary classification metrics (confusion matrix and friends)."""

from __future__ import annotations

from typing import Dict

import numpy as np


def confusion_matrix(labels: np.ndarray, predictions: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[TN, FP], [FN, TP]]`` for binary inputs."""
    labels = np.asarray(labels).reshape(-1).astype(int)
    predictions = np.asarray(predictions).reshape(-1).astype(int)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same number of elements")
    for name, values in (("labels", labels), ("predictions", predictions)):
        bad = np.setdiff1d(np.unique(values), [0, 1])
        if bad.size:
            raise ValueError(f"{name} must be binary (0/1), got values {bad}")
    true_negative = int(np.sum((labels == 0) & (predictions == 0)))
    false_positive = int(np.sum((labels == 0) & (predictions == 1)))
    false_negative = int(np.sum((labels == 1) & (predictions == 0)))
    true_positive = int(np.sum((labels == 1) & (predictions == 1)))
    return np.array([[true_negative, false_positive], [false_negative, true_positive]])


def _counts(labels: np.ndarray, predictions: np.ndarray) -> Dict[str, int]:
    matrix = confusion_matrix(labels, predictions)
    return {
        "tn": int(matrix[0, 0]),
        "fp": int(matrix[0, 1]),
        "fn": int(matrix[1, 0]),
        "tp": int(matrix[1, 1]),
    }


def accuracy_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of correctly classified bins."""
    counts = _counts(labels, predictions)
    total = sum(counts.values())
    return (counts["tp"] + counts["tn"]) / total if total else 0.0


def precision_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """TP / (TP + FP); zero when no positives are predicted."""
    counts = _counts(labels, predictions)
    denominator = counts["tp"] + counts["fp"]
    return counts["tp"] / denominator if denominator else 0.0


def recall_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """TP / (TP + FN); zero when there are no positive labels."""
    counts = _counts(labels, predictions)
    denominator = counts["tp"] + counts["fn"]
    return counts["tp"] / denominator if denominator else 0.0


def f1_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(labels, predictions)
    recall = recall_score(labels, predictions)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
