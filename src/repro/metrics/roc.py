"""Receiver-operating-characteristic metrics.

The paper evaluates every model with ROC AUC over the per-bin hotspot
predictions, so a correct, tie-aware AUC implementation is load-bearing for
the reproduction.  The implementation uses the Mann-Whitney U statistic with
average ranks, which handles tied scores exactly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats


def _validate_binary_labels(labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels).reshape(-1)
    unique = np.unique(labels)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError(f"labels must be binary (0/1), got values {unique[:10]}")
    return labels.astype(np.float64)


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney U) formulation.

    Parameters
    ----------
    labels:
        Binary ground-truth labels, any shape (flattened internally).
    scores:
        Real-valued predictions of the same size; larger means more likely
        positive.

    Raises
    ------
    ValueError
        If only one class is present (the AUC is undefined).
    """
    labels = _validate_binary_labels(labels)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError(
            f"labels and scores must have the same number of elements, "
            f"got {labels.shape} and {scores.shape}"
        )
    n_positive = int(labels.sum())
    n_negative = labels.size - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError("ROC AUC is undefined when only one class is present")
    ranks = stats.rankdata(scores)
    rank_sum_positive = float(ranks[labels == 1].sum())
    u_statistic = rank_sum_positive - n_positive * (n_positive + 1) / 2.0
    return u_statistic / (n_positive * n_negative)


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the ROC curve.

    Returns
    -------
    (fpr, tpr, thresholds):
        False-positive rates, true-positive rates, and the score thresholds
        at which they are achieved (descending).
    """
    labels = _validate_binary_labels(labels)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same number of elements")
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order]

    # Keep one point per distinct threshold.
    distinct = np.where(np.diff(sorted_scores))[0]
    threshold_idxs = np.concatenate([distinct, [labels.size - 1]])

    true_positives = np.cumsum(sorted_labels)[threshold_idxs]
    false_positives = 1 + threshold_idxs - true_positives

    n_positive = labels.sum()
    n_negative = labels.size - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError("ROC curve is undefined when only one class is present")

    tpr = np.concatenate([[0.0], true_positives / n_positive])
    fpr = np.concatenate([[0.0], false_positives / n_negative])
    thresholds = np.concatenate([[np.inf], sorted_scores[threshold_idxs]])
    return fpr, tpr, thresholds


def auc_from_curve(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Trapezoidal area under a (fpr, tpr) curve."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    order = np.argsort(fpr, kind="mergesort")
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # NumPy 2.0 rename
    return float(trapezoid(tpr[order], fpr[order]))
