"""Evaluation metrics."""

from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.metrics.roc import roc_auc_score, roc_curve

__all__ = [
    "roc_auc_score",
    "roc_curve",
    "confusion_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
]
