"""Configuration of the decentralized training framework.

The defaults follow Section 5.1 of the paper: R=50 rounds, S=100 local update
steps per round, S'=5000 fine-tuning steps, Adam with learning rate 2e-4 and
L2 regularization 1e-5, FedProx proximal strength mu=1e-4, alpha=0.5 for
alpha-portion sync, C=4 clusters for IFCA, and the assigned clustering
{1,2,3}, {4,5,6}, {7,8}, {9}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.nn.dtypes import COMPUTE_DTYPE_CHOICES
from repro.utils.validation import check_choice, check_positive, check_probability

#: The paper's assigned clustering: three ITC'99 clients, three ISCAS'89
#: clients, two IWLS'05 clients, one ISPD'15 client.
PAPER_ASSIGNED_CLUSTERS: Dict[int, int] = {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1, 7: 2, 8: 2, 9: 3}


@dataclass(frozen=True)
class FLConfig:
    """Hyper-parameters of decentralized training and personalization.

    Attributes
    ----------
    rounds:
        Number of communication rounds ``R``.
    local_steps:
        Number of model update steps ``S`` each client performs per round.
    finetune_steps:
        Number of local fine-tuning steps ``S'`` used by FedProx+Fine-tuning.
    learning_rate / optimizer / weight_decay:
        Local optimizer settings (Adam, 2e-4, L2 1e-5 in the paper).
    proximal_mu:
        FedProx proximal-term strength ``mu``.
    alpha:
        Weight of a client's own parameters in alpha-portion sync.
    num_clusters:
        Number of clusters ``C`` for IFCA.
    assigned_clusters:
        Fixed ``client_id -> cluster`` mapping used by assigned clustering.
    batch_size:
        Mini-batch size of every local update step.
    loss:
        Training loss (the paper's objective is a squared error, ``"mse"``).
    centralized_steps / local_steps_total:
        Total update steps granted to the centralized and local-only
        baselines; ``None`` means "same budget as federated training"
        (``rounds * local_steps``).
    ifca_eval_batches:
        Number of training batches a client uses to score each cluster model
        when choosing its cluster in IFCA.
    compute_dtype:
        Floating dtype local training arithmetic runs in: ``"float64"``
        (default, bit-identical to the historical engine) or ``"float32"``
        (the opt-in fast path — roughly half the memory bandwidth in the
        conv/GEMM hot loop).  Parameter states crossing the client boundary
        — aggregation, wire codecs, checkpoints — are float64 either way.
    seed:
        Seed for model initialization and batch shuffling.
    """

    rounds: int = 50
    local_steps: int = 100
    finetune_steps: int = 5000
    learning_rate: float = 2e-4
    optimizer: str = "adam"
    weight_decay: float = 1e-5
    proximal_mu: float = 1e-4
    alpha: float = 0.5
    num_clusters: int = 4
    assigned_clusters: Tuple[Tuple[int, int], ...] = tuple(sorted(PAPER_ASSIGNED_CLUSTERS.items()))
    batch_size: int = 8
    loss: str = "mse"
    centralized_steps: Optional[int] = None
    local_steps_total: Optional[int] = None
    ifca_eval_batches: int = 2
    compute_dtype: str = "float64"
    seed: int = 0

    def __post_init__(self):
        check_positive("rounds", self.rounds)
        check_positive("local_steps", self.local_steps)
        check_positive("finetune_steps", self.finetune_steps)
        check_positive("learning_rate", self.learning_rate)
        check_choice("optimizer", self.optimizer, ("adam", "sgd"))
        check_positive("weight_decay", self.weight_decay, allow_zero=True)
        check_positive("proximal_mu", self.proximal_mu, allow_zero=True)
        check_probability("alpha", self.alpha)
        check_positive("num_clusters", self.num_clusters)
        check_positive("batch_size", self.batch_size)
        check_choice("loss", self.loss, ("mse", "bce", "bce_logits"))
        check_choice("compute_dtype", self.compute_dtype, COMPUTE_DTYPE_CHOICES)
        check_positive("ifca_eval_batches", self.ifca_eval_batches)
        if self.centralized_steps is not None:
            check_positive("centralized_steps", self.centralized_steps)
        if self.local_steps_total is not None:
            check_positive("local_steps_total", self.local_steps_total)

    @property
    def total_federated_steps(self) -> int:
        """Total per-client update steps across all rounds."""
        return self.rounds * self.local_steps

    @property
    def effective_centralized_steps(self) -> int:
        return self.centralized_steps if self.centralized_steps is not None else self.total_federated_steps

    @property
    def effective_local_steps(self) -> int:
        return self.local_steps_total if self.local_steps_total is not None else self.total_federated_steps

    def assigned_cluster_map(self) -> Dict[int, int]:
        """The assigned-clustering mapping as a dictionary."""
        return dict(self.assigned_clusters)


def paper_fl_config(seed: int = 0) -> FLConfig:
    """The exact hyper-parameters of Section 5.1."""
    return FLConfig(seed=seed)


def scaled_fl_config(
    rounds: int = 6,
    local_steps: int = 10,
    finetune_steps: int = 60,
    batch_size: int = 4,
    seed: int = 0,
    learning_rate: float = 2e-3,
) -> FLConfig:
    """A laptop-scale configuration preserving the structure of the paper's setup.

    The learning rate is raised (2e-3 instead of 2e-4) because the scaled
    configuration takes two orders of magnitude fewer gradient steps.
    """
    return FLConfig(
        rounds=rounds,
        local_steps=local_steps,
        finetune_steps=finetune_steps,
        batch_size=batch_size,
        learning_rate=learning_rate,
        seed=seed,
    )
