"""Client-population scheduling: who trains, when updates land, what counts.

This subpackage owns the client population *between* communication rounds —
the layer real cross-device federated systems live and die by:

samplers (:mod:`~repro.fl.scheduling.samplers`)
    Which clients participate: full participation, uniform ``C``-fraction
    sampling, weighted/importance sampling.  Seeded from the run seed so
    cohorts are bit-reproducible across execution backends and resume.
availability (:mod:`~repro.fl.scheduling.availability`)
    Which clients are reachable: always-on, Bernoulli dropout, day/night
    duty cycles phased per client.
latency (:mod:`~repro.fl.scheduling.latency`)
    How long each dispatched client takes: none, uniform, log-normal, and
    heavy-tailed (Pareto) straggler distributions.
clock (:mod:`~repro.fl.scheduling.clock`)
    The deterministic virtual clock; every run reports *simulated
    wall-clock time*, not just round counts.
scheduler (:mod:`~repro.fl.scheduling.scheduler`)
    The :class:`RoundScheduler` composing the above into the three round
    policies: synchronous barriers, deadline cutoffs with over-selection,
    and FedBuff-style buffered-asynchronous aggregation.

A run without any scheduling options gets no scheduler at all
(:func:`create_scheduler` returns ``None``) and takes the exact
pre-scheduling code path — the default configuration is bit-identical to
the fixed-cohort behavior.
"""

from repro.fl.scheduling.availability import (
    AVAILABILITY_CHOICES,
    AlwaysAvailable,
    AvailabilityModel,
    BernoulliAvailability,
    DayNightAvailability,
    create_availability,
)
from repro.fl.scheduling.clock import VirtualClock
from repro.fl.scheduling.latency import (
    STRAGGLER_CHOICES,
    LatencyModel,
    LogNormalLatency,
    ParetoLatency,
    UniformLatency,
    ZeroLatency,
    create_latency,
)
from repro.fl.scheduling.samplers import (
    SAMPLER_CHOICES,
    ClientSampler,
    FullParticipation,
    UniformSampler,
    WeightedSampler,
    create_sampler,
)
from repro.fl.scheduling.scheduler import (
    ROUND_POLICY_CHOICES,
    RoundOutcome,
    RoundPlan,
    RoundScheduler,
    SchedulingSummary,
    create_scheduler,
    scheduling_requested,
)

__all__ = [
    "SAMPLER_CHOICES",
    "ClientSampler",
    "FullParticipation",
    "UniformSampler",
    "WeightedSampler",
    "create_sampler",
    "AVAILABILITY_CHOICES",
    "AvailabilityModel",
    "AlwaysAvailable",
    "BernoulliAvailability",
    "DayNightAvailability",
    "create_availability",
    "STRAGGLER_CHOICES",
    "LatencyModel",
    "ZeroLatency",
    "UniformLatency",
    "LogNormalLatency",
    "ParetoLatency",
    "create_latency",
    "VirtualClock",
    "ROUND_POLICY_CHOICES",
    "RoundPlan",
    "RoundOutcome",
    "RoundScheduler",
    "SchedulingSummary",
    "create_scheduler",
    "scheduling_requested",
]
