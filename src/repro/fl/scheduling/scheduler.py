"""The round scheduler: cohorts, deadlines, stragglers, and simulated time.

A :class:`RoundScheduler` owns the client population *between* rounds.  It
composes the four scheduling primitives — a
:class:`~repro.fl.scheduling.samplers.ClientSampler`, an
:class:`~repro.fl.scheduling.availability.AvailabilityModel`, a
:class:`~repro.fl.scheduling.latency.LatencyModel`, and the
:class:`~repro.fl.scheduling.clock.VirtualClock` — into the three round
policies an algorithm can run under:

``sync``
    Barrier rounds over the sampled cohort.  Every selected client's update
    is kept; the round lasts as long as its slowest client.
``deadline``
    Barrier rounds with a cutoff.  The cohort is inflated by the
    over-selection factor; updates arriving after ``deadline`` simulated
    seconds are *dropped* (recorded, discarded — exactly what a production
    server does), and the round lasts at most the deadline.
``fedbuff``
    Buffered-asynchronous aggregation (Nguyen et al., 2022).  The scheduler
    supplies sampling, latency draws, the clock, and staleness bookkeeping;
    the event loop itself lives in the algorithm (it owns model versions
    and aggregation).

Everything stochastic lives in seeded private RNGs whose states are exposed
through :meth:`RoundScheduler.state` / :meth:`RoundScheduler.set_state`, so
a resumed run replays the exact cohort/latency sequence of an uninterrupted
one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fl.scheduling.availability import AvailabilityModel, create_availability
from repro.fl.scheduling.clock import VirtualClock
from repro.fl.scheduling.latency import LatencyModel, create_latency
from repro.fl.scheduling.samplers import ClientSampler, create_sampler

#: Round policies understood by :func:`create_scheduler` (and the CLI).
ROUND_POLICY_CHOICES = ("sync", "deadline", "fedbuff")

#: How far the clock advances when nobody is available to dispatch.
IDLE_WAIT_SECONDS = 60.0

#: Consecutive idle waits tolerated before the scheduler declares deadlock.
MAX_IDLE_WAITS = 100_000


@dataclass
class RoundPlan:
    """One round's dispatch decision, made before any client computes."""

    round_index: int
    #: Sorted roster indices selected for this round (may be empty).
    cohort: List[int]
    #: Virtual time at which the cohort was dispatched.
    start_time: float
    #: Roster indices that were available when the cohort was drawn.
    available: List[int] = field(default_factory=list)


@dataclass
class RoundOutcome:
    """What actually came back from one barrier-style round."""

    plan: RoundPlan
    #: Client updates kept by the policy, in cohort (roster) order.
    kept: List[object]
    #: Roster indices whose updates missed the deadline (discarded).
    dropped: List[int]
    #: Simulated round-trip duration per cohort roster index.
    latencies: Dict[int, float]
    #: Simulated duration of the round (the barrier wait).
    duration: float

    @property
    def record_extra(self) -> Dict[str, object]:
        """Per-round extras merged into the algorithm's history record."""
        return {
            "selected": len(self.plan.cohort),
            "arrived": len(self.kept),
            "dropped": len(self.dropped),
            "dropped_indices": list(self.dropped),
            "round_duration_s": self.duration,
            "simulated_time_s": self.plan.start_time + self.duration,
        }


@dataclass(frozen=True)
class SchedulingSummary:
    """Participation / simulated-time / staleness totals of one run."""

    policy: str
    sampler: str
    availability: str
    straggler: str
    rounds: int
    total_selected: int
    total_arrived: int
    total_dropped: int
    simulated_seconds: float
    buffered_aggregations: int = 0
    updates_buffered: int = 0
    mean_staleness: float = 0.0
    max_staleness: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "sampler": self.sampler,
            "availability": self.availability,
            "straggler": self.straggler,
            "rounds": self.rounds,
            "total_selected": self.total_selected,
            "total_arrived": self.total_arrived,
            "total_dropped": self.total_dropped,
            "simulated_seconds": self.simulated_seconds,
            "buffered_aggregations": self.buffered_aggregations,
            "updates_buffered": self.updates_buffered,
            "mean_staleness": self.mean_staleness,
            "max_staleness": self.max_staleness,
        }


class RoundScheduler:
    """Coordinates who trains each round and when their updates land.

    A scheduler is stateful (sampler/availability/latency RNGs, the virtual
    clock, and participation counters); use one fresh scheduler per
    algorithm run, and :meth:`bind` it to the roster before the first round
    (``FederatedAlgorithm`` does this on construction).
    """

    def __init__(
        self,
        sampler: ClientSampler,
        availability: AvailabilityModel,
        latency: LatencyModel,
        policy: str = "sync",
        deadline: Optional[float] = None,
        over_selection: float = 1.0,
        buffer_size: int = 2,
        staleness_exponent: float = 0.5,
        clock: Optional[VirtualClock] = None,
    ):
        if policy not in ROUND_POLICY_CHOICES:
            raise ValueError(
                f"unknown round policy {policy!r}; available: {ROUND_POLICY_CHOICES}"
            )
        if policy == "deadline" and (deadline is None or deadline <= 0.0):
            raise ValueError("the deadline policy needs a positive --deadline (virtual seconds)")
        if over_selection < 1.0:
            raise ValueError(f"over_selection must be >= 1, got {over_selection}")
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be positive, got {buffer_size}")
        if staleness_exponent < 0.0:
            raise ValueError(f"staleness_exponent must be >= 0, got {staleness_exponent}")
        self.sampler = sampler
        self.availability = availability
        self.latency = latency
        self.policy = policy
        self.deadline = float(deadline) if deadline is not None else None
        self.over_selection = float(over_selection)
        self.buffer_size = int(buffer_size)
        self.staleness_exponent = float(staleness_exponent)
        self.clock = clock if clock is not None else VirtualClock()
        self._client_ids: List[int] = []
        self._idle_waits = 0
        # Participation counters (part of the checkpointed state so a
        # resumed run reports the same totals as an uninterrupted one).
        self._rounds = 0
        self._selected = 0
        self._arrived = 0
        self._dropped = 0
        self._aggregations = 0
        self._buffered = 0
        self._staleness_sum = 0.0
        self._staleness_max = 0

    # -- roster ------------------------------------------------------------------
    def bind(self, clients: Sequence) -> None:
        """Attach the client roster (ids and aggregation weights)."""
        self._client_ids = [int(client.client_id) for client in clients]
        self.sampler.bind(
            len(self._client_ids),
            weights=[float(client.num_samples) for client in clients],
        )

    @property
    def num_clients(self) -> int:
        return len(self._client_ids)

    def client_id(self, index: int) -> int:
        return self._client_ids[index]

    # -- availability / sampling --------------------------------------------------
    def available_indices(self, exclude: Sequence[int] = ()) -> List[int]:
        """Roster indices reachable right now, queried in roster order."""
        excluded = set(int(index) for index in exclude)
        now = self.clock.now
        return [
            index
            for index, client_id in enumerate(self._client_ids)
            if index not in excluded and self.availability.available(index, client_id, now)
        ]

    def _select(
        self,
        round_index: int,
        exclude: Sequence[int] = (),
        size: Optional[int] = None,
        multiplier: float = 1.0,
    ) -> "Tuple[List[int], List[int]]":
        """One availability query + cohort draw; returns (cohort, available)."""
        available = self.available_indices(exclude)
        if not available:
            return [], []
        # Someone was reachable: the idle-wait deadlock counter restarts
        # (it tracks *consecutive* starved waits, not a run total).
        self._idle_waits = 0
        cohort = self.sampler.select(round_index, available, size=size, multiplier=multiplier)
        return cohort, available

    def sample_clients(
        self,
        round_index: int,
        exclude: Sequence[int] = (),
        size: Optional[int] = None,
        multiplier: float = 1.0,
    ) -> List[int]:
        """One cohort draw over the currently available clients.

        A request for zero (or fewer) clients returns immediately without
        querying availability, so no-op refills never consume
        availability-RNG draws.
        """
        if size is not None and int(size) <= 0:
            return []
        cohort, _ = self._select(round_index, exclude=exclude, size=size, multiplier=multiplier)
        return cohort

    def wait_for_clients(self) -> None:
        """Advance the clock one idle quantum (nobody available to dispatch)."""
        self._idle_waits += 1
        if self._idle_waits > MAX_IDLE_WAITS:
            raise RuntimeError(
                "no client became available after "
                f"{MAX_IDLE_WAITS} idle waits ({IDLE_WAIT_SECONDS}s each); "
                "the availability model starves the scheduler"
            )
        self.clock.advance(IDLE_WAIT_SECONDS)

    def draw_latency(self, index: int) -> float:
        """One simulated round-trip duration for roster index ``index``."""
        return max(0.0, float(self.latency.sample(index, self._client_ids[index])))

    # -- barrier round policies (sync / deadline) ---------------------------------
    def begin_round(self, round_index: int) -> RoundPlan:
        """Select this round's cohort at the current virtual time.

        When nobody is available the clock advances one idle quantum and
        selection is retried, so a day/night availability trough delays the
        round instead of silently producing empty rounds forever.
        """
        multiplier = self.over_selection if self.policy == "deadline" else 1.0
        while True:
            cohort, available = self._select(round_index, multiplier=multiplier)
            if available:
                return RoundPlan(
                    round_index=round_index,
                    cohort=cohort,
                    start_time=self.clock.now,
                    available=available,
                )
            self.wait_for_clients()

    def arrival_schedule(self, plan: RoundPlan) -> Dict[int, float]:
        """Pre-draw the cohort's latencies, in cohort order.

        Streaming aggregation needs each client's arrival time *before* its
        update is folded (to apply the deadline policy one update at a time).
        Drawing here consumes the latency RNG in exactly the order
        :meth:`complete_round` would, so passing the result back via its
        ``latencies=`` parameter leaves every drawn value — and all later
        RNG consumption — bit-identical to the batch path.
        """
        return {index: self.draw_latency(index) for index in plan.cohort}

    def complete_round(
        self,
        plan: RoundPlan,
        updates: Sequence[object],
        latencies: Optional[Dict[int, float]] = None,
    ) -> RoundOutcome:
        """Apply the round policy to the cohort's computed updates.

        ``updates`` is aligned with ``plan.cohort``.  Latencies are drawn in
        cohort order (or taken from a pre-drawn ``latencies`` mapping from
        :meth:`arrival_schedule`); under the deadline policy, updates
        arriving late are dropped (their computation is discarded, exactly
        like a production server ignoring a straggler's upload).  Advances
        the virtual clock by the round's duration and updates the
        participation counters.
        """
        if len(updates) != len(plan.cohort):
            raise ValueError(
                f"got {len(updates)} updates for a cohort of {len(plan.cohort)}"
            )
        if latencies is None:
            latencies = self.arrival_schedule(plan)
        elif set(latencies) != set(plan.cohort):
            raise ValueError("latencies= must cover exactly the round's cohort")
        if self.policy == "deadline":
            kept = [
                update
                for index, update in zip(plan.cohort, updates)
                if latencies[index] <= self.deadline
            ]
            dropped = [index for index in plan.cohort if latencies[index] > self.deadline]
            kept_latencies = [value for value in latencies.values() if value <= self.deadline]
            duration = self.deadline if dropped else (max(kept_latencies) if kept_latencies else 0.0)
        else:
            kept = list(updates)
            dropped = []
            duration = max(latencies.values()) if latencies else 0.0
        self.clock.advance(duration)
        self._rounds += 1
        self._selected += len(plan.cohort)
        self._arrived += len(kept)
        self._dropped += len(dropped)
        return RoundOutcome(
            plan=plan, kept=kept, dropped=dropped, latencies=latencies, duration=duration
        )

    # -- fedbuff bookkeeping -------------------------------------------------------
    def staleness_weight(self, staleness: int) -> float:
        """FedBuff down-weighting: ``(1 + staleness) ** -exponent``."""
        return float((1.0 + max(0, int(staleness))) ** (-self.staleness_exponent))

    def record_dispatch(self, count: int) -> None:
        self._selected += int(count)

    def record_buffered(self, staleness: int) -> None:
        self._arrived += 1
        self._buffered += 1
        self._staleness_sum += float(staleness)
        self._staleness_max = max(self._staleness_max, int(staleness))

    def record_aggregation(self) -> None:
        self._rounds += 1
        self._aggregations += 1

    def record_discarded(self, count: int) -> None:
        """In-flight updates thrown away when the run stops (never aggregated)."""
        self._dropped += int(count)

    # -- state / summary -----------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Stable fingerprint of the scheduling configuration.

        Stored in checkpoint fingerprints: resuming a partial-participation
        run under a different sampler, straggler model, or policy would
        silently diverge, so it must fail loudly instead.
        """
        description: Dict[str, object] = {
            "policy": self.policy,
            "sampler": self.sampler.describe(),
            "availability": self.availability.describe(),
            "straggler": self.latency.describe(),
            "over_selection": self.over_selection,
        }
        if self.deadline is not None:
            description["deadline"] = self.deadline
        if self.policy == "fedbuff":
            description["buffer_size"] = self.buffer_size
            description["staleness_exponent"] = self.staleness_exponent
        return description

    def state(self) -> Dict[str, object]:
        """Everything needed to resume scheduling bit-identically."""
        return {
            "clock": self.clock.state(),
            "sampler": self.sampler.state(),
            "availability": self.availability.state(),
            "latency": self.latency.state(),
            "counters": {
                "rounds": self._rounds,
                "selected": self._selected,
                "arrived": self._arrived,
                "dropped": self._dropped,
                "aggregations": self._aggregations,
                "buffered": self._buffered,
                "staleness_sum": self._staleness_sum,
                "staleness_max": self._staleness_max,
            },
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state` (checkpoint resume)."""
        self.clock.set_state(state.get("clock", {}))
        self.sampler.set_state(state.get("sampler", {}))
        self.availability.set_state(state.get("availability", {}))
        self.latency.set_state(state.get("latency", {}))
        counters = state.get("counters", {})
        self._rounds = int(counters.get("rounds", 0))
        self._selected = int(counters.get("selected", 0))
        self._arrived = int(counters.get("arrived", 0))
        self._dropped = int(counters.get("dropped", 0))
        self._aggregations = int(counters.get("aggregations", 0))
        self._buffered = int(counters.get("buffered", 0))
        self._staleness_sum = float(counters.get("staleness_sum", 0.0))
        self._staleness_max = int(counters.get("staleness_max", 0))

    def summary(self) -> SchedulingSummary:
        mean_staleness = self._staleness_sum / self._buffered if self._buffered else 0.0
        return SchedulingSummary(
            policy=self.policy,
            sampler=self.sampler.describe(),
            availability=self.availability.describe(),
            straggler=self.latency.describe(),
            rounds=self._rounds,
            total_selected=self._selected,
            total_arrived=self._arrived,
            total_dropped=self._dropped,
            simulated_seconds=self.clock.now,
            buffered_aggregations=self._aggregations,
            updates_buffered=self._buffered,
            mean_staleness=mean_staleness,
            max_staleness=self._staleness_max,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundScheduler({self.describe()})"


def scheduling_requested(
    participation: Optional[float] = None,
    clients_per_round: Optional[int] = None,
    sampler: Optional[str] = None,
    availability: Optional[str] = None,
    straggler: Optional[str] = None,
    round_policy: str = "sync",
) -> bool:
    """Whether any scheduling option departs from the scheduler-less defaults.

    The single source of truth shared by :func:`create_scheduler` and the
    experiment configuration, so "a scheduler exists" and "scheduling is
    reported" can never drift apart.
    """
    return (
        participation is not None
        or clients_per_round is not None
        or sampler is not None
        or (availability is not None and availability != "always")
        or (straggler is not None and straggler != "none")
        or round_policy != "sync"
    )


def create_scheduler(
    participation: Optional[float] = None,
    clients_per_round: Optional[int] = None,
    sampler: Optional[str] = None,
    availability: Optional[str] = None,
    availability_rate: float = 0.9,
    straggler: Optional[str] = None,
    round_policy: str = "sync",
    deadline: Optional[float] = None,
    over_selection: float = 1.0,
    buffer_size: int = 2,
    staleness_exponent: float = 0.5,
    seed: int = 0,
) -> Optional[RoundScheduler]:
    """Build a :class:`RoundScheduler` from flat run options.

    Returns ``None`` when every option is at its default — full
    participation, always-on clients, no stragglers, synchronous rounds —
    so the default configuration takes the scheduler-less code path and
    stays bit-identical to pre-scheduling behavior.
    """
    if not scheduling_requested(
        participation=participation,
        clients_per_round=clients_per_round,
        sampler=sampler,
        availability=availability,
        straggler=straggler,
        round_policy=round_policy,
    ):
        return None
    return RoundScheduler(
        sampler=create_sampler(
            sampler, fraction=participation, clients_per_round=clients_per_round, seed=seed
        ),
        availability=create_availability(availability, rate=availability_rate, seed=seed),
        latency=create_latency(straggler, seed=seed),
        policy=round_policy,
        deadline=deadline,
        over_selection=over_selection,
        buffer_size=buffer_size,
        staleness_exponent=staleness_exponent,
    )
