"""Per-client availability models driven by the virtual clock.

Cross-device clients come and go: phones charge at night, edge boxes reboot,
networks drop.  An :class:`AvailabilityModel` answers one question — *is this
client reachable right now?* — as a deterministic function of the client,
the virtual-clock time, and (for the stochastic model) a seeded private RNG
whose state is checkpointable.

Queries are made once per scheduling decision, in roster order, in the
coordinating process, so availability is bit-reproducible across execution
backends and across checkpoint resume.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

#: Seed-stream tag reserved for availability RNGs (mixed into the run seed).
AVAILABILITY_SEED_TAG = 0xA7B1

#: Availability model names understood by :func:`create_availability`.
AVAILABILITY_CHOICES = ("always", "bernoulli", "daynight")

#: Fractional part of the golden ratio; spreads per-client phases evenly.
_GOLDEN = 0.6180339887498949


class AvailabilityModel:
    """Interface of every availability model."""

    #: Registry / CLI name, overridden by subclasses.
    name: str = "base"

    def available(self, client_index: int, client_id: int, now: float) -> bool:
        """Whether the client can be dispatched at virtual time ``now``."""
        raise NotImplementedError

    def state(self) -> Dict[str, object]:
        """JSON-serializable snapshot for checkpointing (RNG state, if any)."""
        return {}

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state`."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}({self.describe()})"


class AlwaysAvailable(AvailabilityModel):
    """Every client is reachable at every instant (the default)."""

    name = "always"

    def available(self, client_index: int, client_id: int, now: float) -> bool:
        return True


class BernoulliAvailability(AvailabilityModel):
    """Each availability query succeeds independently with probability ``rate``.

    Models sporadic, memoryless dropout (flaky links, devices wandering in
    and out of charge).  Draws come from a private seeded RNG, one draw per
    query, so the sequence is deterministic given the query order.
    """

    name = "bernoulli"

    def __init__(self, rate: float = 0.9, seed: int = 0):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"availability rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        self._rng = np.random.default_rng(np.random.SeedSequence([self.seed, AVAILABILITY_SEED_TAG]))

    def available(self, client_index: int, client_id: int, now: float) -> bool:
        return bool(self._rng.random() < self.rate)

    def state(self) -> Dict[str, object]:
        return {"rng": self._rng.bit_generator.state}

    def set_state(self, state: Dict[str, object]) -> None:
        if "rng" in state:
            self._rng.bit_generator.state = state["rng"]

    def describe(self) -> str:
        return f"{self.name}({self.rate:g})"


class DayNightAvailability(AvailabilityModel):
    """Deterministic day/night duty cycle with a per-client phase offset.

    Client ``k`` is available while
    ``(now + phase_k) mod period < duty_fraction * period``.  Phases are
    spread with the golden-ratio sequence so cohorts rotate through the
    population as the virtual clock advances instead of all clients
    appearing and vanishing together.
    """

    name = "daynight"

    def __init__(self, duty_fraction: float = 0.5, period: float = 86_400.0):
        if not 0.0 < duty_fraction <= 1.0:
            raise ValueError(f"duty_fraction must be in (0, 1], got {duty_fraction}")
        if period <= 0.0:
            raise ValueError(f"period must be positive, got {period}")
        self.duty_fraction = float(duty_fraction)
        self.period = float(period)

    def phase(self, client_index: int) -> float:
        return ((client_index * _GOLDEN) % 1.0) * self.period

    def available(self, client_index: int, client_id: int, now: float) -> bool:
        position = (now + self.phase(client_index)) % self.period
        return position < self.duty_fraction * self.period

    def describe(self) -> str:
        return f"{self.name}(duty={self.duty_fraction:g}, period={self.period:g})"


def create_availability(
    name: Optional[str],
    rate: float = 0.9,
    period: float = 86_400.0,
    seed: int = 0,
) -> AvailabilityModel:
    """Instantiate an availability model by name (``None`` = always on)."""
    key = (name or "always").lower()
    if key == "always":
        return AlwaysAvailable()
    if key == "bernoulli":
        return BernoulliAvailability(rate=rate, seed=seed)
    if key == "daynight":
        return DayNightAvailability(duty_fraction=rate, period=period)
    raise ValueError(f"unknown availability model {name!r}; available: {AVAILABILITY_CHOICES}")
