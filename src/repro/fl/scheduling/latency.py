"""Straggler latency models: how long a dispatched client takes to report.

A :class:`LatencyModel` assigns every dispatched client task a simulated
round-trip duration (local compute + both network legs) in virtual seconds.
The round policies consume these durations: a synchronous round lasts as
long as its slowest client, a deadline round drops whoever exceeds the
cutoff, and the buffered-asynchronous loop orders update arrivals by them.

Draws happen once per dispatch, in cohort order, in the coordinating
process, from a private seeded RNG — so simulated time is bit-reproducible
across execution backends, and the RNG state is checkpointable.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

#: Seed-stream tag reserved for latency RNGs (mixed into the run seed).
LATENCY_SEED_TAG = 0x17E3

#: Straggler model names understood by :func:`create_latency` (and the CLI).
STRAGGLER_CHOICES = ("none", "uniform", "lognormal", "heavytail")


class LatencyModel:
    """Interface of every straggler latency model."""

    #: Registry / CLI name, overridden by subclasses.
    name: str = "base"

    def sample(self, client_index: int, client_id: int) -> float:
        """One simulated round-trip duration (virtual seconds, >= 0)."""
        raise NotImplementedError

    def state(self) -> Dict[str, object]:
        """JSON-serializable snapshot for checkpointing (RNG state, if any)."""
        return {}

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state`."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}({self.describe()})"


class ZeroLatency(LatencyModel):
    """Every client reports instantly (the default: no straggler simulation)."""

    name = "none"

    def sample(self, client_index: int, client_id: int) -> float:
        return 0.0


class _SeededLatency(LatencyModel):
    """Shared RNG plumbing of the stochastic latency models."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = np.random.default_rng(np.random.SeedSequence([self.seed, LATENCY_SEED_TAG]))

    def state(self) -> Dict[str, object]:
        return {"rng": self._rng.bit_generator.state}

    def set_state(self, state: Dict[str, object]) -> None:
        if "rng" in state:
            self._rng.bit_generator.state = state["rng"]


class UniformLatency(_SeededLatency):
    """Durations uniform in ``[low, high]`` — mild, bounded stragglers."""

    name = "uniform"

    def __init__(self, low: float = 5.0, high: float = 30.0, seed: int = 0):
        super().__init__(seed)
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, client_index: int, client_id: int) -> float:
        return float(self._rng.uniform(self.low, self.high))

    def describe(self) -> str:
        return f"{self.name}[{self.low:g}, {self.high:g}]"


class LogNormalLatency(_SeededLatency):
    """Log-normal durations: ``median * exp(sigma * N(0, 1))``.

    The standard model for device compute time in FL simulators; most
    clients land near the median and a tail of stragglers takes several
    times longer.  ``sigma`` controls the tail weight.
    """

    name = "lognormal"

    def __init__(self, median: float = 10.0, sigma: float = 0.8, seed: int = 0):
        super().__init__(seed)
        if median <= 0 or sigma < 0:
            raise ValueError(f"need median > 0 and sigma >= 0, got {median}, {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)

    def sample(self, client_index: int, client_id: int) -> float:
        return float(self.median * np.exp(self.sigma * self._rng.standard_normal()))

    def describe(self) -> str:
        return f"{self.name}(median={self.median:g}, sigma={self.sigma:g})"


class ParetoLatency(_SeededLatency):
    """Heavy-tailed (Pareto) durations: ``scale * (1 + Pareto(shape))``.

    With ``shape <= 2`` the distribution has infinite variance — occasional
    clients take an order of magnitude longer than the median, which is the
    regime where deadline cutoffs and buffered-asynchronous aggregation pay
    off over a synchronous barrier.
    """

    name = "heavytail"

    def __init__(self, scale: float = 5.0, shape: float = 1.5, seed: int = 0):
        super().__init__(seed)
        if scale <= 0 or shape <= 0:
            raise ValueError(f"need scale > 0 and shape > 0, got {scale}, {shape}")
        self.scale = float(scale)
        self.shape = float(shape)

    def sample(self, client_index: int, client_id: int) -> float:
        return float(self.scale * (1.0 + self._rng.pareto(self.shape)))

    def describe(self) -> str:
        return f"{self.name}(scale={self.scale:g}, shape={self.shape:g})"


def create_latency(name: Optional[str], seed: int = 0) -> LatencyModel:
    """Instantiate a straggler latency model by name (``None`` = no latency)."""
    key = (name or "none").lower()
    if key == "none":
        return ZeroLatency()
    if key == "uniform":
        return UniformLatency(seed=seed)
    if key == "lognormal":
        return LogNormalLatency(seed=seed)
    if key == "heavytail":
        return ParetoLatency(seed=seed)
    raise ValueError(f"unknown straggler model {name!r}; available: {STRAGGLER_CHOICES}")
