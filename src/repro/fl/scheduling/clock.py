"""The deterministic virtual clock of the client-population simulator.

Simulated federated runs report *simulated wall-clock time* — how long the
deployment would have taken with real devices — not just round counts.  The
:class:`VirtualClock` is the single time authority: round policies advance
it by each round's duration (slowest kept client, or the deadline), the
buffered-asynchronous loop advances it to each update's arrival instant,
and availability models read it to decide who is reachable.

The clock is plain state (no RNG, no wall-clock reads), so it is trivially
deterministic and checkpointable.
"""

from __future__ import annotations

from typing import Dict


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current simulated time in seconds."""
        return self._now

    def advance(self, duration: float) -> float:
        """Move time forward by ``duration`` seconds; returns the new time."""
        if duration < 0.0:
            raise ValueError(f"cannot advance by a negative duration ({duration})")
        self._now += float(duration)
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move time forward to ``instant`` (a no-op when already past it)."""
        if instant > self._now:
            self._now = float(instant)
        return self._now

    def state(self) -> Dict[str, object]:
        """JSON-serializable snapshot for checkpointing."""
        return {"now": self._now}

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        if "now" in state:
            self._now = float(state["now"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3f}s)"
