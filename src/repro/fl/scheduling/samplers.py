"""Client samplers: who participates in a communication round.

Real cross-device federated deployments never run a round over the full
client population; the server selects a *cohort* from the clients that are
currently available.  A :class:`ClientSampler` owns that selection.  All
samplers operate on **roster indices** (positions in the algorithm's client
list), never on client ids, so the selection logic is independent of how
ids are assigned.

Determinism contract
--------------------
Samplers draw from a private :class:`numpy.random.Generator` seeded from the
run seed.  Selection happens exactly once per round in the coordinating
process, so the cohort sequence is bit-reproducible across execution
backends (serial vs. process pool) and across checkpoint resume — the
sampler's full RNG state is exposed via :meth:`ClientSampler.state` and
restored via :meth:`ClientSampler.set_state`.  Returned cohorts are sorted
by roster index so the order in which client tasks are dispatched (and
their RNG hand-off) never depends on the draw order.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Seed-stream tag reserved for sampler RNGs (mixed into the run seed).
SAMPLER_SEED_TAG = 0x5C40

#: Sampler names understood by :func:`create_sampler` (and the CLI).
SAMPLER_CHOICES = ("full", "uniform", "weighted")


class ClientSampler:
    """Interface of every cohort sampler."""

    #: Registry / CLI name, overridden by subclasses.
    name: str = "base"

    def bind(self, num_clients: int, weights: Optional[Sequence[float]] = None) -> None:
        """Attach the roster size (and per-client weights, if any)."""
        self._num_clients = int(num_clients)
        self._weights = [float(w) for w in weights] if weights is not None else None

    def select(
        self,
        round_index: int,
        available: Sequence[int],
        size: Optional[int] = None,
        multiplier: float = 1.0,
    ) -> List[int]:
        """Pick this round's cohort from the available roster indices.

        ``size`` overrides the sampler's own cohort-size rule (used by the
        buffered-asynchronous loop to refill exactly the freed slots);
        ``multiplier`` inflates the size for over-selection (deadline rounds
        select extra clients expecting some to be dropped).  The returned
        list is sorted and never larger than ``available``.
        """
        raise NotImplementedError

    def cohort_size(self, num_available: int) -> int:
        """The target cohort size for ``num_available`` ready clients."""
        return num_available

    def state(self) -> Dict[str, object]:
        """JSON-serializable snapshot (RNG state) for checkpointing."""
        return {}

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state`."""

    def describe(self) -> str:
        """Stable human/fingerprint description of this sampler."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}({self.describe()})"


def _inflated(size: int, multiplier: float, num_available: int) -> int:
    """Over-selection: inflate ``size`` by ``multiplier``, capped at availability."""
    if multiplier < 1.0:
        raise ValueError(f"over-selection multiplier must be >= 1, got {multiplier}")
    return max(1, min(num_available, int(math.ceil(size * multiplier))))


class FullParticipation(ClientSampler):
    """Every available client participates (the pre-scheduling behavior).

    When a caller constrains the cohort size (the buffered-asynchronous
    loop refilling freed slots), clients are taken round-robin from the
    available list — a rotating cursor, not always the lowest roster
    indices — so no client is systematically starved.  The cursor is part
    of the checkpointed state.
    """

    name = "full"

    def __init__(self):
        self._cursor = 0

    def select(
        self,
        round_index: int,
        available: Sequence[int],
        size: Optional[int] = None,
        multiplier: float = 1.0,
    ) -> List[int]:
        chosen = sorted(int(index) for index in available)
        if size is None:
            return chosen
        size = int(size)
        if size <= 0:
            return []
        if size >= len(chosen):
            return chosen
        start = self._cursor % len(chosen)
        picked = [chosen[(start + offset) % len(chosen)] for offset in range(size)]
        self._cursor += size
        return sorted(picked)

    def state(self) -> Dict[str, object]:
        return {"cursor": self._cursor}

    def set_state(self, state: Dict[str, object]) -> None:
        self._cursor = int(state.get("cursor", 0))


class _RandomSampler(ClientSampler):
    """Shared machinery of the RNG-driven samplers."""

    def __init__(
        self,
        fraction: Optional[float] = None,
        clients_per_round: Optional[int] = None,
        seed: int = 0,
    ):
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ValueError(f"participation fraction must be in (0, 1], got {fraction}")
        if clients_per_round is not None and clients_per_round < 1:
            raise ValueError(f"clients_per_round must be positive, got {clients_per_round}")
        self.fraction = float(fraction) if fraction is not None else None
        self.clients_per_round = int(clients_per_round) if clients_per_round is not None else None
        self.seed = int(seed)
        self._rng = np.random.default_rng(np.random.SeedSequence([self.seed, SAMPLER_SEED_TAG]))

    def cohort_size(self, num_available: int) -> int:
        if self.clients_per_round is not None:
            return min(self.clients_per_round, num_available)
        fraction = self.fraction if self.fraction is not None else 1.0
        return max(1, min(num_available, int(round(fraction * num_available))))

    def _probabilities(self, available: Sequence[int]) -> Optional[np.ndarray]:
        """Per-available-client selection probabilities (None = uniform)."""
        return None

    def select(
        self,
        round_index: int,
        available: Sequence[int],
        size: Optional[int] = None,
        multiplier: float = 1.0,
    ) -> List[int]:
        available = sorted(int(index) for index in available)
        if not available:
            return []
        if size is not None and int(size) <= 0:
            return []
        count = int(size) if size is not None else self.cohort_size(len(available))
        count = _inflated(count, multiplier, len(available))
        if count >= len(available):
            return list(available)
        picked = self._rng.choice(
            len(available), size=count, replace=False, p=self._probabilities(available)
        )
        return sorted(available[position] for position in picked)

    def state(self) -> Dict[str, object]:
        return {"rng": self._rng.bit_generator.state}

    def set_state(self, state: Dict[str, object]) -> None:
        if "rng" in state:
            self._rng.bit_generator.state = state["rng"]

    def describe(self) -> str:
        if self.clients_per_round is not None:
            return f"{self.name}(k={self.clients_per_round})"
        fraction = self.fraction if self.fraction is not None else 1.0
        return f"{self.name}({fraction:g})"


class UniformSampler(_RandomSampler):
    """Uniform sampling without replacement (the FedAvg ``C``-fraction rule)."""

    name = "uniform"


class WeightedSampler(_RandomSampler):
    """Importance sampling proportional to client weight (sample count).

    Clients holding more training data are proportionally more likely to be
    selected, which reduces the variance of the sample-weighted aggregate
    under partial participation.  Weights come from the scheduler's
    :meth:`ClientSampler.bind` call (the roster's ``num_samples``).
    """

    name = "weighted"

    def _probabilities(self, available: Sequence[int]) -> Optional[np.ndarray]:
        weights = getattr(self, "_weights", None)
        if weights is None:
            return None
        raw = np.asarray([weights[index] for index in available], dtype=np.float64)
        total = float(raw.sum())
        if total <= 0.0:
            return None
        return raw / total


def create_sampler(
    name: Optional[str],
    fraction: Optional[float] = None,
    clients_per_round: Optional[int] = None,
    seed: int = 0,
) -> ClientSampler:
    """Instantiate a sampler by name.

    ``name=None`` infers the sampler: :class:`UniformSampler` when a
    fraction or per-round count is requested, :class:`FullParticipation`
    otherwise.
    """
    if name is None:
        name = "full" if fraction is None and clients_per_round is None else "uniform"
    key = name.lower()
    if key == "full":
        return FullParticipation()
    if key == "uniform":
        return UniformSampler(fraction=fraction, clients_per_round=clients_per_round, seed=seed)
    if key == "weighted":
        return WeightedSampler(fraction=fraction, clients_per_round=clients_per_round, seed=seed)
    raise ValueError(f"unknown client sampler {name!r}; available: {SAMPLER_CHOICES}")
