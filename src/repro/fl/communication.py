"""Communication cost accounting and update compression.

Decentralized training replaces data movement with parameter movement, so the
practical cost of every algorithm in this package is measured in bytes per
round.  This module provides:

* sizing helpers for model states (parameter counts and bytes at a chosen
  precision);
* an analytic per-algorithm communication model (uplink/downlink per round
  and per training run) for every algorithm in the registry, which the
  communication benchmark turns into a table;
* a :class:`CommunicationTracker` that algorithms or experiments can use to
  record actual transfers;
* two classic update-compression schemes — top-k sparsification and uniform
  quantization — with the byte savings they would realize on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fl.parameters import State, clone_state

#: Bytes per parameter at single precision (what the paper's models would ship).
BYTES_PER_FLOAT32 = 4


def state_num_parameters(state: State) -> int:
    """Total number of scalar entries in a model state."""
    return int(sum(int(np.asarray(values).size) for values in state.values()))


def state_bytes(state: State, bytes_per_value: int = BYTES_PER_FLOAT32) -> int:
    """Size of a model state on the wire at ``bytes_per_value`` precision."""
    if bytes_per_value <= 0:
        raise ValueError("bytes_per_value must be positive")
    return state_num_parameters(state) * bytes_per_value


@dataclass(frozen=True)
class CommunicationReport:
    """Analytic communication cost of one algorithm for one training run."""

    algorithm: str
    rounds: int
    num_clients: int
    uplink_bytes_per_round: int
    downlink_bytes_per_round: int

    @property
    def total_uplink_bytes(self) -> int:
        return self.uplink_bytes_per_round * self.rounds

    @property
    def total_downlink_bytes(self) -> int:
        return self.downlink_bytes_per_round * self.rounds

    @property
    def total_bytes(self) -> int:
        return self.total_uplink_bytes + self.total_downlink_bytes

    def to_dict(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "rounds": self.rounds,
            "num_clients": self.num_clients,
            "uplink_bytes_per_round": self.uplink_bytes_per_round,
            "downlink_bytes_per_round": self.downlink_bytes_per_round,
            "total_bytes": self.total_bytes,
        }


def estimate_communication(
    algorithm: str,
    state: State,
    num_clients: int,
    rounds: int,
    global_fraction: float = 1.0,
    num_clusters: int = 1,
) -> CommunicationReport:
    """Analytic uplink/downlink model of one algorithm.

    Parameters
    ----------
    algorithm:
        One of the registry names (``fedavg``, ``fedprox``, ``fedprox_lg``,
        ``ifca``, ``fedprox_finetune``, ``assigned_clustering``,
        ``fedprox_alpha``, ``fedbn``, ``fedavgm``, ``local``, ``centralized``).
    state:
        A representative model state (for its size).
    global_fraction:
        Fraction of the state that is globally shared (FedProx-LG / FedBN
        ship only this part).
    num_clusters:
        IFCA downlink ships every cluster model to every client.
    """
    if num_clients <= 0 or rounds < 0:
        raise ValueError("num_clients must be positive and rounds non-negative")
    if not 0.0 < global_fraction <= 1.0:
        raise ValueError("global_fraction must be in (0, 1]")
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    size = state_bytes(state)
    shared = int(round(size * global_fraction))
    key = algorithm.lower()

    if key in ("local", "centralized"):
        # Local training never communicates; centralized training ships the
        # data once, not parameters — neither has a per-round parameter cost.
        uplink = downlink = 0
    elif key in ("fedavg", "fedprox", "fedprox_finetune", "fedprox_alpha", "fedavgm"):
        uplink = size * num_clients
        downlink = size * num_clients
    elif key in ("fedprox_lg", "fedbn"):
        uplink = shared * num_clients
        downlink = shared * num_clients
    elif key == "ifca":
        # Every client uploads one model but must receive all cluster models
        # to choose among them.
        uplink = size * num_clients
        downlink = size * num_clusters * num_clients
    elif key == "assigned_clustering":
        uplink = size * num_clients
        downlink = size * num_clients
    else:
        raise ValueError(f"unknown algorithm {algorithm!r} for communication estimation")

    return CommunicationReport(
        algorithm=key,
        rounds=rounds,
        num_clients=num_clients,
        uplink_bytes_per_round=int(uplink),
        downlink_bytes_per_round=int(downlink),
    )


class CommunicationTracker:
    """Records actual parameter transfers during a training run."""

    def __init__(self):
        self._uplink: List[Tuple[int, int, int]] = []  # (round, client, bytes)
        self._downlink: List[Tuple[int, int, int]] = []

    def log_upload(self, round_index: int, client_id: int, state: State) -> int:
        size = state_bytes(state)
        self._uplink.append((int(round_index), int(client_id), size))
        return size

    def log_download(self, round_index: int, client_id: int, state: State) -> int:
        size = state_bytes(state)
        self._downlink.append((int(round_index), int(client_id), size))
        return size

    @property
    def total_uplink_bytes(self) -> int:
        return sum(size for _, _, size in self._uplink)

    @property
    def total_downlink_bytes(self) -> int:
        return sum(size for _, _, size in self._downlink)

    @property
    def total_bytes(self) -> int:
        return self.total_uplink_bytes + self.total_downlink_bytes

    def per_round(self) -> Dict[int, int]:
        """Total bytes (both directions) per round index."""
        totals: Dict[int, int] = {}
        for round_index, _, size in self._uplink + self._downlink:
            totals[round_index] = totals.get(round_index, 0) + size
        return totals

    def per_client(self) -> Dict[int, int]:
        """Total bytes (both directions) per client id."""
        totals: Dict[int, int] = {}
        for _, client_id, size in self._uplink + self._downlink:
            totals[client_id] = totals.get(client_id, 0) + size
        return totals


@dataclass(frozen=True)
class CompressionResult:
    """A compressed (and already de-compressed) state plus its wire cost."""

    state: State
    payload_bytes: int
    baseline_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Baseline bytes divided by compressed bytes (higher is better)."""
        if self.payload_bytes == 0:
            return float("inf")
        return self.baseline_bytes / self.payload_bytes


def topk_sparsify(state: State, keep_fraction: float) -> CompressionResult:
    """Keep only the largest-magnitude ``keep_fraction`` of entries.

    The surviving values keep their exact value (the rest become zero); the
    wire cost assumes a (4-byte index, 4-byte value) pair per surviving entry.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    total = state_num_parameters(state)
    keep = max(int(round(total * keep_fraction)), 1)
    flat = np.concatenate([np.asarray(values).ravel() for values in state.values()])
    if keep >= total:
        threshold = -np.inf
    else:
        threshold = np.partition(np.abs(flat), total - keep)[total - keep]
    kept = 0
    sparse: State = {}
    for name, values in state.items():
        mask = np.abs(values) >= threshold if np.isfinite(threshold) else np.ones_like(values, dtype=bool)
        sparse[name] = np.where(mask, values, 0.0)
        kept += int(mask.sum())
    payload = kept * (4 + BYTES_PER_FLOAT32)
    return CompressionResult(state=sparse, payload_bytes=payload, baseline_bytes=state_bytes(state))


def quantize_state(state: State, num_bits: int = 8) -> CompressionResult:
    """Uniform per-tensor quantization to ``num_bits`` bits.

    Values are quantized to a uniform grid between each tensor's min and max
    and immediately de-quantized (what the receiver would reconstruct); the
    wire cost is ``num_bits`` per value plus two floats of scale metadata per
    tensor.
    """
    if not 1 <= num_bits <= 16:
        raise ValueError("num_bits must be between 1 and 16")
    levels = 2**num_bits - 1
    quantized: State = {}
    for name, values in state.items():
        array = np.asarray(values, dtype=np.float64)
        low = float(array.min())
        high = float(array.max())
        span = high - low
        if span == 0.0:
            quantized[name] = array.copy()
            continue
        codes = np.round((array - low) / span * levels)
        quantized[name] = low + codes / levels * span
    payload = int(np.ceil(state_num_parameters(state) * num_bits / 8)) + 2 * BYTES_PER_FLOAT32 * len(state)
    return CompressionResult(state=quantized, payload_bytes=payload, baseline_bytes=state_bytes(state))


def compression_error(original: State, compressed: State) -> float:
    """Relative L2 error introduced by a compression scheme."""
    num = 0.0
    denom = 0.0
    for name in original:
        diff = np.asarray(original[name]) - np.asarray(compressed[name])
        num += float(np.sum(diff**2))
        denom += float(np.sum(np.asarray(original[name]) ** 2))
    if denom == 0.0:
        return 0.0
    return float(np.sqrt(num / denom))
