"""Communication cost accounting and update compression.

Decentralized training replaces data movement with parameter movement, so the
practical cost of every algorithm in this package is measured in bytes per
round.  This module provides:

* sizing helpers for model states (parameter counts, real in-memory bytes,
  and bytes at an explicitly chosen wire precision);
* an analytic per-algorithm communication model (uplink/downlink per round
  and per training run) for every algorithm in the registry, which the
  communication benchmark turns into a table;
* a :class:`CommunicationTracker` that records *measured* transfers — the
  transport channel feeds it real payload byte counts;
* two classic update-compression schemes — top-k sparsification and uniform
  quantization — expressed on top of the wire codecs in
  :mod:`repro.fl.transport.codecs`, so the reported payload bytes are the
  size of a payload that was actually encoded.

Sizing conventions
------------------
:func:`state_bytes` with no precision argument sizes a state from each
array's real ``itemsize`` (the pipeline stores float64, so a state costs 8
bytes per value in memory and on an uncompressed wire).  The *analytic*
estimator keeps the paper's float32 wire assumption by passing
``BYTES_PER_FLOAT32`` explicitly, so its numbers stay comparable with the
paper's; measured numbers come from real payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fl.parameters import State

#: Bytes per parameter at single precision (the paper's wire assumption).
BYTES_PER_FLOAT32 = 4


def state_num_parameters(state: State) -> int:
    """Total number of scalar entries in a model state."""
    return int(sum(int(np.asarray(values).size) for values in state.values()))


def state_bytes(state: State, bytes_per_value: Optional[int] = None) -> int:
    """Size of a model state in bytes.

    With ``bytes_per_value=None`` (the default) each array is sized from its
    real ``itemsize`` — a float64 state costs 8 bytes per value, not an
    assumed 4.  Pass an explicit precision (e.g. ``BYTES_PER_FLOAT32``) to
    cost a hypothetical wire format instead.
    """
    if bytes_per_value is None:
        return int(
            sum(int(array.size) * int(array.itemsize) for array in map(np.asarray, state.values()))
        )
    if bytes_per_value <= 0:
        raise ValueError("bytes_per_value must be positive")
    return state_num_parameters(state) * bytes_per_value


@dataclass(frozen=True)
class CommunicationReport:
    """Analytic communication cost of one algorithm for one training run."""

    algorithm: str
    rounds: int
    num_clients: int
    uplink_bytes_per_round: int
    downlink_bytes_per_round: int

    @property
    def total_uplink_bytes(self) -> int:
        return self.uplink_bytes_per_round * self.rounds

    @property
    def total_downlink_bytes(self) -> int:
        return self.downlink_bytes_per_round * self.rounds

    @property
    def total_bytes(self) -> int:
        return self.total_uplink_bytes + self.total_downlink_bytes

    def to_dict(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "rounds": self.rounds,
            "num_clients": self.num_clients,
            "uplink_bytes_per_round": self.uplink_bytes_per_round,
            "downlink_bytes_per_round": self.downlink_bytes_per_round,
            "total_bytes": self.total_bytes,
        }


def estimate_communication(
    algorithm: str,
    state: State,
    num_clients: int,
    rounds: int,
    global_fraction: float = 1.0,
    num_clusters: int = 1,
) -> CommunicationReport:
    """Analytic uplink/downlink model of one algorithm.

    The analytic model costs parameters at the paper's float32 wire
    assumption (``BYTES_PER_FLOAT32``); measured numbers come from the
    transport channel instead.

    Parameters
    ----------
    algorithm:
        One of the registry names (``fedavg``, ``fedprox``, ``fedprox_lg``,
        ``ifca``, ``fedprox_finetune``, ``assigned_clustering``,
        ``fedprox_alpha``, ``fedbn``, ``fedavgm``, ``local``, ``centralized``).
    state:
        A representative model state (for its size).
    global_fraction:
        Fraction of the state that is globally shared (FedProx-LG / FedBN
        ship only this part).
    num_clusters:
        IFCA downlink ships every cluster model to every client.
    """
    if num_clients <= 0 or rounds < 0:
        raise ValueError("num_clients must be positive and rounds non-negative")
    if not 0.0 < global_fraction <= 1.0:
        raise ValueError("global_fraction must be in (0, 1]")
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    size = state_bytes(state, BYTES_PER_FLOAT32)
    shared = int(round(size * global_fraction))
    key = algorithm.lower()

    if key in ("local", "centralized"):
        # Local training never communicates; centralized training ships the
        # data once, not parameters — neither has a per-round parameter cost.
        uplink = downlink = 0
    elif key in ("fedavg", "fedprox", "fedprox_finetune", "fedprox_alpha", "fedavgm"):
        uplink = size * num_clients
        downlink = size * num_clients
    elif key in ("fedprox_lg", "fedbn"):
        uplink = shared * num_clients
        downlink = shared * num_clients
    elif key == "ifca":
        # Every client uploads one model but must receive all cluster models
        # to choose among them.
        uplink = size * num_clients
        downlink = size * num_clusters * num_clients
    elif key == "assigned_clustering":
        uplink = size * num_clients
        downlink = size * num_clients
    else:
        raise ValueError(f"unknown algorithm {algorithm!r} for communication estimation")

    return CommunicationReport(
        algorithm=key,
        rounds=rounds,
        num_clients=num_clients,
        uplink_bytes_per_round=int(uplink),
        downlink_bytes_per_round=int(downlink),
    )


class CommunicationTracker:
    """Records measured parameter transfers during a training run.

    The transport channel calls :meth:`record_upload` /
    :meth:`record_download` with *real payload byte counts*; the
    state-taking convenience loggers size a state from its actual array
    ``itemsize`` (an uncompressed float64 wire).
    """

    def __init__(self):
        self._uplink: List[Tuple[int, int, int]] = []  # (round, client, bytes)
        self._downlink: List[Tuple[int, int, int]] = []

    # -- measured payload bytes -------------------------------------------------
    def record_upload(self, round_index: int, client_id: int, num_bytes: int) -> None:
        """Log one client → server transfer of ``num_bytes`` payload bytes."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._uplink.append((int(round_index), int(client_id), int(num_bytes)))

    def record_download(self, round_index: int, client_id: int, num_bytes: int) -> None:
        """Log one server → client transfer of ``num_bytes`` payload bytes."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._downlink.append((int(round_index), int(client_id), int(num_bytes)))

    # -- state-taking conveniences ----------------------------------------------
    def log_upload(self, round_index: int, client_id: int, state: State) -> int:
        """Log an uncompressed state upload; returns its real byte size."""
        size = state_bytes(state)
        self.record_upload(round_index, client_id, size)
        return size

    def log_download(self, round_index: int, client_id: int, state: State) -> int:
        """Log an uncompressed state download; returns its real byte size."""
        size = state_bytes(state)
        self.record_download(round_index, client_id, size)
        return size

    # -- aggregation --------------------------------------------------------------
    @property
    def total_uplink_bytes(self) -> int:
        return sum(size for _, _, size in self._uplink)

    @property
    def total_downlink_bytes(self) -> int:
        return sum(size for _, _, size in self._downlink)

    @property
    def total_bytes(self) -> int:
        return self.total_uplink_bytes + self.total_downlink_bytes

    @staticmethod
    def _by_round(records: List[Tuple[int, int, int]]) -> Dict[int, int]:
        totals: Dict[int, int] = {}
        for round_index, _, size in records:
            totals[round_index] = totals.get(round_index, 0) + size
        return totals

    def per_round(self) -> Dict[int, int]:
        """Total bytes (both directions) per round index."""
        return self._by_round(self._uplink + self._downlink)

    def per_round_uplink(self) -> Dict[int, int]:
        """Uplink bytes per round index."""
        return self._by_round(self._uplink)

    def per_round_downlink(self) -> Dict[int, int]:
        """Downlink bytes per round index."""
        return self._by_round(self._downlink)

    def per_client(self) -> Dict[int, int]:
        """Total bytes (both directions) per client id."""
        totals: Dict[int, int] = {}
        for _, client_id, size in self._uplink + self._downlink:
            totals[client_id] = totals.get(client_id, 0) + size
        return totals


@dataclass(frozen=True)
class CompressionResult:
    """A compressed (and already de-compressed) state plus its wire cost."""

    state: State
    payload_bytes: int
    baseline_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Baseline bytes divided by compressed bytes (higher is better)."""
        if self.payload_bytes == 0:
            return float("inf")
        return self.baseline_bytes / self.payload_bytes


def topk_sparsify(state: State, keep_fraction: float) -> CompressionResult:
    """Keep exactly the largest-magnitude ``keep_fraction`` of entries.

    A convenience wrapper around
    :class:`~repro.fl.transport.codecs.TopKCodec` with float64 values, so
    the surviving entries keep their exact value (the rest become zero) and
    selection is exact and deterministic: precisely
    ``max(1, round(keep_fraction * total))`` entries survive, magnitude
    ties broken toward the lower flat index.  ``payload_bytes`` is the size
    of the actually encoded (4-byte index, 8-byte value) payload;
    ``baseline_bytes`` is the state's real uncompressed size.
    """
    from repro.fl.transport.codecs import TopKCodec

    codec = TopKCodec(keep_fraction=keep_fraction, value_dtype="float64")
    payload = codec.encode(state)
    return CompressionResult(
        state=codec.decode(payload),
        payload_bytes=payload.num_bytes,
        baseline_bytes=state_bytes(state),
    )


def quantize_state(state: State, num_bits: int = 8) -> CompressionResult:
    """Uniform per-tensor quantization to ``num_bits`` bits.

    A convenience wrapper around
    :class:`~repro.fl.transport.codecs.QuantizationCodec` (without the
    DEFLATE stage, so the payload size is deterministic): values are
    quantized to a uniform grid between each tensor's min and max and the
    returned state is exactly what the receiver reconstructs from the
    packed payload — ``num_bits`` per value plus two float64 scales per
    tensor.
    """
    from repro.fl.transport.codecs import QuantizationCodec

    codec = QuantizationCodec(num_bits=num_bits, deflate=False)
    payload = codec.encode(state)
    return CompressionResult(
        state=codec.decode(payload),
        payload_bytes=payload.num_bytes,
        baseline_bytes=state_bytes(state),
    )


def compression_error(original: State, compressed: State) -> float:
    """Relative L2 error introduced by a compression scheme."""
    num = 0.0
    denom = 0.0
    for name in original:
        diff = np.asarray(original[name]) - np.asarray(compressed[name])
        num += float(np.sum(diff**2))
        denom += float(np.sum(np.asarray(original[name]) ** 2))
    if denom == 0.0:
        return 0.0
    return float(np.sqrt(num / denom))
