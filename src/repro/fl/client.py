"""The federated client.

A client owns its private training and testing data.  The only things that
ever leave the client are model parameter states (and scalar loss summaries),
which is the privacy contract of the paper's decentralized training setting:
"the developer can only receive model parameters from its clients".
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.data.clients import ClientData
from repro.data.dataset import RoutabilityDataset
from repro.fl.config import FLConfig
from repro.fl.parameters import State, clone_state
from repro.fl.trainer import LocalTrainer, StepStatistics, predict_dataset
from repro.metrics.roc import roc_auc_score
from repro.models.base import RoutabilityModel

ModelFactory = Callable[[], RoutabilityModel]


class FederatedClient:
    """One participant of decentralized training."""

    def __init__(
        self,
        client_id: int,
        train_dataset: RoutabilityDataset,
        test_dataset: RoutabilityDataset,
        model_factory: ModelFactory,
        config: FLConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        if len(train_dataset) == 0:
            raise ValueError(f"client {client_id} has no training data")
        self.client_id = int(client_id)
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.config = config
        self._model_factory = model_factory
        self._model = model_factory()
        self._rng = rng if rng is not None else np.random.default_rng(client_id)
        self._trainer = LocalTrainer(
            loss=config.loss,
            optimizer=config.optimizer,
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
            batch_size=config.batch_size,
            rng=self._rng,
        )

    @classmethod
    def from_client_data(
        cls,
        data: ClientData,
        model_factory: ModelFactory,
        config: FLConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> "FederatedClient":
        """Build a federated client from a Table 2 client's data."""
        return cls(
            client_id=data.client_id,
            train_dataset=data.train,
            test_dataset=data.test,
            model_factory=model_factory,
            config=config,
            rng=rng,
        )

    # -- data facts the server is allowed to know --------------------------------
    @property
    def num_samples(self) -> int:
        """Number of training samples ``n_k`` (used as the aggregation weight)."""
        return len(self.train_dataset)

    # -- execution-engine hand-off ------------------------------------------------
    @property
    def rng_state(self) -> dict:
        """The client RNG's bit-generator state (JSON-serializable).

        Execution backends and the checkpoint manager use this to hand RNG
        state between processes / runs, which is what keeps parallel and
        resumed training bit-identical to a serial, uninterrupted run.  The
        trainer shares this generator, so restoring the state here also
        restores batch shuffling.
        """
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    # -- local computation ----------------------------------------------------------
    def local_train(
        self,
        initial_state: State,
        steps: Optional[int] = None,
        proximal_mu: Optional[float] = None,
    ) -> tuple:
        """Train locally starting from ``initial_state``.

        Returns ``(new_state, statistics)``.  The proximal reference is the
        received state, per FedProx.
        """
        steps = steps if steps is not None else self.config.local_steps
        mu = proximal_mu if proximal_mu is not None else self.config.proximal_mu
        self._model.load_state_dict(initial_state)
        reference = clone_state(initial_state) if mu > 0 else None
        stats = self._trainer.train_steps(
            self._model,
            self.train_dataset,
            steps=steps,
            proximal_mu=mu,
            proximal_reference=reference,
        )
        return self._model.state_dict(), stats

    def fine_tune(self, initial_state: State, steps: Optional[int] = None) -> tuple:
        """Personalize ``initial_state`` with plain local steps (no proximal term)."""
        steps = steps if steps is not None else self.config.finetune_steps
        self._model.load_state_dict(initial_state)
        stats = self._trainer.train_steps(self._model, self.train_dataset, steps=steps)
        return self._model.state_dict(), stats

    def training_loss(self, state: State, max_batches: Optional[int] = None) -> float:
        """Loss of ``state`` on this client's training data (IFCA cluster choice)."""
        max_batches = max_batches if max_batches is not None else self.config.ifca_eval_batches
        self._model.load_state_dict(state)
        return self._trainer.evaluate_loss(self._model, self.train_dataset, max_batches=max_batches)

    def evaluate_auc(self, state: State, dataset: Optional[RoutabilityDataset] = None) -> float:
        """ROC AUC of ``state`` on this client's (or a given) test dataset."""
        target = dataset if dataset is not None else self.test_dataset
        if len(target) == 0:
            raise ValueError(f"client {self.client_id} has no test data to evaluate on")
        self._model.load_state_dict(state)
        scores, labels = predict_dataset(self._model, target, batch_size=max(self.config.batch_size, 8))
        return roc_auc_score(labels, scores)

    def initial_state(self) -> State:
        """A fresh model initialization (used by algorithms that need per-client inits)."""
        return self._model_factory().state_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FederatedClient(id={self.client_id}, train={len(self.train_dataset)}, "
            f"test={len(self.test_dataset)})"
        )
