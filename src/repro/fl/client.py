"""The federated client.

A client owns its private training and testing data.  The only things that
ever leave the client are model parameter states (and scalar loss summaries),
which is the privacy contract of the paper's decentralized training setting:
"the developer can only receive model parameters from its clients".
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.data.clients import ClientData
from repro.data.dataset import RoutabilityDataset
from repro.fl.config import FLConfig
from repro.fl.parameters import State, clone_state, flat_model_state
from repro.fl.trainer import LocalTrainer, StepStatistics, predict_dataset
from repro.metrics.roc import roc_auc_score
from repro.models.base import RoutabilityModel

ModelFactory = Callable[[], RoutabilityModel]

#: Seed-stream tag for per-client model initializations (mixed with the
#: client id), kept separate from the training RNG the trainer shares.
_INIT_SEED_TAG = 0x1217


def initial_rng_state(client_id: int) -> dict:
    """The RNG state a fresh :class:`FederatedClient` starts with.

    Lazy client virtualization persists a virtual client's RNG stream across
    materialize/release cycles; before the first materialization the stream
    must equal what an eagerly built client would have, which is this.
    """
    return np.random.default_rng(client_id).bit_generator.state


class FederatedClient:
    """One participant of decentralized training."""

    def __init__(
        self,
        client_id: int,
        train_dataset: RoutabilityDataset,
        test_dataset: RoutabilityDataset,
        model_factory: ModelFactory,
        config: FLConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        if len(train_dataset) == 0:
            raise ValueError(f"client {client_id} has no training data")
        self.client_id = int(client_id)
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.config = config
        self._model_factory = model_factory
        self._model = model_factory()
        self._initial_state: Optional[State] = None
        self._rng = rng if rng is not None else np.random.default_rng(client_id)
        self._trainer = LocalTrainer(
            loss=config.loss,
            optimizer=config.optimizer,
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
            batch_size=config.batch_size,
            rng=self._rng,
            compute_dtype=config.compute_dtype,
        )
        # Switch the resident model once at construction; afterwards every
        # load_state_dict casts the incoming float64 state down in place and
        # every flat_model_state casts back up — the compute-dtype boundary.
        self._model.set_compute_dtype(config.compute_dtype)

    @classmethod
    def from_client_data(
        cls,
        data: ClientData,
        model_factory: ModelFactory,
        config: FLConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> "FederatedClient":
        """Build a federated client from a Table 2 client's data."""
        return cls(
            client_id=data.client_id,
            train_dataset=data.train,
            test_dataset=data.test,
            model_factory=model_factory,
            config=config,
            rng=rng,
        )

    # -- data facts the server is allowed to know --------------------------------
    @property
    def num_samples(self) -> int:
        """Number of training samples ``n_k`` (used as the aggregation weight)."""
        return len(self.train_dataset)

    # -- execution-engine hand-off ------------------------------------------------
    @property
    def rng_state(self) -> dict:
        """The client RNG's bit-generator state (JSON-serializable).

        Execution backends and the checkpoint manager use this to hand RNG
        state between processes / runs, which is what keeps parallel and
        resumed training bit-identical to a serial, uninterrupted run.  The
        trainer shares this generator, so restoring the state here also
        restores batch shuffling.
        """
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    # -- local computation ----------------------------------------------------------
    def local_train(
        self,
        initial_state: State,
        steps: Optional[int] = None,
        proximal_mu: Optional[float] = None,
    ) -> tuple:
        """Train locally starting from ``initial_state``.

        Returns ``(new_state, statistics)``.  The proximal reference is the
        received state, per FedProx.
        """
        steps = steps if steps is not None else self.config.local_steps
        mu = proximal_mu if proximal_mu is not None else self.config.proximal_mu
        self._model.load_state_dict(initial_state)
        reference = clone_state(initial_state) if mu > 0 else None
        stats = self._trainer.train_steps(
            self._model,
            self.train_dataset,
            steps=steps,
            proximal_mu=mu,
            proximal_reference=reference,
        )
        return flat_model_state(self._model), stats

    def fine_tune(self, initial_state: State, steps: Optional[int] = None) -> tuple:
        """Personalize ``initial_state`` with plain local steps (no proximal term)."""
        steps = steps if steps is not None else self.config.finetune_steps
        self._model.load_state_dict(initial_state)
        stats = self._trainer.train_steps(self._model, self.train_dataset, steps=steps)
        return flat_model_state(self._model), stats

    def training_loss(self, state: State, max_batches: Optional[int] = None) -> float:
        """Loss of ``state`` on this client's training data (IFCA cluster choice)."""
        max_batches = max_batches if max_batches is not None else self.config.ifca_eval_batches
        self._model.load_state_dict(state)
        return self._trainer.evaluate_loss(self._model, self.train_dataset, max_batches=max_batches)

    def evaluate_auc(self, state: State, dataset: Optional[RoutabilityDataset] = None) -> float:
        """ROC AUC of ``state`` on this client's (or a given) test dataset."""
        target = dataset if dataset is not None else self.test_dataset
        if len(target) == 0:
            raise ValueError(f"client {self.client_id} has no test data to evaluate on")
        self._model.load_state_dict(state)
        scores, labels = predict_dataset(self._model, target, batch_size=max(self.config.batch_size, 8))
        return roc_auc_score(labels, scores)

    def initial_state(self) -> State:
        """This client's own model initialization (lazy, cached, reproducible).

        Built at most once per client, on first call — not rebuilt on every
        call — and returned as a fresh copy thereafter.  When the factory
        supports explicit seeding (``build_with_seed``, as
        :class:`~repro.fl.SeededModelFactory` does), the seed comes from a
        dedicated per-client stream (derived from the client id), so the
        initialization is a deterministic function of the client —
        independent of how many models anyone else has pulled from the
        shared factory, and without consuming a draw from the training RNG
        the trainer shares (calling this must never perturb batch
        shuffling).  Legacy factories fall back to one plain (lazy) factory
        call.
        """
        if self._initial_state is None:
            seeded_builder = getattr(self._model_factory, "build_with_seed", None)
            if seeded_builder is not None:
                init_rng = np.random.default_rng(
                    np.random.SeedSequence([self.client_id, _INIT_SEED_TAG])
                )
                model = seeded_builder(int(init_rng.integers(0, 2**31 - 1)))
            else:
                model = self._model_factory()
            self._initial_state = flat_model_state(model)
        return clone_state(self._initial_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FederatedClient(id={self.client_id}, train={len(self.train_dataset)}, "
            f"test={len(self.test_dataset)})"
        )
