"""Append-only on-disk message journal backing reconnect-with-resume.

The server journals every dispatched task *before* putting it on a socket,
and journals an ACK record once the matching update has been folded.  A
client that reconnects presents its replay cursor (the highest ``seq`` it
has seen acknowledged); the journal's pending records after that cursor
are exactly the tasks the client may have missed, and they are replayed
byte-for-byte — same pickled carrier, same RNG snapshot — so a resumed
client computes the identical update the uninterrupted run would have.

Records reuse the wire frame codec (:mod:`repro.fl.net.framing`), one
frame per record, so every record is individually CRC-protected and a
crash mid-append leaves a *detectably* truncated tail:

* ``TASK`` record — payload ``pickle((seq, task_body_bytes))``
* ``ACK`` record — payload ``pickle(seq)``

Loading scans each ``client-<id>.journal`` file front to back and stops at
the first undecodable byte, dropping the tail (the record being appended
when the crash hit was, by construction, never acknowledged to anyone).
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Dict, List, Tuple

from repro.fl.net.errors import FrameError, JournalError
from repro.fl.net.framing import FrameReader, encode_frame
from repro.fl.net.messages import MSG_ACK, MSG_TASK


class MessageJournal:
    """Per-client append-only journals under one directory.

    The in-memory pending map (``seq -> task body bytes``, insertion
    ordered) mirrors the on-disk state and serves replay queries without
    touching the disk; the files exist so the map survives a server
    restart.  ``fsync=True`` additionally fsyncs every append (durable
    against power loss, at a large cost per record — loopback tests and
    single-host runs don't need it).
    """

    def __init__(self, directory, fsync: bool = False):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise JournalError(str(directory), f"cannot create directory: {error}") from error
        self.fsync = bool(fsync)
        self._files: Dict[int, object] = {}
        #: client id -> {seq: task body bytes}, insertion == dispatch order.
        self._pending: Dict[int, Dict[int, bytes]] = {}
        #: Highest seq ever journaled per client (dispatched or acked).
        self._high: Dict[int, int] = {}
        #: Bytes dropped from truncated tails at load time (diagnostics).
        self.truncated_bytes = 0
        self._load()

    # -- loading -----------------------------------------------------------------
    def _path(self, client_id: int) -> Path:
        return self.directory / f"client-{int(client_id)}.journal"

    def _load(self) -> None:
        for path in sorted(self.directory.glob("client-*.journal")):
            try:
                client_id = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            self._load_one(client_id, path)

    def _load_one(self, client_id: int, path: Path) -> None:
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise JournalError(str(path), f"cannot read: {error}") from error
        reader = FrameReader()
        pending = self._pending.setdefault(client_id, {})
        try:
            frames = reader.feed(raw)
        except FrameError:
            # Undecodable from some record onward: a crash mid-append (or a
            # torn write).  Everything before the bad offset parsed clean
            # and is kept; the tail was never acknowledged, so drop it.
            reader = FrameReader()
            frames = self._scan_prefix(reader, raw)
        self.truncated_bytes += len(raw) - reader.offset
        for frame_type, payload in frames:
            try:
                if frame_type == MSG_TASK:
                    seq, body = pickle.loads(payload)
                    pending[int(seq)] = bytes(body)
                    self._high[client_id] = max(self._high.get(client_id, 0), int(seq))
                elif frame_type == MSG_ACK:
                    seq = int(pickle.loads(payload))
                    pending.pop(seq, None)
                    self._high[client_id] = max(self._high.get(client_id, 0), seq)
            except Exception as error:
                raise JournalError(str(path), f"undecodable record: {error!r}") from error

    @staticmethod
    def _scan_prefix(reader: FrameReader, raw: bytes) -> List[Tuple[int, bytes]]:
        """Longest cleanly decodable frame prefix of ``raw`` (byte at a time)."""
        frames: List[Tuple[int, bytes]] = []
        for position in range(len(raw)):
            try:
                frames.extend(reader.feed(raw[position : position + 1]))
            except FrameError:
                break
        return frames

    # -- appending ---------------------------------------------------------------
    def _append(self, client_id: int, frame: bytes) -> None:
        handle = self._files.get(client_id)
        if handle is None:
            try:
                handle = open(self._path(client_id), "ab")
            except OSError as error:
                raise JournalError(str(self._path(client_id)), f"cannot open: {error}") from error
            self._files[client_id] = handle
        handle.write(frame)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def record_task(self, client_id: int, seq: int, body: bytes) -> None:
        """Journal a dispatched task (call *before* sending it anywhere)."""
        client_id, seq = int(client_id), int(seq)
        record = pickle.dumps((seq, bytes(body)), protocol=pickle.HIGHEST_PROTOCOL)
        self._append(client_id, encode_frame(MSG_TASK, record))
        self._pending.setdefault(client_id, {})[seq] = bytes(body)
        self._high[client_id] = max(self._high.get(client_id, 0), seq)

    def record_ack(self, client_id: int, seq: int) -> None:
        """Journal that ``seq``'s update is folded; the task leaves replay."""
        client_id, seq = int(client_id), int(seq)
        record = pickle.dumps(seq, protocol=pickle.HIGHEST_PROTOCOL)
        self._append(client_id, encode_frame(MSG_ACK, record))
        self._pending.get(client_id, {}).pop(seq, None)
        self._high[client_id] = max(self._high.get(client_id, 0), seq)

    # -- queries -----------------------------------------------------------------
    def pending(self, client_id: int) -> Dict[int, bytes]:
        """Un-acked task records for one client (``seq -> body``, a copy)."""
        return dict(self._pending.get(int(client_id), {}))

    def pending_after(self, client_id: int, cursor: int) -> List[Tuple[int, bytes]]:
        """Replay set: pending records with ``seq > cursor``, in seq order."""
        pending = self._pending.get(int(client_id), {})
        return sorted(
            ((seq, body) for seq, body in pending.items() if seq > int(cursor)),
            key=lambda item: item[0],
        )

    def high_seq(self, client_id: int) -> int:
        """Highest seq ever journaled for a client (0 if none)."""
        return self._high.get(int(client_id), 0)

    def close(self) -> None:
        files, self._files = self._files, {}
        for handle in files.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def __enter__(self) -> "MessageJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["MessageJournal"]
