"""The asyncio federation server: supervised connection actors + sessions.

Architecture (gridworks-scada style supervised actors):

* A :class:`FederationServer` owns one :class:`ClientSession` per roster
  client.  Sessions are *persistent*: they hold the per-client task
  sequence counter, the pending-result futures, and the journal cursor,
  and they survive any number of connections coming and going.
* Each accepted TCP connection runs one :class:`ConnectionActor` — a
  supervised coroutine that performs the handshake, claims the sessions
  its HELLO names, replays their journaled backlog, then services the
  connection (task sends, update receipts, heartbeats) until it dies.
  An actor failure never touches session state beyond detaching itself.
* Liveness: the actor probes with a :class:`Heartbeat` every
  ``heartbeat_interval`` seconds and declares the peer lost when nothing
  (acks, updates, anything) has arrived for ``client_timeout`` seconds.
* A detached session with pending tasks starts a *reaper* countdown; if no
  reconnect claims the session within ``client_timeout``, every pending
  future resolves to a :class:`WireFailure` whose ``kind`` ("disconnect"
  or "heartbeat") feeds the PR 9 resilience machinery as a first-class
  :class:`~repro.fl.faults.TaskFailure` — socket death is just another
  fault kind to retry from the pre-captured RNG snapshot.

Thread model: everything here runs on one asyncio loop (the wire backend
hosts it in a daemon thread).  The only thread-safe entry points are
:meth:`FederationServer.submit_task`, :meth:`abandon`,
:meth:`network_summary`, and the start/stop/wait wrappers on the backend.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fl.net.errors import FrameError, MessageDecodeError, SessionLost
from repro.fl.net.faults import WireFaultPlan, corrupt_frame
from repro.fl.net.framing import FrameReader, encode_frame
from repro.fl.net.journal import MessageJournal
from repro.fl.net.messages import (
    MSG_GOODBYE,
    MSG_HEARTBEAT,
    MSG_HEARTBEAT_ACK,
    MSG_HELLO,
    MSG_TASK,
    MSG_UPDATE,
    PROTOCOL_VERSION,
    Ack,
    ErrorMessage,
    Goodbye,
    Heartbeat,
    HeartbeatAck,
    Hello,
    TaskEnvelope,
    UpdateEnvelope,
    Welcome,
    decode_message,
    encode_message,
)

logger = logging.getLogger(__name__)

#: Socket read chunk size.
_READ_CHUNK = 1 << 16

#: Counter keys of :meth:`FederationServer.network_summary`, in report order.
NETWORK_COUNTER_KEYS = (
    "dispatched",
    "completed",
    "reconnects",
    "replays",
    "disconnects",
    "heartbeat_losses",
    "decode_failures",
    "stale_updates",
    "injected_disconnects",
    "injected_delays",
    "injected_corruptions",
)


@dataclass
class WireFailure:
    """A network-level task failure, resolved into the pending future.

    The wire analogue of the process pool's ``_WorkerFailure``: a *value*,
    not an exception, so the backend's ``imap_outcomes`` can convert it to
    a :class:`~repro.fl.faults.TaskFailure` of the same ``kind`` without
    ever letting a socket event kill the iterator.  Kinds: ``disconnect``,
    ``heartbeat``, ``decode``, ``timeout``, ``exception``.
    """

    kind: str
    error: str
    traceback: Optional[str] = None


class ClientSession:
    """Persistent per-client server state (outlives any one connection)."""

    def __init__(self, client_id: int):
        self.client_id = int(client_id)
        #: Last task sequence number assigned (monotonic per client).
        self.seq = 0
        #: seq -> concurrent future the backend is waiting on.
        self.pending: Dict[int, concurrent.futures.Future] = {}
        #: The connection actor currently serving this client, if any.
        self.actor: Optional["ConnectionActor"] = None
        #: Whether any connection ever claimed this session (reconnect
        #: accounting: the second claim onward counts as a reconnect).
        self.ever_connected = False
        #: How the last connection was lost ("disconnect" / "heartbeat");
        #: the reaper stamps this kind onto the failures it produces.
        self.loss_kind = "disconnect"
        #: Reaper countdown handle (armed while detached with work pending).
        self.reaper: Optional[asyncio.TimerHandle] = None

    @property
    def connected(self) -> bool:
        return self.actor is not None


class FederationServer:
    """Accepts joiners and brokers task dispatch for the wire backend."""

    def __init__(
        self,
        client_ids: Sequence[int],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 2.0,
        client_timeout: float = 10.0,
        journal_dir=None,
        fault_plan: Optional[WireFaultPlan] = None,
        fingerprint: Optional[Dict[str, object]] = None,
    ):
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be positive, got {heartbeat_interval}")
        if client_timeout <= heartbeat_interval:
            raise ValueError(
                f"client_timeout ({client_timeout}) must exceed heartbeat_interval "
                f"({heartbeat_interval}); liveness needs at least one missed probe"
            )
        self.host = host
        self.port = int(port)
        self.heartbeat_interval = float(heartbeat_interval)
        self.client_timeout = float(client_timeout)
        self.journal_dir = journal_dir
        self.fault_plan = fault_plan
        self.fingerprint = dict(fingerprint) if fingerprint else {}
        self.sessions: Dict[int, ClientSession] = {
            int(client_id): ClientSession(client_id) for client_id in client_ids
        }
        self.counters: Dict[str, int] = {key: 0 for key in NETWORK_COUNTER_KEYS}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.journal: Optional[MessageJournal] = None
        self._tmp_journal = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._claim_event: Optional[asyncio.Event] = None
        self._closing = False

    # -- lifecycle (loop-side) ----------------------------------------------------
    async def start(self) -> int:
        """Bind, start accepting, and return the bound port."""
        self._loop = asyncio.get_event_loop()
        self._claim_event = asyncio.Event()
        if self.journal is None:
            journal_dir = self.journal_dir
            if journal_dir is None:
                import tempfile

                self._tmp_journal = tempfile.TemporaryDirectory(prefix="repro-wire-journal-")
                journal_dir = self._tmp_journal.name
            self.journal = MessageJournal(journal_dir)
        self._server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("federation server listening on %s:%d", self.host, self.port)
        return self.port

    async def stop(self) -> None:
        """Orderly shutdown: GOODBYE to every live peer, then close."""
        self._closing = True
        for session in self.sessions.values():
            if session.reaper is not None:
                session.reaper.cancel()
                session.reaper = None
        actors = {session.actor for session in self.sessions.values() if session.actor}
        for actor in actors:
            await actor.say_goodbye("run complete")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.journal is not None:
            self.journal.close()
        if self._tmp_journal is not None:
            self._tmp_journal.cleanup()
            self._tmp_journal = None

    async def wait_for_clients(self, timeout: Optional[float] = None) -> bool:
        """Wait until every roster session has a live connection."""
        loop = asyncio.get_event_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            # Clear before checking so a claim landing between the check
            # and the wait still wakes the next iteration.
            self._claim_event.clear()
            if all(session.connected for session in self.sessions.values()):
                return True
            remaining = None if deadline is None else deadline - loop.time()
            if remaining is not None and remaining <= 0:
                return False
            try:
                await asyncio.wait_for(self._claim_event.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return False

    # -- thread-safe entry points (called from the backend thread) ----------------
    def submit_task(
        self,
        client_id: int,
        op: str,
        blob: bytes,
        is_wire: bool,
        steps: Optional[int],
        proximal_mu: Optional[float],
        rng_state: Optional[dict],
    ) -> concurrent.futures.Future:
        """Dispatch one task; the future resolves to an
        :class:`UpdateEnvelope` or a :class:`WireFailure`."""
        future: concurrent.futures.Future = concurrent.futures.Future()
        fields = (int(client_id), op, bytes(blob), bool(is_wire), steps, proximal_mu, rng_state)
        self._loop.call_soon_threadsafe(self._schedule_dispatch, fields, future)
        return future

    def abandon(self, future: concurrent.futures.Future, kind: str, error: str) -> None:
        """Give up on a submitted task (backend-side timeout).

        The pending entry is removed and journal-acked so a later reconnect
        will not replay a task nobody is waiting for; a late update for it
        is acknowledged and discarded (``stale_updates``).
        """
        self._loop.call_soon_threadsafe(self._abandon, future, kind, error)

    def network_summary(self) -> Dict[str, int]:
        """Monotonic network accounting (safe to read from any thread)."""
        summary = dict(self.counters)
        summary["bytes_sent"] = self.bytes_sent
        summary["bytes_received"] = self.bytes_received
        if self.journal is not None:
            summary["journal_truncated_bytes"] = self.journal.truncated_bytes
        return summary

    # -- dispatch (loop-side) ------------------------------------------------------
    def _schedule_dispatch(self, fields: tuple, future: concurrent.futures.Future) -> None:
        self._loop.create_task(self._dispatch(fields, future))

    async def _dispatch(self, fields: tuple, future: concurrent.futures.Future) -> None:
        client_id, op, blob, is_wire, steps, proximal_mu, rng_state = fields
        session = self.sessions.get(client_id)
        if session is None:
            future.set_result(WireFailure(kind="disconnect", error=f"unknown client id {client_id}"))
            return
        session.seq += 1
        seq = session.seq
        envelope = TaskEnvelope(
            client_id=client_id,
            seq=seq,
            op=op,
            blob=blob,
            is_wire=is_wire,
            steps=steps,
            proximal_mu=proximal_mu,
            rng_state=rng_state,
        )
        _, body = encode_message(envelope)
        # Journal before any socket touch: once recorded, the task survives
        # every disconnect via replay.
        self.journal.record_task(client_id, seq, body)
        future._wire_ref = (client_id, seq)  # for abandon()
        session.pending[seq] = future
        self.counters["dispatched"] += 1
        if session.actor is not None:
            await session.actor.send_task(client_id, body)
        else:
            self._arm_reaper(session)

    def _abandon(self, future: concurrent.futures.Future, kind: str, error: str) -> None:
        ref = getattr(future, "_wire_ref", None)
        if ref is None:
            return
        client_id, seq = ref
        session = self.sessions.get(client_id)
        if session is not None and session.pending.get(seq) is future:
            session.pending.pop(seq, None)
            self.journal.record_ack(client_id, seq)
        if not future.done():
            future.set_result(WireFailure(kind=kind, error=error))

    # -- session claims / detach / reaping ----------------------------------------
    def claim(self, actor: "ConnectionActor", client_id: int, cursor: int) -> List[Tuple[int, bytes]]:
        """Attach ``actor`` to a session; returns the replay set after ``cursor``."""
        session = self.sessions[client_id]
        if session.actor is not None and session.actor is not actor:
            # Takeover: a rejoining client beat the liveness deadline (the
            # SIGKILL case - the old socket is dead but not yet detected).
            old = session.actor
            logger.info("client %d reconnected; superseding its previous connection", client_id)
            old.release(client_id)
            old.kill()
        if session.reaper is not None:
            session.reaper.cancel()
            session.reaper = None
        if session.ever_connected:
            self.counters["reconnects"] += 1
        session.ever_connected = True
        session.actor = actor
        session.loss_kind = "disconnect"
        replay = self.journal.pending_after(client_id, cursor)
        self.counters["replays"] += len(replay)
        self._claim_event.set()
        return replay

    def detach(self, actor: "ConnectionActor", client_id: int, loss_kind: str) -> None:
        """Detach a dying actor from one of its sessions."""
        session = self.sessions.get(client_id)
        if session is None or session.actor is not actor:
            return
        session.actor = None
        session.loss_kind = loss_kind
        if loss_kind == "heartbeat":
            self.counters["heartbeat_losses"] += 1
        if session.pending:
            # Only a disconnect that strands in-flight work is a fault the
            # resilience layer might see; end-of-run goodbyes don't count.
            self.counters["disconnects"] += 1
            if not self._closing:
                self._arm_reaper(session)
            else:
                self._reap(session)

    def _arm_reaper(self, session: ClientSession) -> None:
        if session.reaper is not None or not session.pending:
            return
        session.reaper = self._loop.call_later(self.client_timeout, self._reap, session)

    def _reap(self, session: ClientSession) -> None:
        """Liveness deadline passed with no reconnect: fail pending tasks."""
        session.reaper = None
        if session.connected:
            return
        kind = session.loss_kind
        pending, session.pending = session.pending, {}
        for seq, future in sorted(pending.items()):
            self.journal.record_ack(session.client_id, seq)
            if not future.done():
                future.set_result(
                    WireFailure(
                        kind=kind,
                        error=(
                            f"client {session.client_id} lost ({kind}) and did not "
                            f"reconnect within {self.client_timeout:g}s; task seq {seq} abandoned"
                        ),
                    )
                )

    # -- update receipt ------------------------------------------------------------
    async def handle_update(self, actor: "ConnectionActor", update: UpdateEnvelope) -> None:
        session = self.sessions.get(int(update.client_id))
        if session is None:
            return
        future = session.pending.pop(update.seq, None)
        self.journal.record_ack(update.client_id, update.seq)
        await actor.send_message(Ack(client_id=update.client_id, seq=update.seq))
        if future is None:
            # A replayed task whose original result already arrived (or was
            # abandoned): acknowledge so the client drops its cache, fold
            # nothing.
            self.counters["stale_updates"] += 1
            return
        self.counters["completed"] += 1
        if update.error is not None:
            future.set_result(
                WireFailure(kind="exception", error=update.error, traceback=update.traceback)
            )
        else:
            future.set_result(update)

    # -- connection acceptance ------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        actor = ConnectionActor(self, reader, writer)
        await actor.run()


class ConnectionActor:
    """One supervised connection: handshake, replay, heartbeats, dispatch."""

    def __init__(self, server: FederationServer, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.server = server
        self._reader = reader
        self._writer = writer
        self._frames = FrameReader()
        self._claimed: List[int] = []
        self._loop = asyncio.get_event_loop()
        self._last_inbound = self._loop.time()
        self._heartbeat_seq = 0
        self._loss_kind = "disconnect"
        self._send_lock = asyncio.Lock()

    # -- low-level sends -----------------------------------------------------------
    async def _send_frame(self, frame: bytes) -> None:
        async with self._send_lock:
            self._writer.write(frame)
            await self._writer.drain()
        self.server.bytes_sent += len(frame)

    async def send_message(self, message) -> None:
        frame_type, body = encode_message(message)
        await self._send_frame(encode_frame(frame_type, body))

    async def send_task(self, client_id: int, body: bytes) -> None:
        """Send one (journaled) task frame, with seeded fault injection."""
        plan = self.server.fault_plan
        frame = encode_frame(MSG_TASK, body)
        if plan is not None:
            decision = plan.draw(client_id)
            if decision.kind == "disconnect":
                self.server.counters["injected_disconnects"] += 1
                logger.info("injected disconnect while dispatching to client %d", client_id)
                self.kill()
                return
            if decision.kind == "delay":
                self.server.counters["injected_delays"] += 1
                await asyncio.sleep(plan.hold_seconds(decision))
            elif decision.kind == "corrupt":
                self.server.counters["injected_corruptions"] += 1
                frame = corrupt_frame(frame, decision.salt)
        try:
            await self._send_frame(frame)
        except (ConnectionError, OSError):
            # The read loop will observe the death and detach; the journal
            # already holds the task for replay.
            pass

    async def say_goodbye(self, reason: str) -> None:
        try:
            await self.send_message(Goodbye(reason=reason))
        except (ConnectionError, OSError):  # pragma: no cover - racing a dead peer
            pass
        self.kill()

    def kill(self) -> None:
        """Close the transport; the read loop unwinds from the EOF."""
        try:
            self._writer.close()
        except Exception:  # pragma: no cover - best-effort close
            pass

    def release(self, client_id: int) -> None:
        """Drop a session claim without counting a disconnect (takeover)."""
        if client_id in self._claimed:
            self._claimed.remove(client_id)

    # -- lifecycle -----------------------------------------------------------------
    async def run(self) -> None:
        peer = self._writer.get_extra_info("peername")
        try:
            hello = await asyncio.wait_for(self._read_hello(), timeout=self.server.client_timeout)
            await self._handshake(hello)
            watchdog = self._loop.create_task(self._heartbeat_loop())
            try:
                await self._read_loop()
            finally:
                watchdog.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await watchdog
        except (SessionLost, asyncio.TimeoutError, ConnectionError, OSError) as error:
            # A heartbeat-loss verdict (stamped by the watchdog) outranks
            # the generic EOF the read loop observes right after the kill.
            if self._loss_kind != "heartbeat":
                self._loss_kind = getattr(error, "kind", "disconnect")
            logger.info("connection %s lost: %r", peer, error)
        except (FrameError, MessageDecodeError) as error:
            self.server.counters["decode_failures"] += 1
            logger.warning("connection %s sent an undecodable stream: %s", peer, error)
        finally:
            for client_id in list(self._claimed):
                self.server.detach(self, client_id, self._loss_kind)
            self._claimed.clear()
            self.kill()

    async def _read_hello(self) -> Hello:
        while True:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                raise SessionLost("disconnect", "peer closed before HELLO")
            self.server.bytes_received += len(chunk)
            frames = self._frames.feed(chunk)
            if frames:
                frame_type, body = frames[0]
                if frame_type != MSG_HELLO:
                    raise MessageDecodeError(frame_type, reason="expected HELLO first")
                # Any pipelined frames after HELLO are handled by the read
                # loop via the shared FrameReader buffer; with one frame per
                # feed round-trip in practice this list has length 1.
                self._early_frames = frames[1:]
                return decode_message(frame_type, body)

    async def _handshake(self, hello: Hello) -> None:
        if hello.protocol_version != PROTOCOL_VERSION:
            await self.send_message(
                ErrorMessage(
                    code="protocol",
                    detail=f"server speaks v{PROTOCOL_VERSION}, client spoke v{hello.protocol_version}",
                )
            )
            raise SessionLost("disconnect", "protocol version mismatch")
        if self.server.fingerprint and hello.fingerprint:
            mismatched = sorted(
                key
                for key in set(self.server.fingerprint) | set(hello.fingerprint)
                if self.server.fingerprint.get(key) != hello.fingerprint.get(key)
            )
            if mismatched:
                await self.send_message(
                    ErrorMessage(
                        code="fingerprint",
                        detail=f"run identity mismatch on {mismatched}",
                    )
                )
                raise SessionLost("disconnect", f"fingerprint mismatch: {mismatched}")
        unknown = [cid for cid in hello.client_ids if int(cid) not in self.server.sessions]
        if unknown:
            await self.send_message(
                ErrorMessage(code="rejected", detail=f"unknown client ids {unknown}")
            )
            raise SessionLost("disconnect", f"unknown client ids {unknown}")
        replays: Dict[int, List[Tuple[int, bytes]]] = {}
        for cid in hello.client_ids:
            cid = int(cid)
            cursor = int(hello.cursors.get(cid, 0))
            replays[cid] = self.server.claim(self, cid, cursor)
            self._claimed.append(cid)
        await self.send_message(
            Welcome(
                heartbeat_interval=self.server.heartbeat_interval,
                client_timeout=self.server.client_timeout,
                replayed={cid: len(items) for cid, items in replays.items()},
            )
        )
        for cid, items in replays.items():
            for _seq, body in items:
                await self.send_task(cid, body)

    async def _read_loop(self) -> None:
        for frame_type, body in getattr(self, "_early_frames", ()):
            await self._handle_frame(frame_type, body)
        while True:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                raise SessionLost("disconnect", "peer closed the connection")
            self.server.bytes_received += len(chunk)
            self._last_inbound = self._loop.time()
            for frame_type, body in self._frames.feed(chunk):
                await self._handle_frame(frame_type, body)

    async def _handle_frame(self, frame_type: int, body: bytes) -> None:
        if frame_type == MSG_UPDATE:
            update = decode_message(frame_type, body)
            await self.server.handle_update(self, update)
        elif frame_type == MSG_HEARTBEAT_ACK:
            pass  # _last_inbound already refreshed by the read loop
        elif frame_type == MSG_HEARTBEAT:
            probe = decode_message(frame_type, body)
            await self.send_message(HeartbeatAck(seq=probe.seq))
        elif frame_type == MSG_GOODBYE:
            raise SessionLost("disconnect", "peer said goodbye")
        else:
            raise MessageDecodeError(frame_type, reason="unexpected frame type mid-session")

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.server.heartbeat_interval)
            silent = self._loop.time() - self._last_inbound
            if silent > self.server.client_timeout:
                self._loss_kind = "heartbeat"
                for cid in self._claimed:
                    session = self.server.sessions.get(cid)
                    if session is not None:
                        session.loss_kind = "heartbeat"
                self.kill()
                return
            self._heartbeat_seq += 1
            try:
                await self.send_message(Heartbeat(seq=self._heartbeat_seq))
            except (ConnectionError, OSError):
                return


__all__ = [
    "ClientSession",
    "ConnectionActor",
    "FederationServer",
    "NETWORK_COUNTER_KEYS",
    "WireFailure",
]
