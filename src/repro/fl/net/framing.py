"""Length-prefixed, CRC-framed wire format (sans-io).

Every message of the federation protocol travels as one frame::

    +-------+------+----------------+---------+-------+
    | magic | type | length (u32 BE)| payload | crc32 |
    | 2 B   | 1 B  | 4 B            | len B   | 4 B   |
    +-------+------+----------------+---------+-------+

The CRC-32 covers ``type + length + payload`` (everything except the magic,
whose corruption is caught by the magic check itself), so a flipped byte
anywhere in a frame is rejected before the payload is ever interpreted.

The codec is *sans-io*: :func:`encode_frame` produces bytes and
:class:`FrameReader` consumes arbitrarily chunked bytes, so the same state
machine serves the asyncio sockets, the on-disk journal, and the fuzz tests.
Three properties the fuzz suite pins down:

never hang
    A reader either yields a complete frame, raises a typed
    :class:`~repro.fl.net.errors.FrameError`, or asks for more bytes — and
    an *oversized* length prefix raises immediately, without waiting for
    the (unbounded) payload it announces.
chunking invariance
    Feeding a byte stream one byte at a time, in random chunks, or all at
    once yields the identical frame sequence (or the identical error at
    the identical offset).
fail fast, fail typed
    Garbage raises :class:`FrameError` with a closed-vocabulary ``reason``
    — never a bare ``struct.error``/``IndexError``, and never a silently
    skipped frame.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

from repro.fl.net.errors import FrameError

#: Frame preamble; deliberately asymmetric bytes so a shifted/garbled stream
#: cannot resynchronize on it by accident.
MAGIC = b"\xf7\x4c"

#: ``type + length`` packed layout (after the magic).
_HEAD = struct.Struct(">BI")

#: Bytes before the payload: magic + type + length.
HEADER_BYTES = len(MAGIC) + _HEAD.size

#: Bytes after the payload: the CRC-32 trailer.
TRAILER_BYTES = 4

#: Hard bound on a frame's payload size (64 MiB).  Large enough for any
#: uncompressed model state this project ships, small enough that a
#: corrupted (or hostile) length prefix fails immediately instead of
#: making the reader buffer gigabytes waiting for a payload that will
#: never arrive.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024


def frame_crc(frame_type: int, payload: bytes) -> int:
    """The CRC-32 a well-formed frame carries (over type + length + payload)."""
    head = _HEAD.pack(frame_type & 0xFF, len(payload))
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


def encode_frame(frame_type: int, payload: bytes, max_payload_bytes: int = MAX_PAYLOAD_BYTES) -> bytes:
    """Encode one frame; the inverse of what :class:`FrameReader` accepts."""
    if not 0 <= frame_type <= 0xFF:
        raise ValueError(f"frame type must fit one byte, got {frame_type}")
    payload = bytes(payload)
    if len(payload) > max_payload_bytes:
        raise FrameError(
            "oversized",
            detail=f"payload of {len(payload)} bytes exceeds the {max_payload_bytes}-byte frame bound",
        )
    head = _HEAD.pack(frame_type, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF
    return MAGIC + head + payload + struct.pack(">I", crc)


class FrameReader:
    """Incremental frame parser over an arbitrarily chunked byte stream.

    Feed bytes as they arrive; each :meth:`feed` returns the frames that
    became complete, as ``(frame_type, payload)`` pairs.  A malformed
    stream raises :class:`FrameError` and poisons the reader — once the
    framing is lost there is no trustworthy way to resynchronize, so the
    connection (or journal scan) must be abandoned.  :attr:`offset` is the
    stream position of the frame currently being parsed, which makes error
    reports (and journal-truncation decisions) exact.
    """

    def __init__(self, max_payload_bytes: int = MAX_PAYLOAD_BYTES):
        self.max_payload_bytes = int(max_payload_bytes)
        self._buffer = bytearray()
        #: Stream offset of the first byte in ``_buffer``.
        self.offset = 0
        #: Completed frames so far (diagnostics / tests).
        self.frames_decoded = 0
        self._error: Optional[FrameError] = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes fed but not yet consumed by a completed frame."""
        return len(self._buffer)

    def _fail(self, reason: str, detail: str = "") -> FrameError:
        error = FrameError(reason, offset=self.offset, detail=detail)
        self._error = error
        raise error

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Consume ``data``; return every frame it completed, in order."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        frames: List[Tuple[int, bytes]] = []
        while True:
            if len(self._buffer) < len(MAGIC):
                # Not enough to check the magic yet -- unless what we do
                # have already disagrees with it (fail on the first bad
                # byte, not once a full header happens to arrive).
                if self._buffer and not MAGIC.startswith(bytes(self._buffer[: len(MAGIC)])):
                    self._fail("bad magic", detail=f"got 0x{bytes(self._buffer).hex()}")
                return frames
            if bytes(self._buffer[: len(MAGIC)]) != MAGIC:
                self._fail("bad magic", detail=f"got 0x{bytes(self._buffer[:len(MAGIC)]).hex()}")
            if len(self._buffer) < HEADER_BYTES:
                return frames
            frame_type, length = _HEAD.unpack_from(self._buffer, len(MAGIC))
            if length > self.max_payload_bytes:
                # Reject before waiting for the announced payload: this is
                # what keeps a corrupted length prefix from hanging the
                # reader (or ballooning its buffer) forever.
                self._fail(
                    "oversized",
                    detail=f"length prefix {length} exceeds the {self.max_payload_bytes}-byte bound",
                )
            total = HEADER_BYTES + length + TRAILER_BYTES
            if len(self._buffer) < total:
                return frames
            payload = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
            (crc,) = struct.unpack_from(">I", self._buffer, HEADER_BYTES + length)
            expected = frame_crc(frame_type, payload)
            if crc != expected:
                self._fail(
                    "crc mismatch",
                    detail=f"expected 0x{expected:08X}, got 0x{crc:08X}",
                )
            del self._buffer[:total]
            self.offset += total
            self.frames_decoded += 1
            frames.append((frame_type, payload))

    def finish(self) -> None:
        """Declare end-of-stream; leftover bytes mean a truncated frame."""
        if self._error is not None:
            raise self._error
        if self._buffer:
            self._fail("truncated", detail=f"{len(self._buffer)} byte(s) of partial frame at end of stream")


__all__ = [
    "HEADER_BYTES",
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "TRAILER_BYTES",
    "FrameReader",
    "encode_frame",
    "frame_crc",
]
