"""Deterministic frame-level network fault injection.

The wire analogue of :class:`repro.fl.faults.FaultPlan`: every *task send*
on the server draws a seeded decision for the destination client, using the
same counter-based ``SeedSequence`` idiom (``[seed, tag, client key, draw
counter]``), so a chaos loopback run injects the identical drop/delay/
corruption sequence no matter how the event loop interleaves connections —
and heals to the identical final model.

Three fault kinds, all applied at the frame layer (below the message
vocabulary, above the socket):

``disconnect``
    The connection is closed instead of sending the frame.  The task is
    already journaled, so the client's reconnect replays it — the healing
    path the chaos tests pin down.
``delay``
    The send is withheld for a deterministic duration (straggling without
    the scheduler's virtual clock: this one is real wall time).
``corrupt``
    One byte of the encoded frame is flipped (salt-addressed, like the
    supervisor's payload corruption).  The peer's CRC check rejects the
    frame, the peer drops the connection, and replay heals it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: Domain-separation tag for wire fault draws (disjoint from the execution
#: fault plan's 0x4FA7 and every other seed stream in the project).
WIRE_FAULT_SEED_TAG = 0x37E1

#: Wire fault kinds in cumulative-threshold order.
WIRE_FAULT_KINDS = ("disconnect", "delay", "corrupt")


@dataclass(frozen=True)
class WireFaultDecision:
    """One draw: the kind to inject (``None`` = deliver cleanly) and a salt.

    The salt picks the flipped byte for ``corrupt`` and scales the hold
    time for ``delay``.
    """

    kind: Optional[str]
    salt: int = 0


class WireFaultPlan:
    """Seeded per-client frame fault probabilities.

    Parameters mirror :class:`~repro.fl.faults.FaultPlan`: per-send
    probabilities in ``[0, 1]`` summing to at most 1, plus the base seed
    and the maximum ``delay`` hold time in (real) seconds.
    """

    def __init__(
        self,
        disconnect_rate: float = 0.0,
        delay_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        delay_seconds: float = 0.05,
        seed: int = 0,
    ):
        rates = {
            "disconnect": float(disconnect_rate),
            "delay": float(delay_rate),
            "corrupt": float(corrupt_rate),
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"wire fault {kind} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise ValueError(f"wire fault rates must sum to at most 1, got {sum(rates.values()):g}")
        if delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {delay_seconds}")
        self.rates = rates
        self.delay_seconds = float(delay_seconds)
        self.seed = int(seed)
        self._draws: Dict[str, int] = {}
        self._injected: Dict[str, int] = {kind: 0 for kind in WIRE_FAULT_KINDS}

    @property
    def any_faults(self) -> bool:
        """Whether any wire fault kind has a nonzero probability."""
        return any(rate > 0.0 for rate in self.rates.values())

    def injected_counts(self) -> Dict[str, int]:
        """Per-kind counts of wire faults injected so far (a copy)."""
        return dict(self._injected)

    def draw(self, client_id) -> WireFaultDecision:
        """The next decision for a task send to ``client_id``.

        Counter-based like the execution fault plan: the n-th draw for a
        client is a pure function of ``(seed, client_id, n)``, independent
        of connection interleaving, so replays after a reconnect re-roll
        deterministically (an injected disconnect can heal on replay).
        """
        if not self.any_faults:
            return WireFaultDecision(kind=None)
        key = str(client_id)
        counter = self._draws.get(key, 0)
        self._draws[key] = counter + 1
        entropy = [self.seed, WIRE_FAULT_SEED_TAG, _client_key(client_id), counter]
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        uniform = float(rng.uniform())
        threshold = 0.0
        for kind in WIRE_FAULT_KINDS:
            threshold += self.rates[kind]
            if uniform < threshold:
                self._injected[kind] += 1
                salt = int(rng.integers(0, 2**31 - 1))
                return WireFaultDecision(kind=kind, salt=salt)
        return WireFaultDecision(kind=None)

    def hold_seconds(self, decision: WireFaultDecision) -> float:
        """Deterministic hold time for a ``delay`` decision."""
        if decision.kind != "delay" or self.delay_seconds <= 0:
            return 0.0
        # Salt-derived fraction in (0, 1]; cheap and reproducible.
        fraction = ((decision.salt % 1000) + 1) / 1000.0
        return self.delay_seconds * fraction

    def describe(self) -> Dict[str, float]:
        """Static identity of the plan (rates + seed)."""
        summary: Dict[str, float] = {f"{kind}_rate": rate for kind, rate in self.rates.items()}
        summary["delay_seconds"] = self.delay_seconds
        summary["seed"] = self.seed
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        active = {kind: rate for kind, rate in self.rates.items() if rate > 0.0}
        return f"WireFaultPlan(seed={self.seed}, rates={active})"


def corrupt_frame(frame: bytes, salt: int) -> bytes:
    """Flip one salt-addressed byte of an encoded frame.

    Any position trips the reader: a flipped magic byte fails the magic
    check, and a flip anywhere else fails the CRC — which is the point.
    """
    if not frame:
        return frame
    data = bytearray(frame)
    position = salt % len(data)
    data[position] ^= ((salt >> 7) % 255) + 1
    return bytes(data)


def _client_key(client_id) -> int:
    """Stable non-negative integer key for a client id (process-stable)."""
    return zlib.crc32(str(client_id).encode("utf-8"))


__all__ = [
    "WIRE_FAULT_KINDS",
    "WIRE_FAULT_SEED_TAG",
    "WireFaultDecision",
    "WireFaultPlan",
    "corrupt_frame",
]
