"""Typed errors of the wire-level federation runtime.

Everything that can go wrong on the wire raises (or is reported as) one of
these, mirroring the transport layer's :class:`TransportDecodeError` style:
machine-readable fields first, a formatted message second, so tests and the
resilience layer can dispatch on *what* failed without parsing strings.
"""

from __future__ import annotations

from typing import Optional


class WireProtocolError(ValueError):
    """Base class for every wire-protocol violation."""


class FrameError(WireProtocolError):
    """A byte stream violated the frame format.

    ``reason`` is one of a small closed vocabulary (``"bad magic"``,
    ``"oversized"``, ``"crc mismatch"``, ``"truncated"``) so fuzz tests can
    assert the *class* of failure deterministically; ``offset`` is the
    stream offset (bytes consumed by previously accepted frames included)
    at which the offending frame started.
    """

    def __init__(self, reason: str, *, offset: int = 0, detail: str = ""):
        self.reason = reason
        self.offset = int(offset)
        self.detail = detail
        message = f"frame error at byte {offset}: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class MessageDecodeError(WireProtocolError):
    """A structurally valid frame carried an undecodable message body.

    Raised when the payload fails to unpickle or decodes to an object of
    the wrong type for its frame-type byte.  The CRC check runs *before*
    body decoding, so reaching this error means the bytes arrived intact
    but the peer (or an injected fault) produced garbage.
    """

    def __init__(self, frame_type: int, *, reason: str):
        self.frame_type = int(frame_type)
        self.reason = reason
        super().__init__(f"undecodable message body for frame type 0x{frame_type:02X}: {reason}")


class HandshakeError(WireProtocolError):
    """The HELLO/WELCOME exchange failed (version, identity, or fingerprint).

    ``code`` is a short machine-readable slug (``"protocol"``,
    ``"fingerprint"``, ``"rejected"``) so joiners can decide whether a
    reconnect could ever succeed (it cannot — handshake failures are
    permanent, unlike socket drops).
    """

    def __init__(self, code: str, detail: str = ""):
        self.code = code
        self.detail = detail
        message = f"handshake failed ({code})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class SessionLost(ConnectionError):
    """The peer went away mid-conversation (socket death or liveness loss).

    A :class:`ConnectionError` rather than a protocol error: losing a peer
    is an expected runtime event the reconnect loop handles, not a bug in
    the byte stream.  ``kind`` says how the peer was lost (``"disconnect"``
    for socket death, ``"heartbeat"`` for a missed liveness deadline).
    """

    def __init__(self, kind: str, detail: str = ""):
        self.kind = kind
        self.detail = detail
        message = f"session lost ({kind})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class JournalError(WireProtocolError):
    """A message journal could not be read or written.

    Only *structural* problems raise (an unwritable directory, a record
    that fails its CRC mid-file); a truncated final record — the normal
    signature of a crash mid-append — is silently dropped by the loader
    instead, because the sender never got an acknowledgment for it anyway.
    """

    def __init__(self, path: str, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"journal {path}: {reason}")


__all__ = [
    "FrameError",
    "HandshakeError",
    "JournalError",
    "MessageDecodeError",
    "SessionLost",
    "WireProtocolError",
]
