"""The federation joiner: a client-side runtime with reconnect-and-resume.

A joiner process owns one or more :class:`~repro.fl.FederatedClient`
objects (rebuilt deterministically from the same preset / seed / corpus
cache the server used) and services the server's task stream:

* **handshake** — HELLO carries the client ids, protocol version, the run
  fingerprint, and a per-client *cursor* (highest server-acknowledged task
  seq); the server replays everything journaled after it.
* **execution** — each :class:`TaskEnvelope` is the process-pool worker
  payload verbatim: set the client's RNG state from the envelope, run
  :func:`~repro.fl.execution.run_client_task`, capture the RNG state, and
  ship an :class:`UpdateEnvelope` back.  Training runs in a thread-pool
  executor so the asyncio loop keeps answering heartbeats mid-step.
* **resume without re-training** — computed-but-unacknowledged updates
  stay in an in-memory cache keyed ``(client id, seq)``; when a replayed
  task arrives for a cached seq the cached update is resent as-is
  (``cache_hits`` counts these).  A task that *does* re-run is harmless
  for bit-parity either way: the envelope carries the RNG snapshot, so a
  re-run reproduces the identical update.
* **reconnect loop** — connection refused, socket death, frame errors,
  and liveness silence all funnel into one retry loop with a fixed delay;
  only a typed server rejection (protocol / fingerprint / unknown ids) is
  permanent.

Test/chaos knobs: ``drop_after=N`` closes the transport once, upon
receiving the N-th task (a seeded "network blip" the CI wire-smoke job
uses); ``kill_after=N`` SIGKILLs the *process* after sending the N-th
update (the SIGKILL chaos test — no cleanup, no goodbye, exactly like a
real client host dying).
"""

from __future__ import annotations

import asyncio
import logging
import os
import pickle
import signal
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fl.execution.backend import ClientTask, run_client_task
from repro.fl.net.errors import FrameError, HandshakeError, MessageDecodeError, SessionLost
from repro.fl.net.framing import FrameReader, encode_frame
from repro.fl.net.messages import (
    MSG_ACK,
    MSG_ERROR,
    MSG_GOODBYE,
    MSG_HEARTBEAT,
    MSG_HEARTBEAT_ACK,
    MSG_TASK,
    MSG_WELCOME,
    Goodbye,
    HeartbeatAck,
    Hello,
    TaskEnvelope,
    UpdateEnvelope,
    decode_message,
    encode_message,
)

logger = logging.getLogger(__name__)

_READ_CHUNK = 1 << 16


@dataclass
class JoinReport:
    """What one joiner run did (printed by ``repro join``)."""

    tasks_run: int = 0
    updates_sent: int = 0
    cache_hits: int = 0
    reconnects: int = 0
    replays_received: int = 0
    acks: int = 0
    heartbeats_answered: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    drops_simulated: int = 0
    cursors: Dict[int, int] = field(default_factory=dict)


class FederationClientRunner:
    """Drives one joiner process until the server says goodbye."""

    def __init__(
        self,
        clients,
        host: str,
        port: int,
        *,
        fingerprint: Optional[Dict[str, object]] = None,
        reconnect_delay: float = 0.5,
        max_reconnects: int = 60,
        drop_after: Optional[int] = None,
        kill_after: Optional[int] = None,
    ):
        if not clients:
            raise ValueError("a joiner needs at least one federated client")
        self._by_id = {int(client.client_id): client for client in clients}
        if len(self._by_id) != len(clients):
            raise ValueError("duplicate client ids in the joiner roster")
        self.host = host
        self.port = int(port)
        self.fingerprint = dict(fingerprint) if fingerprint else {}
        self.reconnect_delay = float(reconnect_delay)
        self.max_reconnects = int(max_reconnects)
        self.drop_after = drop_after
        self.kill_after = kill_after
        self.report = JoinReport(cursors={cid: 0 for cid in self._by_id})
        #: (client id, seq) -> computed UpdateEnvelope awaiting an ACK.
        self._cache: Dict[Tuple[int, int], UpdateEnvelope] = {}
        self._tasks_seen = 0
        self._dropped_once = False
        self._done = False
        self._queue: Optional[asyncio.Queue] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._heartbeat_interval = 2.0
        self._client_timeout = 10.0

    # -- entry point ---------------------------------------------------------------
    async def run(self) -> JoinReport:
        """Serve the federation until GOODBYE; returns the join report."""
        self._queue = asyncio.Queue()
        worker = asyncio.get_event_loop().create_task(self._worker_loop())
        attempts = 0
        try:
            while not self._done:
                try:
                    await self._serve_once()
                    attempts = 0
                except HandshakeError:
                    raise
                except (
                    SessionLost,
                    FrameError,
                    MessageDecodeError,
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                ) as error:
                    if self._done:
                        break
                    attempts += 1
                    if attempts > self.max_reconnects:
                        raise SessionLost(
                            "disconnect",
                            f"gave up after {attempts - 1} reconnect attempts: {error!r}",
                        )
                    self.report.reconnects += 1
                    logger.info(
                        "connection lost (%r); reconnecting in %.1fs (attempt %d/%d)",
                        error,
                        self.reconnect_delay,
                        attempts,
                        self.max_reconnects,
                    )
                    await asyncio.sleep(self.reconnect_delay)
        finally:
            worker.cancel()
            self._close_writer()
        return self.report

    # -- one connection ------------------------------------------------------------
    async def _serve_once(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        frames = FrameReader()
        try:
            await self._send(
                Hello(
                    client_ids=tuple(sorted(self._by_id)),
                    cursors=dict(self.report.cursors),
                    fingerprint=dict(self.fingerprint),
                )
            )
            welcome = await self._expect_welcome(reader, frames)
            self._heartbeat_interval = float(welcome.heartbeat_interval)
            self._client_timeout = float(welcome.client_timeout)
            self.report.replays_received += sum(welcome.replayed.values())
            await self._read_loop(reader, frames)
        finally:
            self._close_writer()

    async def _expect_welcome(self, reader, frames: FrameReader):
        deadline = self._client_timeout
        while True:
            chunk = await asyncio.wait_for(reader.read(_READ_CHUNK), timeout=deadline)
            if not chunk:
                raise SessionLost("disconnect", "server closed during handshake")
            self.report.bytes_received += len(chunk)
            decoded = frames.feed(chunk)
            if not decoded:
                continue
            frame_type, body = decoded[0]
            if frame_type == MSG_ERROR:
                error = decode_message(frame_type, body)
                raise HandshakeError(error.code, error.detail)
            if frame_type != MSG_WELCOME:
                raise MessageDecodeError(frame_type, reason="expected WELCOME (or ERROR) after HELLO")
            self._pending_frames = decoded[1:]
            return decode_message(frame_type, body)

    async def _read_loop(self, reader, frames: FrameReader) -> None:
        # Liveness from the client's side: the server probes every
        # heartbeat_interval, so a silence longer than the liveness deadline
        # means the server (or the path to it) is gone.
        timeout = self._client_timeout + self._heartbeat_interval
        for frame_type, body in getattr(self, "_pending_frames", ()):
            await self._handle_frame(frame_type, body)
        self._pending_frames = ()
        while not self._done:
            chunk = await asyncio.wait_for(reader.read(_READ_CHUNK), timeout=timeout)
            if not chunk:
                raise SessionLost("disconnect", "server closed the connection")
            self.report.bytes_received += len(chunk)
            for frame_type, body in frames.feed(chunk):
                await self._handle_frame(frame_type, body)

    async def _handle_frame(self, frame_type: int, body: bytes) -> None:
        if frame_type == MSG_TASK:
            envelope = decode_message(frame_type, body)
            self._tasks_seen += 1
            if (
                self.drop_after is not None
                and not self._dropped_once
                and self._tasks_seen >= int(self.drop_after)
            ):
                # Seeded network blip: close the transport once, *before*
                # executing this task.  The server journals every task, so
                # the reconnect replays it and the run heals bit-identically.
                self._dropped_once = True
                self.report.drops_simulated += 1
                logger.info("simulating a network drop after task %d", self._tasks_seen)
                raise SessionLost("disconnect", "simulated drop (--drop-after)")
            key = (int(envelope.client_id), int(envelope.seq))
            if key in self._cache:
                # Replayed task whose update we already computed: resume
                # without re-training.
                self.report.cache_hits += 1
                await self._send_update(self._cache[key])
                return
            await self._queue.put(envelope)
        elif frame_type == MSG_ACK:
            ack = decode_message(frame_type, body)
            cid, seq = int(ack.client_id), int(ack.seq)
            self.report.acks += 1
            self.report.cursors[cid] = max(self.report.cursors.get(cid, 0), seq)
            self._cache.pop((cid, seq), None)
        elif frame_type == MSG_HEARTBEAT:
            probe = decode_message(frame_type, body)
            self.report.heartbeats_answered += 1
            await self._send(HeartbeatAck(seq=probe.seq))
        elif frame_type == MSG_HEARTBEAT_ACK:
            pass
        elif frame_type == MSG_GOODBYE:
            self._done = True
        elif frame_type == MSG_ERROR:
            error = decode_message(frame_type, body)
            raise HandshakeError(error.code, error.detail)
        else:
            raise MessageDecodeError(frame_type, reason="unexpected frame type mid-session")

    # -- task execution ------------------------------------------------------------
    async def _worker_loop(self) -> None:
        """Sequentially executes queued tasks off the event loop's thread."""
        loop = asyncio.get_event_loop()
        while True:
            envelope = await self._queue.get()
            update = await loop.run_in_executor(None, self._execute, envelope)
            self._cache[(int(envelope.client_id), int(envelope.seq))] = update
            self.report.tasks_run += 1
            await self._send_update(update)

    def _execute(self, envelope: TaskEnvelope) -> UpdateEnvelope:
        """Run one task; mirrors the process pool's ``_worker_run_task``."""
        client = None
        try:
            client = self._by_id[int(envelope.client_id)]
            blob = pickle.loads(envelope.blob)
            if envelope.rng_state is not None:
                client.rng_state = envelope.rng_state
            if envelope.is_wire:
                task = ClientTask(
                    client_index=0,
                    wire=blob,
                    op=envelope.op,
                    steps=envelope.steps,
                    proximal_mu=envelope.proximal_mu,
                )
            else:
                task = ClientTask(
                    client_index=0,
                    state=blob,
                    op=envelope.op,
                    steps=envelope.steps,
                    proximal_mu=envelope.proximal_mu,
                )
            new_state, upload_payload, stats = run_client_task(client, task)
            rng_state = client.rng_state
        except Exception as error:
            # Ship the failure back as data (the _WorkerFailure idiom): a
            # client-side exception must reach the supervisor as a typed
            # TaskFailure, not as a dead connection.
            return UpdateEnvelope(
                client_id=int(envelope.client_id),
                seq=int(envelope.seq),
                error=repr(error),
                traceback=traceback_module.format_exc(),
            )
        return UpdateEnvelope(
            client_id=int(envelope.client_id),
            seq=int(envelope.seq),
            state=new_state,
            payload=upload_payload,
            stats=stats,
            rng_state=rng_state,
        )

    async def _send_update(self, update: UpdateEnvelope) -> None:
        try:
            await self._send(update)
        except (ConnectionError, OSError):
            # Connection died under us; the update stays cached and is
            # resent when the reconnect replays its task.
            return
        self.report.updates_sent += 1
        if self.kill_after is not None and self.report.updates_sent >= int(self.kill_after):
            # Chaos knob: die like a real host -- no goodbye, no cleanup.
            logger.info("SIGKILLing self after %d updates (--kill-after)", self.report.updates_sent)
            os.kill(os.getpid(), signal.SIGKILL)

    async def _send(self, message) -> None:
        writer = self._writer
        if writer is None or writer.is_closing():
            raise ConnectionResetError("no live connection")
        frame_type, body = encode_message(message)
        frame = encode_frame(frame_type, body)
        writer.write(frame)
        await writer.drain()
        self.report.bytes_sent += len(frame)

    def _close_writer(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass


def run_client(
    clients,
    host: str,
    port: int,
    *,
    fingerprint: Optional[Dict[str, object]] = None,
    reconnect_delay: float = 0.5,
    max_reconnects: int = 60,
    drop_after: Optional[int] = None,
    kill_after: Optional[int] = None,
) -> JoinReport:
    """Synchronous wrapper: join the federation and serve until goodbye."""
    runner = FederationClientRunner(
        clients,
        host,
        port,
        fingerprint=fingerprint,
        reconnect_delay=reconnect_delay,
        max_reconnects=max_reconnects,
        drop_after=drop_after,
        kill_after=kill_after,
    )
    return asyncio.run(runner.run())


__all__ = ["FederationClientRunner", "JoinReport", "run_client"]
