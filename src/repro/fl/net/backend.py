"""The ``wire`` execution backend: client tasks run in remote joiner processes.

:class:`WireBackend` conforms to the :class:`~repro.fl.execution.backend
.ExecutionBackend` contract (``imap_outcomes`` yields one outcome per task
in task order, never raising per task) but dispatches every task over the
framed TCP protocol instead of a local pool.  It hosts the asyncio
:class:`~repro.fl.net.server.FederationServer` on a daemon thread and
bridges the two worlds with ``concurrent.futures.Future``:

* payloads are the process-pool worker tuples verbatim — each distinct
  state carrier is pickled **once** per broadcast (the ``_payloads`` dedup)
  and the client's RNG state rides along, comes back trained, and is
  written into the roster client — which is what keeps a wire run
  bit-identical to a serial one;
* a network-level failure (socket death past the liveness deadline,
  heartbeat loss, undecodable stream, backend-side timeout) resolves the
  future to a :class:`~repro.fl.net.server.WireFailure`, which is converted
  here into a :class:`~repro.fl.faults.TaskFailure` of the same ``kind`` —
  so the PR 9 resilience machinery retries socket death from its
  pre-captured RNG snapshot exactly like a worker crash.
"""

from __future__ import annotations

import asyncio
import logging
import pickle
import threading
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.fl.execution.backend import (
    ClientTask,
    ClientUpdate,
    ExecutionBackend,
    _check_one_task_per_client,
)
from repro.fl.faults.errors import TaskFailure
from repro.fl.net.faults import WireFaultPlan
from repro.fl.net.server import FederationServer, WireFailure
from repro.utils.threadpools import BLAS_AUTO, BlasPolicy

logger = logging.getLogger(__name__)


class WireBackend(ExecutionBackend):
    """Dispatches one round's client tasks to connected joiner processes.

    The server starts lazily — on :meth:`listen` (the ``repro serve`` path,
    which wants the bound port before any round runs) or on the first
    :meth:`imap_outcomes` call — and stays up across rounds; sessions,
    journal, and counters persist for the whole run.

    Parameters mirror the CLI: ``host``/``port`` to bind (port 0 picks a
    free one, readable from ``self.port`` after listen), the heartbeat
    cadence and liveness deadline, an optional on-disk journal directory
    (a temporary one otherwise), an optional :class:`WireFaultPlan` for
    chaos runs, and the run-identity ``fingerprint`` joiners must match.
    """

    name = "wire"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 2.0,
        client_timeout: float = 10.0,
        journal_dir=None,
        fault_plan: Optional[WireFaultPlan] = None,
        fingerprint: Optional[Dict[str, object]] = None,
        blas_threads: BlasPolicy = BLAS_AUTO,
    ):
        super().__init__(blas_threads=blas_threads)
        self.host = host
        self.port = int(port)
        self.heartbeat_interval = float(heartbeat_interval)
        self.client_timeout = float(client_timeout)
        self.journal_dir = journal_dir
        self.fault_plan = fault_plan
        self.fingerprint = dict(fingerprint) if fingerprint else {}
        self.server: Optional[FederationServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- loop / server lifecycle ---------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            loop = asyncio.new_event_loop()

            def _run() -> None:
                asyncio.set_event_loop(loop)
                loop.run_forever()

            self._thread = threading.Thread(target=_run, name="repro-wire-loop", daemon=True)
            self._thread.start()
            self._loop = loop
        return self._loop

    def listen(self, client_ids: Optional[Sequence[int]] = None) -> int:
        """Start the federation server (idempotent); returns the bound port.

        ``client_ids`` defaults to the bound roster's ids; passing them
        explicitly lets ``repro serve`` print the listening address and
        wait for joiners before the first round dispatches anything.
        """
        if self.server is not None:
            return self.port
        if client_ids is None:
            if not self._clients:
                raise RuntimeError("WireBackend.listen needs client_ids or a bound roster")
            client_ids = [int(client.client_id) for client in self._clients]
        loop = self._ensure_loop()
        self.server = FederationServer(
            client_ids,
            host=self.host,
            port=self.port,
            heartbeat_interval=self.heartbeat_interval,
            client_timeout=self.client_timeout,
            journal_dir=self.journal_dir,
            fault_plan=self.fault_plan,
            fingerprint=self.fingerprint,
        )
        self.port = asyncio.run_coroutine_threadsafe(self.server.start(), loop).result()
        return self.port

    def bind(self, clients: Sequence) -> None:
        super().bind(clients)
        if self.server is not None:
            unknown = [
                int(client.client_id)
                for client in clients
                if int(client.client_id) not in self.server.sessions
            ]
            if unknown:
                raise RuntimeError(
                    f"wire server already listening for {sorted(self.server.sessions)}; "
                    f"cannot re-bind to a roster with unknown client ids {unknown}"
                )

    def wait_for_clients(self, timeout: Optional[float] = None) -> bool:
        """Block until every roster client has a live connection."""
        self.listen()
        return asyncio.run_coroutine_threadsafe(
            self.server.wait_for_clients(timeout), self._loop
        ).result()

    def network_summary(self) -> Dict[str, int]:
        """The server's network accounting (empty before the first listen)."""
        if self.server is None:
            return {}
        return self.server.network_summary()

    def close(self) -> None:
        if self.server is not None:
            try:
                asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(timeout=10)
            except Exception:  # pragma: no cover - best-effort shutdown
                logger.warning("federation server did not stop cleanly", exc_info=True)
            self.server = None
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5)
            self._loop.close()
            self._loop = None
            self._thread = None

    # -- dispatch -------------------------------------------------------------------
    def imap_outcomes(
        self, tasks: Sequence[ClientTask], timeout: Optional[float] = None
    ) -> Iterator[Union[ClientUpdate, TaskFailure]]:
        if not tasks:
            return
        _check_one_task_per_client(tasks)
        self.listen()
        # The process pool's broadcast dedup: pickle each distinct carrier
        # once, ship the same blob to every task that references it.
        blobs: Dict[int, bytes] = {}
        for task in tasks:
            carrier = task.wire if task.wire is not None else task.state
            if id(carrier) not in blobs:
                blobs[id(carrier)] = pickle.dumps(carrier, protocol=pickle.HIGHEST_PROTOCOL)
        futures = []
        for task in tasks:
            client = self._clients[task.client_index]
            carrier = task.wire if task.wire is not None else task.state
            futures.append(
                self.server.submit_task(
                    int(client.client_id),
                    task.op,
                    blobs[id(carrier)],
                    task.wire is not None,
                    task.steps,
                    task.proximal_mu,
                    client.rng_state,
                )
            )
        # Drain in submission order (streaming, like every other backend).
        # Even with timeout=None every future resolves eventually: a session
        # that loses its connection and is not re-claimed within the
        # liveness deadline is reaped into a WireFailure.
        for position, (task, future) in enumerate(zip(tasks, futures)):
            client = self._clients[task.client_index]
            try:
                raw = future.result(timeout=timeout)
            except FuturesTimeoutError:
                self.server.abandon(
                    future, "timeout", f"task exceeded the {timeout:g}s per-task timeout"
                )
                yield TaskFailure(
                    task_index=position,
                    client_index=task.client_index,
                    client_id=client.client_id,
                    kind="timeout",
                    error=f"task exceeded the {timeout:g}s per-task timeout",
                )
                continue
            if isinstance(raw, WireFailure):
                yield TaskFailure(
                    task_index=position,
                    client_index=task.client_index,
                    client_id=client.client_id,
                    kind=raw.kind,
                    error=raw.error,
                    traceback=raw.traceback,
                )
                continue
            # A successful UpdateEnvelope: write the joiner's post-training
            # RNG state back into the roster client (the process pool's
            # _to_update hand-off — this is what keeps wire == serial).
            if raw.rng_state is not None:
                client.rng_state = raw.rng_state
            yield ClientUpdate(
                client_index=task.client_index,
                client_id=client.client_id,
                state=raw.state,
                stats=raw.stats,
                payload=raw.payload,
            )


__all__ = ["WireBackend"]
