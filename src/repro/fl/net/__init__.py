"""Wire-level federation runtime: framed protocol, server, joiner, backend.

The package splits along the classic transport stack:

======================  ========================================================
module                  layer
======================  ========================================================
:mod:`.framing`         length-prefixed, CRC-protected frame codec (sans-io)
:mod:`.messages`        typed message vocabulary + pickle body codec
:mod:`.journal`         append-only per-client dispatch journal (resume)
:mod:`.faults`          seeded frame-level fault injection (chaos runs)
:mod:`.server`          asyncio federation server + supervised connection actors
:mod:`.client`          the joiner runtime (reconnect-with-resume)
:mod:`.backend`         the ``wire`` :class:`ExecutionBackend` over all of it
:mod:`.errors`          the typed error hierarchy every layer raises
======================  ========================================================

Importing this package registers :class:`WireBackend` in the execution
backend registry under the name ``"wire"``.
"""

from repro.fl.execution.backend import BACKENDS
from repro.fl.net.backend import WireBackend
from repro.fl.net.client import FederationClientRunner, JoinReport, run_client
from repro.fl.net.errors import (
    FrameError,
    HandshakeError,
    JournalError,
    MessageDecodeError,
    SessionLost,
    WireProtocolError,
)
from repro.fl.net.faults import WIRE_FAULT_KINDS, WireFaultPlan
from repro.fl.net.framing import FrameReader, encode_frame
from repro.fl.net.journal import MessageJournal
from repro.fl.net.messages import PROTOCOL_VERSION
from repro.fl.net.server import NETWORK_COUNTER_KEYS, FederationServer, WireFailure

BACKENDS.setdefault(WireBackend.name, WireBackend)

__all__ = [
    "FederationClientRunner",
    "FederationServer",
    "FrameError",
    "FrameReader",
    "HandshakeError",
    "JoinReport",
    "JournalError",
    "MessageDecodeError",
    "MessageJournal",
    "NETWORK_COUNTER_KEYS",
    "PROTOCOL_VERSION",
    "SessionLost",
    "WIRE_FAULT_KINDS",
    "WireBackend",
    "WireFailure",
    "WireFaultPlan",
    "WireProtocolError",
    "encode_frame",
    "run_client",
]
