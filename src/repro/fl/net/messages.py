"""The federation protocol's message vocabulary.

One dataclass per message, one frame-type byte per dataclass.  Bodies are
pickled (the payloads they carry — transport envelopes, flat states, RNG
states — already cross the process-pool boundary as pickles, so the wire
reuses the exact same serialization and stays bit-identical to it).  The
frame CRC is checked *before* a body is unpickled, so a flipped byte is
always a :class:`~repro.fl.net.errors.FrameError`, and only a peer that
genuinely sent garbage produces a
:class:`~repro.fl.net.errors.MessageDecodeError`.

Dispatch flow
-------------
========================  ====================================================
message                   direction / meaning
========================  ====================================================
``Hello``                 client -> server: identity, protocol version, config
                          fingerprint, and per-client replay cursors
``Welcome``               server -> client: session accepted; heartbeat cadence
                          and how many journaled tasks will be replayed
``TaskEnvelope``          server -> client: one :class:`ClientTask`'s payload
                          (the process-pool worker tuple, framed)
``UpdateEnvelope``        client -> server: the task's result (state/payload,
                          stats, RNG state) or its failure
``Ack``                   server -> client: update received and recorded; the
                          client may drop its cached copy and move its cursor
``Heartbeat``             server -> client liveness probe
``HeartbeatAck``          client -> server liveness reply
``ErrorMessage``          either direction: typed, fatal protocol complaint
``Goodbye``               either direction: orderly shutdown
========================  ====================================================
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.fl.net.errors import MessageDecodeError

#: Protocol version sent in every HELLO and checked by the server; bump on
#: any incompatible change to the frame layout or message vocabulary.
PROTOCOL_VERSION = 1

# Frame-type bytes (grouped by role; gaps left for future messages).
MSG_HELLO = 0x01
MSG_WELCOME = 0x02
MSG_TASK = 0x10
MSG_UPDATE = 0x11
MSG_ACK = 0x12
MSG_HEARTBEAT = 0x20
MSG_HEARTBEAT_ACK = 0x21
MSG_ERROR = 0x7E
MSG_GOODBYE = 0x7F


@dataclass(frozen=True)
class Hello:
    """Client -> server greeting opening (or resuming) a session."""

    #: Roster client ids this connection serves (one joiner process may
    #: host several federated clients).
    client_ids: Tuple[int, ...]
    protocol_version: int = PROTOCOL_VERSION
    #: Per-client replay cursor: the highest task ``seq`` this client has
    #: seen the server *acknowledge*; journaled tasks after it are replayed.
    cursors: Dict[int, int] = field(default_factory=dict)
    #: Run-identity fingerprint (model, seed, corpus hash, dtype...); the
    #: server rejects a joiner whose fingerprint disagrees with its own, so
    #: a mis-configured client can never silently poison a run.
    fingerprint: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Welcome:
    """Server -> client: the session is open."""

    heartbeat_interval: float
    client_timeout: float
    #: Per-client count of journaled tasks about to be replayed.
    replayed: Dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class TaskEnvelope:
    """One dispatched client task, exactly the process-pool worker payload.

    ``blob`` is the pickled state carrier (raw state or transport wire
    envelope) — pickled once per distinct carrier on the server, like the
    process pool's broadcast dedup — and ``rng_state`` is the coordinator's
    RNG snapshot for the client, whose hand-off is what keeps a wire run
    bit-identical to a serial one.
    """

    client_id: int
    seq: int
    op: str
    blob: bytes
    is_wire: bool
    steps: Optional[int] = None
    proximal_mu: Optional[float] = None
    rng_state: Optional[dict] = None


@dataclass
class UpdateEnvelope:
    """The client's reply to one :class:`TaskEnvelope`.

    Either a result (``state`` or encoded ``payload``, plus ``stats`` and
    the post-training ``rng_state``) or a failure (``error`` set, mirroring
    the process pool's ``_WorkerFailure`` value semantics: a client-side
    exception travels back as data, never as a broken connection).
    """

    client_id: int
    seq: int
    state: Optional[object] = None
    payload: Optional[object] = None
    stats: Optional[object] = None
    rng_state: Optional[dict] = None
    error: Optional[str] = None
    traceback: Optional[str] = None


@dataclass(frozen=True)
class Ack:
    """Server -> client: update ``seq`` for ``client_id`` is safely folded."""

    client_id: int
    seq: int


@dataclass(frozen=True)
class Heartbeat:
    """Liveness probe; ``seq`` lets either side match probe to reply."""

    seq: int


@dataclass(frozen=True)
class HeartbeatAck:
    """Liveness reply echoing the probe's ``seq``."""

    seq: int


@dataclass(frozen=True)
class ErrorMessage:
    """A fatal, typed protocol complaint (precedes closing the connection)."""

    code: str
    detail: str = ""


@dataclass(frozen=True)
class Goodbye:
    """Orderly end of the session (``reason`` is human-readable)."""

    reason: str = ""


#: message class <-> frame-type byte (bijective).
MESSAGE_TYPES = {
    Hello: MSG_HELLO,
    Welcome: MSG_WELCOME,
    TaskEnvelope: MSG_TASK,
    UpdateEnvelope: MSG_UPDATE,
    Ack: MSG_ACK,
    Heartbeat: MSG_HEARTBEAT,
    HeartbeatAck: MSG_HEARTBEAT_ACK,
    ErrorMessage: MSG_ERROR,
    Goodbye: MSG_GOODBYE,
}
_TYPE_CLASSES = {frame_type: cls for cls, frame_type in MESSAGE_TYPES.items()}


def encode_message(message) -> Tuple[int, bytes]:
    """Pickle ``message``; returns ``(frame_type, body_bytes)``."""
    frame_type = MESSAGE_TYPES.get(type(message))
    if frame_type is None:
        raise TypeError(f"not a protocol message: {type(message).__name__}")
    return frame_type, pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode_message(frame_type: int, body: bytes):
    """Unpickle a frame body, checking it matches its frame-type byte.

    Raises :class:`MessageDecodeError` for unknown type bytes, unpicklable
    bodies, and type/byte mismatches — never a bare pickle exception.
    """
    cls = _TYPE_CLASSES.get(frame_type)
    if cls is None:
        raise MessageDecodeError(frame_type, reason="unknown frame type")
    try:
        message = pickle.loads(body)
    except Exception as error:
        raise MessageDecodeError(frame_type, reason=f"unpicklable body: {error!r}") from error
    if not isinstance(message, cls):
        raise MessageDecodeError(
            frame_type,
            reason=f"body decodes to {type(message).__name__}, expected {cls.__name__}",
        )
    return message


__all__ = [
    "MESSAGE_TYPES",
    "MSG_ACK",
    "MSG_ERROR",
    "MSG_GOODBYE",
    "MSG_HEARTBEAT",
    "MSG_HEARTBEAT_ACK",
    "MSG_HELLO",
    "MSG_TASK",
    "MSG_UPDATE",
    "MSG_WELCOME",
    "PROTOCOL_VERSION",
    "Ack",
    "ErrorMessage",
    "Goodbye",
    "Heartbeat",
    "HeartbeatAck",
    "Hello",
    "TaskEnvelope",
    "UpdateEnvelope",
    "Welcome",
    "decode_message",
    "encode_message",
]
