"""The transport channel: every broadcast and upload passes through here.

A :class:`Channel` wraps an uplink :class:`~repro.fl.transport.codecs.Codec`
(and optionally a different downlink codec) and owns the *measured*
communication accounting of one training run:

broadcast (server → client)
    The server-side state is encoded once per distinct state object, the
    payload bytes are logged per receiving client, and the client trains
    from the **decoded** payload — exactly what it would reconstruct on the
    wire.  The decoded state is remembered as the per-client *reference*
    for this round's upload.

upload (client → server)
    The client's new state is encoded (optionally as a *delta* against the
    reference it received, optionally with per-client *error feedback*),
    the payload bytes are logged, and the server aggregates the decoded
    reconstruction.

Delta upload (``delta_upload=True``) encodes ``new_state - reference``; the
server adds the decoded delta back onto the reference it knows it sent.
Updates are far more compressible than raw states (they concentrate around
zero), which is where quantization and sparsification earn their keep.

Error feedback (``error_feedback=True``) keeps a per-client residual of
everything the codec dropped and adds it back into the next round's upload
before encoding — the classic fix that lets aggressive sparsification
converge.

Backend hand-off
----------------
:meth:`Channel.broadcast` returns one picklable :class:`WireTask` per
client; execution backends decode it where the client computation runs (in
the worker process for :class:`~repro.fl.execution.ProcessPoolBackend`, so
only compressed payloads cross the process boundary).  When the channel
needs no server-side state for the upload (no error feedback), the wire
task also instructs the backend to encode the upload at the worker, so the
return trip is compressed too; with error feedback, workers return raw
states and the channel encodes in the coordinating process (the residual
lives there).  Both paths apply identical float operations, so serial and
process execution stay bit-identical under every codec.

Every state the channel touches is backed by the flat-buffer engine of
:mod:`repro.fl.parameters`: codec decodes hand back
:class:`~repro.fl.parameters.FlatState` views over one contiguous vector,
so delta encoding, error-feedback residual folds, and reference updates are
single whole-model vector operations rather than per-name dict loops (and
bit-identical to them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.communication import CommunicationTracker
from repro.fl.parameters import State, filter_state, merge_partition, zeros_like_state
from repro.fl.privacy import apply_update, state_update
from repro.fl.transport.codecs import (
    Codec,
    IdentityCodec,
    Payload,
    QuantizationCodec,
    TopKCodec,
)


@dataclass
class WireTask:
    """The transport envelope one client task carries across a backend.

    ``payload`` is the encoded downlink state; ``down_codec`` decodes it
    where the task runs.  When ``up_codec`` is set, the backend encodes the
    task's resulting state before returning it (as a delta against the
    decoded downlink state when ``delta_upload`` is set); when ``None``,
    the raw state comes back and the channel finishes the upload itself.
    """

    payload: Payload
    down_codec: Codec
    up_codec: Optional[Codec] = None
    delta_upload: bool = False


@dataclass(frozen=True)
class ChannelSummary:
    """Measured communication of one training run through a channel."""

    uplink_codec: str
    downlink_codec: str
    delta_upload: bool
    error_feedback: bool
    rounds: int
    total_uplink_bytes: int
    total_downlink_bytes: int
    uplink_bytes_per_round: Dict[int, int] = field(default_factory=dict)
    downlink_bytes_per_round: Dict[int, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.total_uplink_bytes + self.total_downlink_bytes

    def to_dict(self) -> Dict[str, object]:
        return {
            "uplink_codec": self.uplink_codec,
            "downlink_codec": self.downlink_codec,
            "delta_upload": self.delta_upload,
            "error_feedback": self.error_feedback,
            "rounds": self.rounds,
            "total_uplink_bytes": self.total_uplink_bytes,
            "total_downlink_bytes": self.total_downlink_bytes,
            "total_bytes": self.total_bytes,
            "uplink_bytes_per_round": dict(self.uplink_bytes_per_round),
            "downlink_bytes_per_round": dict(self.downlink_bytes_per_round),
        }


class Channel:
    """Transport for one training run: codecs + measured byte accounting.

    A channel is stateful (per-client references, error-feedback residuals,
    a round counter, and the tracker), so use one fresh channel per
    algorithm run.
    """

    def __init__(
        self,
        codec: Codec,
        downlink_codec: Optional[Codec] = None,
        delta_upload: bool = False,
        error_feedback: bool = False,
        tracker: Optional[CommunicationTracker] = None,
    ):
        self.uplink_codec = codec
        self.downlink_codec = downlink_codec if downlink_codec is not None else codec
        self.delta_upload = bool(delta_upload)
        self.error_feedback = bool(error_feedback)
        self.tracker = tracker if tracker is not None else CommunicationTracker()
        self._references: Dict[int, State] = {}
        self._residuals: Dict[int, State] = {}
        self._round = -1

    @property
    def round_index(self) -> int:
        """Index of the current communication round (-1 before any broadcast)."""
        return self._round

    # -- downlink --------------------------------------------------------------
    def broadcast(
        self,
        states: Sequence[State],
        client_ids: Sequence[int],
        expect_upload: bool = True,
        partial_upload: bool = False,
    ) -> List[WireTask]:
        """Encode one round's downlink, one state per client.

        ``states[i]`` goes to ``client_ids[i]``; a state object shared by
        several clients is encoded once (and its wire task shared), but its
        payload bytes are logged once per receiving client — every client
        receives its own copy over the wire.  Returns the per-client wire
        tasks for the execution backend.

        ``partial_upload`` announces that this round's uploads will ship
        only a subset of the state (see :meth:`receive`'s ``upload_names``);
        backend-side upload encoding is disabled so the raw state — with
        its never-communicated private part intact — returns to the
        coordinating process.
        """
        if len(states) != len(client_ids):
            raise ValueError(f"got {len(states)} states for {len(client_ids)} clients")
        self._round += 1
        encode_at_backend = expect_upload and not self.error_feedback and not partial_upload
        up_codec = self.uplink_codec if encode_at_backend else None
        # Delta uploads need the server-side copy of what each client decoded
        # (the reference the delta is applied back onto); without them the
        # decode would be redundant here — every client decodes its own.
        keep_references = self.delta_upload
        tasks_by_state: Dict[int, WireTask] = {}
        decoded_by_state: Dict[int, State] = {}
        wire_tasks: List[WireTask] = []
        for state, client_id in zip(states, client_ids):
            key = id(state)
            if key not in tasks_by_state:
                payload = self.downlink_codec.encode(state)
                tasks_by_state[key] = WireTask(
                    payload=payload,
                    down_codec=self.downlink_codec,
                    up_codec=up_codec,
                    delta_upload=self.delta_upload,
                )
                if keep_references:
                    decoded_by_state[key] = self.downlink_codec.decode(payload)
            task = tasks_by_state[key]
            self.tracker.record_download(self._round, client_id, task.payload.num_bytes)
            if keep_references:
                self._references[int(client_id)] = decoded_by_state[key]
            wire_tasks.append(task)
        return wire_tasks

    # -- uplink ----------------------------------------------------------------
    def receive(
        self,
        client_id: int,
        state: Optional[State] = None,
        payload: Optional[Payload] = None,
        upload_names: Optional[Sequence[str]] = None,
    ) -> State:
        """Finish one client's upload; returns the server-side reconstruction.

        Exactly one of ``state`` (raw, the channel encodes here — required
        for error feedback and partial uploads) or ``payload`` (already
        encoded at the backend) must be given.  Must follow a
        :meth:`broadcast` that delivered this round's reference to
        ``client_id``.

        ``upload_names`` restricts the upload to a subset of the state's
        entries (FedBN / FedProx-LG ship only their shared part): only
        those entries are encoded and billed, and the returned state keeps
        the client's raw private entries untouched, overlaid with the wire
        reconstruction of the shared ones.  An algorithm must use a
        consistent ``upload_names`` across rounds (error-feedback residuals
        are keyed per client and shaped like the uploaded part).
        """
        client_id = int(client_id)
        if (state is None) == (payload is None):
            raise ValueError("pass exactly one of state= or payload=")
        reference = self._references.get(client_id)
        if self.delta_upload and reference is None:
            raise RuntimeError(
                f"delta upload from client {client_id} without a broadcast reference; "
                "Channel.broadcast must precede Channel.receive each round"
            )

        if payload is not None:
            if upload_names is not None:
                raise ValueError(
                    "upload_names requires the raw state; announce the partial upload "
                    "via Channel.broadcast(partial_upload=True) so the backend returns it"
                )
            self.tracker.record_upload(self._round, client_id, payload.num_bytes)
            decoded = self.uplink_codec.decode(payload)
            return apply_update(reference, decoded) if self.delta_upload else decoded

        if upload_names is None:
            shared = state
            shared_reference = reference
        else:
            upload_names = list(upload_names)
            shared = filter_state(state, upload_names)
            shared_reference = (
                filter_state(reference, upload_names) if self.delta_upload else None
            )

        target = state_update(shared_reference, shared) if self.delta_upload else shared
        if self.error_feedback:
            residual = self._residuals.get(client_id)
            if residual is None:
                residual = zeros_like_state(target)
            target = apply_update(target, residual)
        encoded = self.uplink_codec.encode(target)
        self.tracker.record_upload(self._round, client_id, encoded.num_bytes)
        decoded = self.uplink_codec.decode(encoded)
        if self.error_feedback:
            self._residuals[client_id] = state_update(decoded, target)
        reconstructed = (
            apply_update(shared_reference, decoded) if self.delta_upload else decoded
        )
        if upload_names is None:
            return reconstructed
        return merge_partition(state, reconstructed, upload_names)

    # -- introspection ----------------------------------------------------------
    def residual_norm(self, client_id: int) -> float:
        """L2 norm of one client's error-feedback residual (0 when absent)."""
        residual = self._residuals.get(int(client_id))
        if residual is None:
            return 0.0
        return float(np.sqrt(sum(float(np.sum(v**2)) for v in residual.values())))

    def summary(self) -> ChannelSummary:
        """Measured totals and per-round breakdowns of this run so far."""
        return ChannelSummary(
            uplink_codec=self.uplink_codec.describe(),
            downlink_codec=self.downlink_codec.describe(),
            delta_upload=self.delta_upload,
            error_feedback=self.error_feedback,
            rounds=self._round + 1,
            total_uplink_bytes=self.tracker.total_uplink_bytes,
            total_downlink_bytes=self.tracker.total_downlink_bytes,
            uplink_bytes_per_round=self.tracker.per_round_uplink(),
            downlink_bytes_per_round=self.tracker.per_round_downlink(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel(uplink={self.uplink_codec.describe()}, "
            f"downlink={self.downlink_codec.describe()}, "
            f"delta={self.delta_upload}, error_feedback={self.error_feedback})"
        )


#: Compression settings understood by :func:`create_channel` (and the CLI).
COMPRESSION_CHOICES: Tuple[str, ...] = ("none", "float32", "float16", "quantize", "topk")


def create_channel(
    compression: Optional[str],
    compression_bits: int = 8,
    topk_fraction: float = 0.1,
) -> Optional[Channel]:
    """Build the transport channel for a compression setting.

    ``None`` disables the transport layer entirely (raw in-process states,
    the pre-transport behavior, no measured accounting).  The named
    settings map to:

    ======================  ====================================================
    setting                 channel
    ======================  ====================================================
    ``none``                identity float64 both ways (bit-exact, measured)
    ``float32``/``float16`` identity cast both ways
    ``quantize``            ``compression_bits``-bit quantization + DEFLATE both
                            ways, delta-encoded uploads
    ``topk``                top-``topk_fraction`` sparsified, delta-encoded
                            uploads with error feedback; float64 identity
                            downlink (sparsifying a full model is meaningless)
    ======================  ====================================================
    """
    if compression is None:
        return None
    key = compression.lower()
    if key == "none":
        return Channel(IdentityCodec("float64"))
    if key == "float32":
        return Channel(IdentityCodec("float32"))
    if key == "float16":
        return Channel(IdentityCodec("float16"))
    if key == "quantize":
        return Channel(
            QuantizationCodec(num_bits=compression_bits, deflate=True),
            delta_upload=True,
        )
    if key == "topk":
        return Channel(
            TopKCodec(keep_fraction=topk_fraction, value_dtype="float32"),
            downlink_codec=IdentityCodec("float64"),
            delta_upload=True,
            error_feedback=True,
        )
    raise ValueError(
        f"unknown compression {compression!r}; available: {COMPRESSION_CHOICES}"
    )
