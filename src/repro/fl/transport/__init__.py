"""Wire-level transport: codecs, payloads, and the channel.

This subpackage turns communication from a side-calculation into a
first-class subsystem: a :class:`Codec` encodes a model state into a real
byte payload (and back), and a :class:`Channel` routes every broadcast and
upload of a training run through a codec while recording *measured* payload
bytes.  See :mod:`repro.fl.transport.codecs` for the wire formats and
:mod:`repro.fl.transport.channel` for delta-encoded uploads and error
feedback.
"""

from repro.fl.transport.codecs import (
    CODECS,
    Codec,
    IdentityCodec,
    Payload,
    QuantizationCodec,
    TopKCodec,
    packed_code_bytes,
    state_schema,
    topk_flat_indices,
)
from repro.fl.transport.errors import TransportDecodeError
from repro.fl.transport.channel import (
    COMPRESSION_CHOICES,
    Channel,
    ChannelSummary,
    WireTask,
    create_channel,
)

__all__ = [
    "CODECS",
    "Codec",
    "IdentityCodec",
    "QuantizationCodec",
    "TopKCodec",
    "Payload",
    "TransportDecodeError",
    "packed_code_bytes",
    "state_schema",
    "topk_flat_indices",
    "COMPRESSION_CHOICES",
    "Channel",
    "ChannelSummary",
    "WireTask",
    "create_channel",
]
