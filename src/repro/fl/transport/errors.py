"""Typed transport decode failures.

A corrupt or truncated payload used to surface as whatever low-level error
the codec internals happened to hit first — a numpy reshape complaint, a
``struct.error``, a ``zlib.error`` — none of which identify the codec or
say how many bytes were expected.  :class:`TransportDecodeError` replaces
those with one typed exception carrying the codec name and the
expected/actual byte counts, so callers (the fault-tolerant retry path in
particular) can catch decode failures precisely and route them into a
re-dispatch instead of aborting the run.

This module has no dependencies so it can be imported from anywhere in the
transport and execution layers without cycles.
"""

from __future__ import annotations

from typing import Optional


class TransportDecodeError(ValueError):
    """A payload could not be decoded back into a model state.

    Raised by every codec on truncated buffers, CRC mismatches, and
    malformed streams.  Subclasses :class:`ValueError` so legacy callers
    that guarded the raw numpy/struct errors with ``except ValueError``
    keep working.

    Attributes
    ----------
    codec:
        Registry name of the codec that rejected the payload.
    expected_bytes / actual_bytes:
        Byte counts where they are known (``None`` otherwise) — e.g. the
        minimum buffer length implied by the schema versus ``len(data)``.
    reason:
        Short machine-greppable cause (``"crc mismatch"``, ``"truncated"``,
        ``"deflate"``, ...).
    """

    def __init__(
        self,
        codec: str,
        *,
        expected_bytes: Optional[int] = None,
        actual_bytes: Optional[int] = None,
        reason: str = "decode failed",
    ):
        self.codec = str(codec)
        self.expected_bytes = None if expected_bytes is None else int(expected_bytes)
        self.actual_bytes = None if actual_bytes is None else int(actual_bytes)
        self.reason = str(reason)
        detail = f"codec {self.codec!r}: {self.reason}"
        if self.expected_bytes is not None or self.actual_bytes is not None:
            expected = "?" if self.expected_bytes is None else str(self.expected_bytes)
            actual = "?" if self.actual_bytes is None else str(self.actual_bytes)
            detail += f" (expected {expected} bytes, got {actual})"
        super().__init__(detail)


__all__ = ["TransportDecodeError"]
