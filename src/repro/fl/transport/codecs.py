"""Wire-level codecs: how a model state becomes bytes (and comes back).

The decentralized setting is costed in bytes per round, so compression must
be measured on *real payloads*, not estimated.  A :class:`Codec` turns a
:data:`~repro.fl.parameters.State` into a :class:`Payload` — one contiguous
byte string plus the static tensor schema — and back:

:class:`IdentityCodec`
    Ships every value verbatim at a chosen float precision.  At ``float64``
    the encode → decode round trip is **bit-exact** (the pipeline dtype);
    ``float32``/``float16`` are lossy casts.
:class:`QuantizationCodec`
    Uniform per-tensor quantization: each tensor ships its ``float64``
    min/max followed by ``num_bits``-wide codes packed into bytes.  Decoding
    reconstructs exactly the values :func:`repro.fl.communication.quantize_state`
    used to simulate.  An optional DEFLATE stage losslessly compresses the
    packed stream (effective on the concentrated code distributions of
    delta-encoded uploads).
:class:`TopKCodec`
    Magnitude top-k sparsification with **exact, deterministic** selection:
    a stable sort keeps precisely ``k`` entries, breaking magnitude ties in
    favor of the lower flat index.  The payload is a ``uint32`` count, the
    sorted ``uint32`` indices, and the surviving values at ``value_dtype``.

Byte accounting
---------------
``Payload.num_bytes`` is ``len(payload.data)`` — every dynamic quantity
(values, codes, scales, indices, counts) lives inside ``data`` and is
counted.  Only the static tensor schema (names and shapes, knowable to both
endpoints from the model architecture) rides outside the byte count, the
way a real protocol would negotiate it once per session.

All codecs are deterministic (same state → same bytes), stateless, and
cheap to pickle, so payloads and codecs can cross process boundaries.

Flat-buffer fast paths
----------------------
A :class:`~repro.fl.parameters.FlatState` flattens to the wire's sorted
name order without a per-tensor concatenation loop (zero-copy when the
layout already is sorted — the case for every codec-decoded state), and
every ``decode`` builds its result directly over one contiguous buffer
(:func:`repro.fl.parameters.wrap_flat`) instead of materializing per-name
copies.  The produced bytes and decoded values are bit-identical to the
per-tensor dict path, which remains the fallback for plain dict states.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.fl.parameters import (
    FlatState,
    State,
    StateLayout,
    sorted_state_vector,
    wrap_flat,
)
from repro.fl.transport.errors import TransportDecodeError

#: Static per-tensor schema entry: (name, shape).
TensorSpec = Tuple[str, Tuple[int, ...]]


@dataclass(frozen=True)
class Payload:
    """One encoded model state: a contiguous byte string plus its schema.

    ``data`` holds everything dynamic; ``schema`` is the static tensor
    layout (sorted name order) that both endpoints know from the model
    architecture and is therefore excluded from the byte count.

    ``crc`` is the CRC-32 of ``data``, computed at construction unless the
    caller supplies one (fault injection passes the *original* CRC next to
    flipped bytes so corruption is detected through the genuine framing
    check).  Like the schema, the 4-byte CRC is framing metadata a real
    protocol would carry in its envelope; it is not part of ``num_bytes``.
    """

    codec: str
    data: bytes
    schema: Tuple[TensorSpec, ...]
    crc: Optional[int] = None

    def __post_init__(self) -> None:
        if self.crc is None:
            object.__setattr__(self, "crc", zlib.crc32(self.data))

    @property
    def num_bytes(self) -> int:
        """Measured wire cost of this payload."""
        return len(self.data)


def state_schema(state: State) -> Tuple[TensorSpec, ...]:
    """The static (name, shape) layout of a state, in sorted name order."""
    if isinstance(state, FlatState):
        return state.layout.sorted_schema()
    return tuple((name, tuple(np.asarray(state[name]).shape)) for name in sorted(state))


def _flatten_sorted(state: State) -> np.ndarray:
    """All tensors as one float64 vector in sorted name order.

    Zero-copy for a flat state whose layout is already sorted (callers must
    treat the result as read-only); one concatenation pass otherwise.
    """
    flat = sorted_state_vector(state)
    if flat is not None:
        return flat
    return np.concatenate(
        [np.asarray(state[name], dtype=np.float64).ravel() for name in sorted(state)]
    )


def _schema_sizes(schema: Tuple[TensorSpec, ...]) -> List[int]:
    """Per-tensor value counts of a schema."""
    return [int(np.prod(shape, dtype=np.int64)) if shape else 1 for _, shape in schema]


def _state_from_flat(flat: np.ndarray, schema: Tuple[TensorSpec, ...]) -> State:
    """A decoded state over one owned float64 buffer (zero-copy views)."""
    return wrap_flat(StateLayout.of(schema), flat)


def _pack_codes(codes: np.ndarray, num_bits: int) -> bytes:
    """Pack non-negative integer codes (< 2**num_bits) at num_bits per value.

    Byte-aligned widths take the direct big-endian cast (bit-identical to
    the generic MSB-first bit packing, orders of magnitude cheaper).
    """
    if codes.size == 0:
        return b""
    if num_bits == 8:
        return codes.astype(np.uint8).tobytes()
    if num_bits == 16:
        return codes.astype(">u2").tobytes()
    values = codes.astype(np.int64)
    shifts = np.arange(num_bits - 1, -1, -1, dtype=np.int64)
    bits = ((values[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def _unpack_codes(data: bytes, num_bits: int, count: int) -> np.ndarray:
    """Invert :func:`_pack_codes`; returns int64 codes of length ``count``."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if num_bits == 8:
        return np.frombuffer(data, dtype=np.uint8, count=count).astype(np.int64)
    if num_bits == 16:
        return np.frombuffer(data, dtype=">u2", count=count).astype(np.int64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))[: count * num_bits]
    weights = np.left_shift(1, np.arange(num_bits - 1, -1, -1, dtype=np.int64))
    return bits.reshape(count, num_bits).astype(np.int64) @ weights


def packed_code_bytes(count: int, num_bits: int) -> int:
    """Bytes occupied by ``count`` codes packed at ``num_bits`` per value."""
    return int(np.ceil(count * num_bits / 8))


def topk_flat_indices(flat: np.ndarray, keep: int) -> np.ndarray:
    """The flat indices of the ``keep`` largest-magnitude entries, exactly.

    Selection is deterministic and breaks magnitude ties in favor of the
    lower flat index, so exactly ``keep`` entries survive regardless of
    duplicated magnitudes — the same set a stable sort on descending
    magnitude selects.  Implemented with ``argpartition`` plus explicit
    tie handling at the threshold magnitude (O(P + k log k), not the full
    O(P log P) sort).  Returned indices are sorted ascending (the wire
    order).
    """
    keep = int(keep)
    if keep >= flat.size:
        return np.arange(flat.size, dtype=np.int64)
    magnitude = np.abs(flat)
    if np.isnan(magnitude).any():
        # NaNs poison the partition threshold (min of a set containing NaN
        # is NaN, every comparison against it is False).  The stable sort
        # ranks NaNs last, i.e. keeps the top-k finite entries — preserve
        # that behavior on this cold path.
        order = np.argsort(-magnitude, kind="stable")
        return np.sort(order[:keep]).astype(np.int64)
    # The k-th largest magnitude is the selection threshold; everything
    # strictly above it survives, and ties exactly at it are admitted in
    # ascending index order (``flatnonzero`` returns ascending indices).
    partition = np.argpartition(magnitude, flat.size - keep)[flat.size - keep :]
    threshold = magnitude[partition].min()
    above = np.flatnonzero(magnitude > threshold)
    at_threshold = np.flatnonzero(magnitude == threshold)[: keep - above.size]
    return np.sort(np.concatenate([above, at_threshold])).astype(np.int64)


class Codec:
    """Interface every wire codec implements.

    ``encode`` must be deterministic; ``decode(encode(state))`` returns
    float64 arrays owned by the caller.  ``lossless`` advertises whether the
    round trip is bit-exact.
    """

    #: Registry / display name, overridden by subclasses.
    name: str = "base"
    #: Whether decode(encode(state)) is bit-exact.
    lossless: bool = False

    def encode(self, state: State) -> Payload:
        raise NotImplementedError

    def decode(self, payload: Payload) -> State:
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable label used in reports (e.g. ``quantize-8b``)."""
        return self.name

    def _check_payload(self, payload: Payload) -> None:
        if payload.codec != self.name:
            raise ValueError(
                f"payload was encoded by codec {payload.codec!r}, "
                f"but decode was called on {self.name!r}"
            )
        if payload.crc is not None and zlib.crc32(payload.data) != payload.crc:
            raise TransportDecodeError(
                self.name,
                actual_bytes=len(payload.data),
                reason="crc mismatch",
            )

    def _inflate(self, data: bytes) -> bytes:
        """DEFLATE-decompress ``data`` with a typed error on corruption."""
        try:
            return zlib.decompress(data)
        except zlib.error as error:
            raise TransportDecodeError(
                self.name, actual_bytes=len(data), reason=f"deflate: {error}"
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}({self.describe()!r})"


class IdentityCodec(Codec):
    """Ships every value verbatim at a chosen float precision.

    ``float64`` is bit-exact (the pipeline's native dtype); ``float32`` and
    ``float16`` round each value to the nearest representable float of that
    width.  Decoded arrays are always float64 (the values of the cast).
    """

    name = "identity"

    def __init__(self, dtype: str = "float64"):
        wire_dtype = np.dtype(dtype)
        if wire_dtype not in (np.dtype("float64"), np.dtype("float32"), np.dtype("float16")):
            raise ValueError(f"identity codec dtype must be a float type, got {dtype!r}")
        self.dtype = wire_dtype
        self.lossless = wire_dtype == np.dtype("float64")

    def describe(self) -> str:
        return f"identity-{self.dtype.name}"

    def encode(self, state: State) -> Payload:
        flat = sorted_state_vector(state)
        if flat is not None:
            # One cast over the contiguous buffer; the bytes equal the
            # per-tensor concatenation below (same values, same order).
            data = flat.tobytes() if self.dtype == np.dtype("float64") else flat.astype(self.dtype).tobytes()
            return Payload(codec=self.name, data=data, schema=state_schema(state))
        chunks: List[bytes] = []
        for name in sorted(state):
            array = np.ascontiguousarray(np.asarray(state[name], dtype=self.dtype))
            chunks.append(array.tobytes())
        return Payload(codec=self.name, data=b"".join(chunks), schema=state_schema(state))

    def decode(self, payload: Payload) -> State:
        self._check_payload(payload)
        total = sum(_schema_sizes(payload.schema))
        expected = total * self.dtype.itemsize
        if len(payload.data) < expected:
            raise TransportDecodeError(
                self.name,
                expected_bytes=expected,
                actual_bytes=len(payload.data),
                reason="truncated",
            )
        raw = np.frombuffer(payload.data, dtype=self.dtype, count=total)
        return _state_from_flat(raw.astype(np.float64), payload.schema)


class QuantizationCodec(Codec):
    """Uniform per-tensor quantization with real packed payloads.

    Per tensor (sorted name order) the stream holds the float64 ``low`` and
    ``high`` followed by ``num_bits``-wide codes packed into bytes; a tensor
    whose values are all equal ships scales only.  Decoding evaluates
    ``low + codes / levels * span`` — exactly the reconstruction
    :func:`repro.fl.communication.quantize_state` simulates.

    ``deflate=True`` adds a lossless DEFLATE stage over the whole stream;
    the measured payload is the compressed size.
    """

    name = "quantize"

    def __init__(self, num_bits: int = 8, deflate: bool = True):
        if not 1 <= int(num_bits) <= 16:
            raise ValueError("num_bits must be between 1 and 16")
        self.num_bits = int(num_bits)
        self.deflate = bool(deflate)

    @property
    def levels(self) -> int:
        return 2**self.num_bits - 1

    def describe(self) -> str:
        suffix = "+deflate" if self.deflate else ""
        return f"quantize-{self.num_bits}b{suffix}"

    def encode(self, state: State) -> Payload:
        schema = state_schema(state)
        flat = _flatten_sorted(state)
        sizes = np.asarray(_schema_sizes(schema), dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        # Per-tensor scales in one reduction pass each (min/max are exact,
        # so the segment reductions match per-array ``.min()``/``.max()``),
        # then every tensor's codes in one fused elementwise pass over the
        # whole buffer.
        lows = np.minimum.reduceat(flat, offsets)
        highs = np.maximum.reduceat(flat, offsets)
        spans = highs - lows
        span_per_value = np.repeat(spans, sizes)
        low_per_value = np.repeat(lows, sizes)
        nonzero = span_per_value != 0.0
        codes = np.zeros(flat.size, dtype=np.float64)
        codes[nonzero] = np.round(
            (flat[nonzero] - low_per_value[nonzero]) / span_per_value[nonzero] * self.levels
        )
        sections: List[bytes] = []
        for index in range(len(schema)):
            sections.append(struct.pack("<dd", float(lows[index]), float(highs[index])))
            if spans[index] == 0.0:
                continue
            start = int(offsets[index])
            sections.append(_pack_codes(codes[start : start + int(sizes[index])], self.num_bits))
        data = b"".join(sections)
        if self.deflate:
            data = zlib.compress(data, 6)
        return Payload(codec=self.name, data=data, schema=schema)

    def decode(self, payload: Payload) -> State:
        self._check_payload(payload)
        data = self._inflate(payload.data) if self.deflate else payload.data
        levels = self.levels
        sizes = _schema_sizes(payload.schema)
        flat = np.empty(sum(sizes), dtype=np.float64)
        offset = 0
        position = 0
        for size in sizes:
            if offset + 16 > len(data):
                raise TransportDecodeError(
                    self.name,
                    expected_bytes=offset + 16,
                    actual_bytes=len(data),
                    reason="truncated scales",
                )
            low, high = struct.unpack_from("<dd", data, offset)
            offset += 16
            span = high - low
            segment = flat[position : position + size]
            position += size
            if span == 0.0:
                segment[:] = low
                continue
            nbytes = packed_code_bytes(size, self.num_bits)
            if offset + nbytes > len(data):
                raise TransportDecodeError(
                    self.name,
                    expected_bytes=offset + nbytes,
                    actual_bytes=len(data),
                    reason="truncated codes",
                )
            codes = _unpack_codes(data[offset : offset + nbytes], self.num_bits, size)
            offset += nbytes
            segment[:] = low + codes.astype(np.float64) / levels * span
        return _state_from_flat(flat, payload.schema)


class TopKCodec(Codec):
    """Magnitude top-k sparsification with exact, deterministic selection.

    The state is flattened in sorted name order; exactly
    ``max(1, round(keep_fraction * total))`` entries survive (stable-sort
    tie-breaking on the lower flat index).  The payload is
    ``[uint32 count][uint32 indices ascending][values at value_dtype]``;
    everything else decodes to zero.  Designed for *updates* (deltas): pair
    it with a delta-encoding channel and error feedback.
    """

    name = "topk"

    def __init__(
        self,
        keep_fraction: float = 0.1,
        value_dtype: str = "float32",
        deflate: bool = False,
    ):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        wire_dtype = np.dtype(value_dtype)
        if wire_dtype not in (np.dtype("float64"), np.dtype("float32"), np.dtype("float16")):
            raise ValueError(f"topk value_dtype must be a float type, got {value_dtype!r}")
        self.keep_fraction = float(keep_fraction)
        self.value_dtype = wire_dtype
        self.deflate = bool(deflate)

    def describe(self) -> str:
        suffix = "+deflate" if self.deflate else ""
        return f"topk-{self.keep_fraction:g}-{self.value_dtype.name}{suffix}"

    def keep_count(self, total: int) -> int:
        """Exactly how many entries survive for a state of ``total`` values."""
        return max(int(round(total * self.keep_fraction)), 1)

    def encode(self, state: State) -> Payload:
        flat = _flatten_sorted(state)
        keep = self.keep_count(flat.size)
        indices = topk_flat_indices(flat, keep)
        values = np.ascontiguousarray(flat[indices].astype(self.value_dtype))
        data = (
            struct.pack("<I", indices.size)
            + indices.astype(np.uint32).tobytes()
            + values.tobytes()
        )
        if self.deflate:
            data = zlib.compress(data, 6)
        return Payload(codec=self.name, data=data, schema=state_schema(state))

    def decode(self, payload: Payload) -> State:
        self._check_payload(payload)
        data = self._inflate(payload.data) if self.deflate else payload.data
        if len(data) < 4:
            raise TransportDecodeError(
                self.name, expected_bytes=4, actual_bytes=len(data), reason="truncated header"
            )
        (count,) = struct.unpack_from("<I", data, 0)
        expected = 4 + count * (4 + self.value_dtype.itemsize)
        if len(data) < expected:
            raise TransportDecodeError(
                self.name,
                expected_bytes=expected,
                actual_bytes=len(data),
                reason="truncated",
            )
        indices = np.frombuffer(data, dtype=np.uint32, count=count, offset=4).astype(np.int64)
        values = np.frombuffer(
            data, dtype=self.value_dtype, count=count, offset=4 + 4 * count
        ).astype(np.float64)
        total = sum(_schema_sizes(payload.schema))
        if count and (indices.max() >= total or indices.min() < 0):
            raise TransportDecodeError(
                self.name,
                expected_bytes=expected,
                actual_bytes=len(data),
                reason="index out of range",
            )
        flat = np.zeros(total, dtype=np.float64)
        flat[indices] = values
        return _state_from_flat(flat, payload.schema)


#: Registry of wire codecs, keyed by their registry name.
CODECS: Dict[str, Type[Codec]] = {
    IdentityCodec.name: IdentityCodec,
    QuantizationCodec.name: QuantizationCodec,
    TopKCodec.name: TopKCodec,
}
