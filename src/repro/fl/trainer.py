"""Local training loop shared by every decentralized algorithm.

The trainer performs plain mini-batch gradient steps on one client's data
with an optional FedProx proximal term.  The proximal term of Equation (1),
``mu * ||W^r - w||^2``, contributes ``2 * mu * (w - W^r)`` to each parameter
gradient; adding it here (rather than inside the loss) keeps the layer code
oblivious to federated learning.

The trainer owns the **compute dtype** of local training (see
:mod:`repro.nn.dtypes`): ``float64`` (default) is bit-identical to the
historical engine, ``float32`` is the opt-in fast path.  The model is
switched once on entry, batches are collated directly in the compute dtype,
and the proximal reference is cast once per call — parameter states crossing
the client boundary stay ``float64`` either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import RoutabilityDataset
from repro.data.loader import DataLoader, infinite_batches
from repro.fl.parameters import State
from repro.models.base import RoutabilityModel
from repro.nn.dtypes import resolve_compute_dtype
from repro.nn.losses import Loss, make_loss
from repro.nn.optim import make_optimizer
from repro.utils.validation import check_positive


@dataclass
class StepStatistics:
    """Aggregate statistics of one call to :meth:`LocalTrainer.train_steps`."""

    steps: int
    mean_loss: float
    final_loss: float


class LocalTrainer:
    """Runs gradient steps of one model on one dataset."""

    def __init__(
        self,
        loss: str = "mse",
        optimizer: str = "adam",
        learning_rate: float = 2e-4,
        weight_decay: float = 1e-5,
        batch_size: int = 8,
        rng: Optional[np.random.Generator] = None,
        compute_dtype: Optional[str] = None,
    ):
        check_positive("learning_rate", learning_rate)
        check_positive("batch_size", batch_size)
        self.loss_name = loss
        self.optimizer_name = optimizer
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.batch_size = int(batch_size)
        self.compute_dtype = resolve_compute_dtype(compute_dtype)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def make_loader(self, dataset: RoutabilityDataset, shuffle: bool = True) -> DataLoader:
        """Build a loader with this trainer's batch size, RNG, and compute dtype."""
        return DataLoader(
            dataset,
            batch_size=self.batch_size,
            shuffle=shuffle,
            rng=np.random.default_rng(self._rng.integers(0, 2**63 - 1)),
            dtype=self.compute_dtype,
        )

    def _prepare_model(self, model: RoutabilityModel) -> None:
        """Switch ``model`` to this trainer's compute dtype (no-op when equal)."""
        model.set_compute_dtype(self.compute_dtype)

    def train_steps(
        self,
        model: RoutabilityModel,
        dataset: RoutabilityDataset,
        steps: int,
        proximal_mu: float = 0.0,
        proximal_reference: Optional[State] = None,
    ) -> StepStatistics:
        """Run ``steps`` mini-batch updates of ``model`` on ``dataset``.

        Parameters
        ----------
        proximal_mu / proximal_reference:
            When both are provided, each parameter gradient receives the
            FedProx proximal contribution ``2 * mu * (param - reference)``.
        """
        check_positive("steps", steps)
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {proximal_mu}")
        if proximal_mu > 0 and proximal_reference is None:
            raise ValueError("proximal_reference is required when proximal_mu > 0")

        self._prepare_model(model)
        loader = self.make_loader(dataset)
        batches = infinite_batches(loader)
        loss_fn: Loss = make_loss(self.loss_name)
        optimizer = make_optimizer(
            self.optimizer_name,
            model.parameters(),
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        reference = proximal_reference if proximal_mu > 0 else None
        if reference is not None and self.compute_dtype != np.dtype(np.float64):
            # One cast per call instead of one upcast per parameter per step:
            # the proximal arithmetic then runs entirely in the compute dtype.
            reference = {
                name: np.asarray(value, dtype=self.compute_dtype)
                for name, value in reference.items()
            }
        named_params = dict(model.named_parameters()) if reference is not None else {}

        model.train()
        losses = np.zeros(steps, dtype=np.float64)
        for step, (features, labels) in zip(range(steps), batches):
            optimizer.zero_grad()
            predictions = model.forward(features)
            losses[step] = loss_fn.forward(predictions, labels)
            model.backward(loss_fn.backward())
            if reference is not None:
                self._add_proximal_gradient(named_params, reference, proximal_mu)
            optimizer.step()
        return StepStatistics(
            steps=steps,
            mean_loss=float(losses.mean()),
            final_loss=float(losses[-1]),
        )

    @staticmethod
    def _add_proximal_gradient(
        named_params: Dict[str, object], reference: State, mu: float
    ) -> None:
        for name, param in named_params.items():
            if name in reference:
                param.grad += 2.0 * mu * (param.data - reference[name])

    def evaluate_loss(
        self,
        model: RoutabilityModel,
        dataset: RoutabilityDataset,
        max_batches: Optional[int] = None,
    ) -> float:
        """Mean loss of ``model`` over (a prefix of) ``dataset`` in eval mode."""
        self._prepare_model(model)
        loader = self.make_loader(dataset, shuffle=False)
        loss_fn: Loss = make_loss(self.loss_name)
        model.eval()
        losses = []
        for index, (features, labels) in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            predictions = model.forward(features)
            losses.append(loss_fn.forward(predictions, labels))
        model.train()
        if not losses:
            raise ValueError("evaluate_loss processed no batches")
        return float(np.mean(losses))


def predict_dataset(
    model: RoutabilityModel,
    dataset: RoutabilityDataset,
    batch_size: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """Predict scores for every sample of ``dataset``.

    Returns ``(scores, labels)`` flattened over all samples and grid bins,
    ready for :func:`repro.metrics.roc_auc_score`.  Batches are contiguous
    slices of the dataset's packed arrays — no per-sample stacking loop —
    and scores are collected in float64 whatever the model's compute dtype.
    """
    check_positive("batch_size", batch_size)
    features_all, labels_all = dataset.packed_arrays()
    scores = []
    for start in range(0, len(dataset), batch_size):
        chunk = features_all[start : start + batch_size]
        predictions = model.predict(chunk)
        scores.append(np.asarray(predictions, dtype=np.float64).reshape(-1))
    return np.concatenate(scores), labels_all.reshape(-1)
