"""Local training loop shared by every decentralized algorithm.

The trainer performs plain mini-batch gradient steps on one client's data
with an optional FedProx proximal term.  The proximal term of Equation (1),
``mu * ||W^r - w||^2``, contributes ``2 * mu * (w - W^r)`` to each parameter
gradient; adding it here (rather than inside the loss) keeps the layer code
oblivious to federated learning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import RoutabilityDataset
from repro.data.loader import DataLoader, infinite_batches
from repro.fl.parameters import State
from repro.models.base import RoutabilityModel
from repro.nn.losses import Loss, make_loss
from repro.nn.optim import make_optimizer
from repro.utils.validation import check_positive


@dataclass
class StepStatistics:
    """Aggregate statistics of one call to :meth:`LocalTrainer.train_steps`."""

    steps: int
    mean_loss: float
    final_loss: float


class LocalTrainer:
    """Runs gradient steps of one model on one dataset."""

    def __init__(
        self,
        loss: str = "mse",
        optimizer: str = "adam",
        learning_rate: float = 2e-4,
        weight_decay: float = 1e-5,
        batch_size: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        check_positive("learning_rate", learning_rate)
        check_positive("batch_size", batch_size)
        self.loss_name = loss
        self.optimizer_name = optimizer
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.batch_size = int(batch_size)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def make_loader(self, dataset: RoutabilityDataset, shuffle: bool = True) -> DataLoader:
        """Build a loader with this trainer's batch size and RNG."""
        return DataLoader(
            dataset,
            batch_size=self.batch_size,
            shuffle=shuffle,
            rng=np.random.default_rng(self._rng.integers(0, 2**63 - 1)),
        )

    def train_steps(
        self,
        model: RoutabilityModel,
        dataset: RoutabilityDataset,
        steps: int,
        proximal_mu: float = 0.0,
        proximal_reference: Optional[State] = None,
    ) -> StepStatistics:
        """Run ``steps`` mini-batch updates of ``model`` on ``dataset``.

        Parameters
        ----------
        proximal_mu / proximal_reference:
            When both are provided, each parameter gradient receives the
            FedProx proximal contribution ``2 * mu * (param - reference)``.
        """
        check_positive("steps", steps)
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {proximal_mu}")
        if proximal_mu > 0 and proximal_reference is None:
            raise ValueError("proximal_reference is required when proximal_mu > 0")

        loader = self.make_loader(dataset)
        batches = infinite_batches(loader)
        loss_fn: Loss = make_loss(self.loss_name)
        optimizer = make_optimizer(
            self.optimizer_name,
            model.parameters(),
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        reference = proximal_reference if proximal_mu > 0 else None
        named_params = dict(model.named_parameters()) if reference is not None else {}

        model.train()
        losses = np.zeros(steps, dtype=np.float64)
        for step, (features, labels) in zip(range(steps), batches):
            optimizer.zero_grad()
            predictions = model.forward(features)
            losses[step] = loss_fn.forward(predictions, labels)
            model.backward(loss_fn.backward())
            if reference is not None:
                self._add_proximal_gradient(named_params, reference, proximal_mu)
            optimizer.step()
        return StepStatistics(
            steps=steps,
            mean_loss=float(losses.mean()),
            final_loss=float(losses[-1]),
        )

    @staticmethod
    def _add_proximal_gradient(
        named_params: Dict[str, object], reference: State, mu: float
    ) -> None:
        for name, param in named_params.items():
            if name in reference:
                param.grad += 2.0 * mu * (param.data - reference[name])

    def evaluate_loss(
        self,
        model: RoutabilityModel,
        dataset: RoutabilityDataset,
        max_batches: Optional[int] = None,
    ) -> float:
        """Mean loss of ``model`` over (a prefix of) ``dataset`` in eval mode."""
        loader = self.make_loader(dataset, shuffle=False)
        loss_fn: Loss = make_loss(self.loss_name)
        model.eval()
        losses = []
        for index, (features, labels) in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            predictions = model.forward(features)
            losses.append(loss_fn.forward(predictions, labels))
        model.train()
        if not losses:
            raise ValueError("evaluate_loss processed no batches")
        return float(np.mean(losses))


def predict_dataset(
    model: RoutabilityModel,
    dataset: RoutabilityDataset,
    batch_size: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """Predict scores for every sample of ``dataset``.

    Returns ``(scores, labels)`` flattened over all samples and grid bins,
    ready for :func:`repro.metrics.roc_auc_score`.
    """
    check_positive("batch_size", batch_size)
    scores = []
    labels = []
    for start in range(0, len(dataset), batch_size):
        chunk = [dataset[i] for i in range(start, min(start + batch_size, len(dataset)))]
        features = np.stack([sample.features for sample in chunk], axis=0)
        predictions = model.predict(features)
        scores.append(predictions.reshape(-1))
        labels.append(np.stack([sample.label for sample in chunk], axis=0).reshape(-1))
    return np.concatenate(scores), np.concatenate(labels)
