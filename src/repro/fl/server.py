"""The federated server (the "model developer" of the paper).

The server never sees data.  It collects parameter states from clients,
aggregates them (globally, per cluster, per partition, or per client for
alpha-portion sync), and redistributes the results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.fl.parameters import (
    FlatState,
    State,
    check_compatible,
    clone_state,
    filter_state,
    merge_partition,
    state_vector,
    weighted_average,
    wrap_flat,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fl.aggregation import (
        Aggregator,
        StreamingDeltaAccumulator,
        UpdateAccumulator,
    )


class FederatedServer:
    """Parameter-aggregation logic used by every algorithm in this package.

    The global-model aggregation is delegated to a pluggable
    :class:`~repro.fl.aggregation.Aggregator` (default: the historical
    (K, P) GEMV).  The streaming/sharded aggregators expose accumulators
    that fold one update at a time so the round loop never needs the whole
    cohort in memory; ``streaming`` tells the algorithm whether the server
    wants updates released as soon as they are folded.
    """

    def __init__(self, aggregator: Optional["Aggregator"] = None):
        if aggregator is None:
            from repro.fl.aggregation import GemvAggregator

            aggregator = GemvAggregator()
        self.aggregator = aggregator
        self.folded_updates = 0

    @property
    def streaming(self) -> bool:
        """True when updates should be folded (and released) as they arrive."""
        return self.aggregator.streaming

    def accumulator(self) -> "UpdateAccumulator":
        """A fresh per-round accumulator for the global aggregation."""
        return self.aggregator.accumulator()

    def delta_accumulator(self) -> "StreamingDeltaAccumulator":
        """A fresh delta accumulator (FedBuff staleness folds)."""
        return self.aggregator.delta_accumulator()

    def record_folds(self, count: int) -> None:
        """Count updates folded into the global model (for run summaries)."""
        self.folded_updates += int(count)

    def aggregate(self, states: Sequence[State], weights: Sequence[float]) -> State:
        """Sample-count-weighted average: ``W^{r+1} = sum_k (n_k / n) w_k^r``."""
        return self.aggregator.aggregate(states, weights)

    def aggregate_partition(
        self,
        states: Sequence[State],
        weights: Sequence[float],
        global_names: Iterable[str],
    ) -> State:
        """Aggregate only the ``global_names`` entries (FedProx-LG).

        Returns a state containing only the global part.
        """
        partial_states = [filter_state(state, global_names) for state in states]
        return weighted_average(partial_states, weights)

    def merge_global_local(self, global_part: State, full_local_state: State) -> State:
        """Combine the aggregated global part with one client's full state."""
        merged = clone_state(full_local_state)
        for name, values in global_part.items():
            merged[name] = values.copy()
        return merged

    def aggregate_clusters(
        self,
        cluster_states: Dict[int, State],
        member_states: Dict[int, List[State]],
        member_weights: Dict[int, List[float]],
    ) -> Dict[int, State]:
        """Per-cluster aggregation (IFCA / assigned clustering).

        Clusters with no members this round keep their previous state.
        """
        updated: Dict[int, State] = {}
        for cluster_id, previous in cluster_states.items():
            states = member_states.get(cluster_id, [])
            weights = member_weights.get(cluster_id, [])
            if states:
                updated[cluster_id] = weighted_average(states, weights)
            else:
                updated[cluster_id] = clone_state(previous)
        return updated

    def alpha_portion_sync(
        self,
        client_states: Dict[int, State],
        client_weights: Dict[int, float],
        alpha: float,
    ) -> Dict[int, State]:
        """Per-client customized aggregation (Figure 2d).

        For client ``k``:
        ``W_k = alpha * w_k + (1 - alpha) * sum_{k' != k} n_k' / (n - n_k) * w_k'``.
        With a single client the method degenerates to the client's own state.

        The leave-one-out averages are computed in O(K): the weighted sum
        over *all* clients is formed once and each client's own contribution
        is subtracted, instead of re-averaging the K-1 other states per
        client.  Flat states run the whole computation on their contiguous
        buffers (one accumulation pass plus one fused expression per
        client); the per-name dict loop is kept as the fallback and is
        bit-identical — the flat path applies the same elementwise
        operations in the same order.  Agrees with the per-client
        ``weighted_average`` loop to floating-point accuracy (see the
        parity test).
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        client_ids = list(client_states)
        if len(client_ids) == 1:
            only = client_ids[0]
            return {only: clone_state(client_states[only])}
        check_compatible([client_states[cid] for cid in client_ids])
        weights = {cid: float(client_weights[cid]) for cid in client_ids}
        if any(weight < 0 for weight in weights.values()):
            raise ValueError("weights must be non-negative")
        total_weight = sum(weights.values())
        reference = client_states[client_ids[0]]
        if isinstance(reference, FlatState) and all(
            isinstance(client_states[cid], FlatState) for cid in client_ids
        ):
            return self._alpha_portion_sync_flat(
                client_ids, client_states, weights, total_weight, alpha
            )
        # One pass: sum_k n_k * w_k over every client, per parameter.
        weighted_sum: State = {
            name: sum(
                weights[cid] * client_states[cid][name] for cid in client_ids
            )
            for name in reference
        }
        result: Dict[int, State] = {}
        for client_id in client_ids:
            own = client_states[client_id]
            remaining = total_weight - weights[client_id]
            if remaining <= 0:
                # Every other client has zero weight: nothing to mix in.
                result[client_id] = clone_state(own)
                continue
            result[client_id] = {
                name: alpha * own[name]
                + (1.0 - alpha)
                * ((weighted_sum[name] - weights[client_id] * own[name]) / remaining)
                for name in own
            }
        return result

    def _alpha_portion_sync_flat(
        self,
        client_ids: Sequence[int],
        client_states: Dict[int, State],
        weights: Dict[int, float],
        total_weight: float,
        alpha: float,
    ) -> Dict[int, State]:
        """Alpha-portion sync over contiguous buffers (same math, one pass)."""
        layout = client_states[client_ids[0]].layout
        vectors = {cid: state_vector(client_states[cid], layout) for cid in client_ids}
        # Accumulate sequentially in client order — the same addition order
        # as the dict path's ``sum(...)`` per name, so results stay
        # bit-identical.
        weighted_sum = np.zeros(layout.total_size, dtype=np.float64)
        for cid in client_ids:
            weighted_sum += weights[cid] * vectors[cid]
        result: Dict[int, State] = {}
        for client_id in client_ids:
            own = vectors[client_id]
            remaining = total_weight - weights[client_id]
            if remaining <= 0:
                result[client_id] = clone_state(client_states[client_id])
                continue
            mixed = alpha * own + (1.0 - alpha) * (
                (weighted_sum - weights[client_id] * own) / remaining
            )
            result[client_id] = wrap_flat(layout, mixed)
        return result

    def partition_merge(self, global_state: State, local_state: State, local_names: Iterable[str]) -> State:
        """Overlay a client's private local part onto the shared global state."""
        return merge_partition(global_state, local_state, local_names)
