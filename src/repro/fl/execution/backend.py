"""Execution backends: how one round's client updates are computed.

Every decentralized algorithm in :mod:`repro.fl.algorithms` expresses a
communication round as *map a batch of client tasks over the participating
clients, then aggregate the returned states*.  The mapping step is delegated
to an :class:`ExecutionBackend`, which decides **where** the client-side
computation runs:

:class:`SerialBackend`
    Runs every task in the calling process, in task order.  This is exactly
    the behavior of the original inline training loops, bit for bit.

:class:`ProcessPoolBackend`
    Fans the tasks of one round out across a pool of worker processes.
    Workers cache a pickled copy of the client roster once, so each task only
    ships ``(initial state, options, RNG state)`` in and
    ``(new state, statistics, RNG state)`` out.  The pool is spawned once,
    on the first ``map``, and stays **warm** across rounds (``spawn_count``
    is the regression-tested witness).

:class:`ThreadPoolBackend`
    Runs the tasks on a warm thread pool in the calling process.  NumPy
    releases the GIL inside the conv/GEMM kernels, so client steps overlap
    with zero pickling; bit-identical to serial by construction.

Backend contract
----------------
Implementations must guarantee, for a single :meth:`ExecutionBackend.map`
call:

ordering
    The returned list is aligned with the task list: ``results[i]`` is the
    outcome of ``tasks[i]``, regardless of completion order.
determinism
    A task's outcome depends only on the owning client's fields (datasets,
    configuration, trainer) and its RNG state at submission time.  Backends
    synchronize per-client RNG state with the caller's client objects, so a
    serial and a parallel run of the same algorithm with the same seed
    produce **bit-identical** states.
state ownership
    Task input states are never mutated.  Returned states are fresh arrays
    owned by the caller (workers return pickled copies; the serial backend
    returns whatever the client's ``local_train`` returns, which is the
    original inline-loop behavior).
one task per client
    A single ``map`` call may contain at most one task per client; chaining
    two updates of the same client within one call would make the RNG
    hand-off ambiguous.  Backends raise ``ValueError`` otherwise.
cohort dispatch
    A ``map`` call need not cover the bound roster: under partial
    participation (see :mod:`repro.fl.scheduling`) it carries tasks only
    for the round's cohort, in roster order.  Clients outside the cohort
    are untouched — their RNG state does not advance — so sampled runs stay
    bit-identical across backends and across checkpoint resume.

Transport envelopes
-------------------
A task may carry a wire envelope (``ClientTask.wire``, built by
:class:`repro.fl.transport.Channel`) instead of a raw state: the encoded
downlink payload is decoded where the task runs, and — when the envelope
requests it — the resulting state is encoded before it is returned.  For
the process pool this means only compressed payloads cross the process
boundary.  The decode/encode operations are pure functions of the payload,
so the bit-identity contract above extends to every codec.

Flat-buffer hand-off
--------------------
Raw (uncompressed) states are :class:`~repro.fl.parameters.FlatState`
objects whose custom pickling ships **one contiguous buffer** plus a tiny
``(name, shape)`` key per state — not a dict of per-tensor arrays — so an
uncompressed round crosses the process boundary as a single block each way.
Delta uploads are computed as one vector subtraction over those buffers.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import traceback as traceback_module
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.fl.faults.errors import ClientExecutionError, TaskFailure
from repro.fl.parameters import State, flat_pair, wrap_flat
from repro.fl.trainer import StepStatistics
from repro.utils.threadpools import (
    BLAS_AUTO,
    BlasPolicy,
    blas_thread_limit,
    check_blas_policy,
    resolve_blas_threads,
    set_blas_threads,
)

logger = logging.getLogger(__name__)

#: Task operations understood by every backend.
TRAIN = "train"
FINETUNE = "finetune"
_OPS = (TRAIN, FINETUNE)


@dataclass
class ClientTask:
    """One unit of client-side work inside a communication round.

    ``client_index`` indexes into the client roster the backend was bound to
    (not the client id).  Exactly one of two inputs carries the starting
    model: ``state`` (a raw in-process state) or ``wire`` (a transport
    envelope — see :class:`repro.fl.transport.WireTask` — whose encoded
    payload is decoded where the task runs).
    """

    client_index: int
    state: Optional[State] = None
    op: str = TRAIN
    steps: Optional[int] = None
    proximal_mu: Optional[float] = None
    wire: Optional[object] = None

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown client op {self.op!r}; expected one of {_OPS}")
        if (self.state is None) == (self.wire is None):
            raise ValueError("a ClientTask needs exactly one of state= or wire=")


@dataclass
class ClientUpdate:
    """The outcome of one :class:`ClientTask`.

    ``state`` is the client's resulting model.  When the task carried a
    wire envelope requesting backend-side upload encoding, ``state`` is
    ``None`` and ``payload`` holds the encoded upload instead (the channel
    decodes it in the coordinating process).
    """

    client_index: int
    client_id: int
    state: Optional[State]
    stats: StepStatistics
    payload: Optional[object] = None


def run_client_task(client, task: ClientTask):
    """Execute ``task`` on ``client``; returns ``(new_state, payload, stats)``.

    Shared by every backend so serial and parallel execution dispatch (and
    transport encode/decode) identically.  For a wire task, the starting
    state is decoded from the envelope's payload here; when the envelope
    requests backend-side upload encoding, the resulting state is encoded
    (as a delta against the decoded start when ``delta_upload`` is set) and
    returned as ``payload`` with ``new_state=None``.
    """
    if task.wire is not None:
        start_state = task.wire.down_codec.decode(task.wire.payload)
    else:
        start_state = task.state
    if task.op == TRAIN:
        new_state, stats = client.local_train(
            start_state, steps=task.steps, proximal_mu=task.proximal_mu
        )
    elif task.op == FINETUNE:
        new_state, stats = client.fine_tune(start_state, steps=task.steps)
    else:  # pragma: no cover - guarded in __post_init__
        raise ValueError(f"unknown client op {task.op!r}")
    if task.wire is not None and task.wire.up_codec is not None:
        if task.wire.delta_upload:
            # Flat states compute the upload delta on their contiguous
            # buffers in one pass (bit-identical to the per-name loop).
            pair = flat_pair(start_state, new_state)
            if pair is not None:
                layout, start_vector, new_vector = pair
                target = wrap_flat(layout, new_vector - start_vector)
            else:
                target = {name: new_state[name] - start_state[name] for name in new_state}
        else:
            target = new_state
        return None, task.wire.up_codec.encode(target), stats
    return new_state, None, stats


def _check_one_task_per_client(tasks: Sequence[ClientTask]) -> None:
    seen = set()
    for task in tasks:
        if task.client_index in seen:
            raise ValueError(
                f"duplicate task for client index {task.client_index}: a backend map() "
                "call may contain at most one task per client"
            )
        seen.add(task.client_index)


class ExecutionBackend:
    """Interface every execution backend implements (see module docstring).

    BLAS thread policy
    ------------------
    Every backend carries a ``blas_threads`` policy (default ``"auto"``, see
    :func:`repro.utils.threadpools.resolve_blas_threads`): serial execution
    leaves the BLAS pool alone — one client's GEMMs already spread across
    every core — while the pooled backends pin each of W workers to
    ``cores // W`` BLAS threads so the workers x BLAS-threads product never
    oversubscribes the machine (the pre-PR records where "parallel" lost to
    serial were exactly this oversubscription).  An integer pins every
    worker to that count; ``None`` disables BLAS management entirely.
    """

    #: Registry / CLI name, overridden by subclasses.
    name: str = "base"

    def __init__(self, blas_threads: BlasPolicy = BLAS_AUTO):
        self._clients: List = []
        self.blas_threads = check_blas_policy(blas_threads)
        #: Worker-pool respawns after a detected worker death or abandoned
        #: task (always 0 for the in-process backends).
        self.respawns = 0

    def resolved_blas_threads(self, pool_size: int) -> Optional[int]:
        """Per-worker BLAS thread count for a pool of ``pool_size`` workers."""
        return resolve_blas_threads(self.blas_threads, pool_size)

    def bind(self, clients: Sequence) -> None:
        """Attach the client roster tasks will index into.

        Called by :class:`repro.fl.algorithms.FederatedAlgorithm` on
        construction; may be called again with a different roster (a pooled
        backend then discards workers caching the old roster).
        """
        self._clients = list(clients)

    @property
    def clients(self) -> List:
        return self._clients

    def imap_outcomes(
        self, tasks: Sequence[ClientTask], timeout: Optional[float] = None
    ) -> Iterator[Union[ClientUpdate, TaskFailure]]:
        """Yield one outcome per task, in task order, **never raising** per task.

        The supervised-execution primitive every backend implements: a task
        that fails (worker exception, dead worker process, exceeded
        ``timeout``) yields a :class:`~repro.fl.faults.TaskFailure` *value*
        in its slot instead of killing the iterator, so the resilience
        layer can retry individual clients while the rest of the wave keeps
        streaming.  ``timeout`` is a best-effort per-task wall-clock bound:
        the process pool abandons (and respawns around) a late task, the
        thread pool stops waiting (the thread itself cannot be reclaimed),
        and the serial backend ignores it — a task it runs has, by
        construction, already finished when it could be checked.
        """
        raise NotImplementedError

    def imap(self, tasks: Sequence[ClientTask]) -> Iterator[ClientUpdate]:
        """Yield outcomes one at a time, in task order.

        Streaming aggregation folds each update as it is yielded and then
        releases it, so the coordinating process never holds a whole
        cohort's worth of states.  A failed task raises a
        :class:`~repro.fl.faults.ClientExecutionError` annotated with the
        client id and backend (instead of a bare worker traceback or
        ``BrokenProcessPool``).
        """
        for outcome in self.imap_outcomes(tasks):
            if isinstance(outcome, TaskFailure):
                raise ClientExecutionError(
                    outcome.error,
                    client_id=outcome.client_id,
                    client_index=outcome.client_index,
                    backend=self.name,
                    kind=outcome.kind,
                    remote_traceback=outcome.traceback,
                )
            yield outcome

    def map(self, tasks: Sequence[ClientTask]) -> List[ClientUpdate]:
        """Execute every task and return outcomes aligned with ``tasks``."""
        return list(self.imap(tasks))

    def close(self) -> None:
        """Release any worker resources; the backend may be re-used after."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(clients={len(self._clients)})"


class SerialBackend(ExecutionBackend):
    """Runs every client task in the calling process, in task order.

    This reproduces the original inline training loops exactly: same call
    order, same RNG consumption, same returned objects.
    """

    name = "serial"

    def imap_outcomes(
        self, tasks: Sequence[ClientTask], timeout: Optional[float] = None
    ) -> Iterator[Union[ClientUpdate, TaskFailure]]:
        # ``timeout`` is ignored: by the time a serial task could be
        # checked against a deadline it has already finished.
        _check_one_task_per_client(tasks)
        # Under the default "auto" policy this resolves to None (a no-op):
        # serial execution wants BLAS spreading one client's GEMMs across
        # every core, which is its out-of-the-box behavior.  An explicit
        # integer policy pins the round and restores the prior count after.
        with blas_thread_limit(self.resolved_blas_threads(1)):
            for position, task in enumerate(tasks):
                client = self._clients[task.client_index]
                try:
                    state, payload, stats = run_client_task(client, task)
                except Exception as error:
                    yield TaskFailure(
                        task_index=position,
                        client_index=task.client_index,
                        client_id=client.client_id,
                        kind="exception",
                        error=repr(error),
                        traceback=traceback_module.format_exc(),
                    )
                    continue
                yield ClientUpdate(
                    client_index=task.client_index,
                    client_id=client.client_id,
                    state=state,
                    stats=stats,
                    payload=payload,
                )


# -- process-pool worker plumbing ------------------------------------------------
#
# Workers cache the client roster in a module-level global (set once by the
# pool initializer) so per-task payloads stay small.  Each payload carries the
# parent's current RNG state for the client, and each result carries the RNG
# state after training; the parent writes it back into its own client object.
# That hand-off is what makes parallel runs bit-identical to serial ones.

_WORKER_CLIENTS: Optional[List] = None


def _init_worker(clients: List, blas_threads: Optional[int] = None) -> None:
    global _WORKER_CLIENTS
    _WORKER_CLIENTS = clients
    if blas_threads is not None:
        # Post-fork/post-spawn BLAS pinning: each worker limits its own copy
        # of the BLAS pool so the workers x BLAS-threads product stays within
        # the machine (see the ExecutionBackend docstring).
        set_blas_threads(blas_threads)


@dataclass
class _WorkerFailure:
    """A worker-side task failure, shipped back as a picklable value.

    Raising inside a pool worker would cross the process boundary as an
    opaque re-raised traceback (or, for unpicklable exceptions, kill the
    pool); returning this value instead keeps the pool healthy and lets
    the parent attach client/backend/round context.
    """

    client_index: int
    op: str
    error: str
    traceback: str


def _worker_run_task(payload):
    index, op, blob, is_wire, steps, proximal_mu, rng_state = payload
    client = None
    try:
        if isinstance(blob, bytes):
            blob = pickle.loads(blob)
        client = _WORKER_CLIENTS[index]
        client.rng_state = rng_state
        if is_wire:
            task = ClientTask(client_index=index, wire=blob, op=op, steps=steps, proximal_mu=proximal_mu)
        else:
            task = ClientTask(client_index=index, state=blob, op=op, steps=steps, proximal_mu=proximal_mu)
        new_state, upload_payload, stats = run_client_task(client, task)
        rng_state = client.rng_state
    except Exception as error:
        # Free the (possibly virtual) client on the failure path too, then
        # ship the failure back as a value — see _WorkerFailure.
        release = getattr(client, "release", None)
        if release is not None:
            try:
                release()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        return _WorkerFailure(
            client_index=index,
            op=op,
            error=repr(error),
            traceback=traceback_module.format_exc(),
        )
    # Virtual client handles (population runs) free the materialized client
    # between tasks so worker memory stays bounded by the in-flight task,
    # not the roster; the captured RNG state is what the parent needs.
    release = getattr(client, "release", None)
    if release is not None:
        release()
    return new_state, upload_payload, stats, rng_state


def default_worker_count() -> int:
    """Worker count used when none is requested (the machine's CPU count).

    Under the default ``blas_threads="auto"`` policy this is core-aware
    rather than oversubscribing: each of the N workers is pinned to
    ``cores // N = 1`` BLAS thread, so the pool uses exactly the machine.
    """
    return max(1, os.cpu_count() or 1)


def clamp_workers(requested: int) -> int:
    """Clamp a requested worker count to the machine's cores, with a warning.

    More pool workers than cores cannot add parallelism — they only add
    scheduling thrash (and, for the process pool, memory for extra rosters).
    The *requested* value stays visible on ``backend.workers``; this clamp
    applies to the effective pool size only.
    """
    cores = os.cpu_count() or 1
    if requested > cores:
        logger.warning(
            "requested %d workers but only %d core%s available; clamping the pool to %d",
            requested,
            cores,
            "" if cores == 1 else "s are",
            cores,
        )
        return cores
    return requested


class ProcessPoolBackend(ExecutionBackend):
    """Fans one round's client tasks out across worker processes.

    The pool is created lazily on the first :meth:`map` call and the bound
    client roster is shipped to every worker once (via the pool initializer).
    Each task then only transfers the initial state in and the updated state,
    step statistics, and RNG state out.

    The pool is a ``concurrent.futures.ProcessPoolExecutor``, which —
    unlike ``multiprocessing.Pool`` — *detects* a worker process dying
    (``BrokenProcessPool``) instead of hanging the round.  On a detected
    death the backend respawns the pool (``respawns`` counts these;
    ``spawn_count`` still witnesses warm-pool reuse for healthy runs) and
    re-dispatches the in-flight tasks from their original payloads, whose
    pre-captured RNG states make the re-run bit-identical.  A task whose
    worker dies repeatedly, or that exceeds the per-task ``timeout``,
    yields a :class:`~repro.fl.faults.TaskFailure` in its slot.

    Parameters
    ----------
    workers:
        Number of worker processes (default: the machine's CPU count).  The
        effective pool size is additionally clamped to the core count (with
        a logged warning, see :func:`clamp_workers`) and capped by the
        roster size; the requested value stays visible as ``self.workers``,
        the clamped one as ``self.effective_workers``.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (cheap, and tolerates non-picklable model factories) and
        ``"spawn"`` elsewhere; under ``"spawn"`` the bound clients must be
        picklable.
    blas_threads:
        BLAS thread policy (see :class:`ExecutionBackend`); each worker pins
        its own BLAS pool in the initializer, i.e. post-fork.
    """

    name = "process"

    #: Consecutive worker deaths tolerated per task position within one
    #: ``imap_outcomes`` call before the task yields a crash failure.
    MAX_REDISPATCHES = 2

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        blas_threads: BlasPolicy = BLAS_AUTO,
    ):
        super().__init__(blas_threads=blas_threads)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = int(workers) if workers is not None else default_worker_count()
        self.effective_workers = clamp_workers(self.workers)
        if start_method is None:
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Number of worker-pool spawns over this backend's lifetime.  A
        #: multi-round run must report exactly 1 (the warm-pool guarantee,
        #: regression-tested): workers are spawned lazily on the first
        #: ``map`` and reused by every subsequent round until ``close()``
        #: or a re-``bind`` with a different roster.
        self.spawn_count = 0

    def bind(self, clients: Sequence) -> None:
        roster = list(clients)
        same_roster = len(roster) == len(self._clients) and all(
            new is old for new, old in zip(roster, self._clients)
        )
        if self._pool is not None and not same_roster:
            # Workers cache the roster they were initialized with; a new
            # roster needs a new pool.
            self.close()
        super().bind(roster)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if not self._clients:
                raise RuntimeError("ProcessPoolBackend.map called before bind()")
            context = multiprocessing.get_context(self.start_method)
            processes = max(1, min(self.effective_workers, len(self._clients)))
            self._pool = ProcessPoolExecutor(
                max_workers=processes,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self._clients, self.resolved_blas_threads(processes)),
            )
            self.spawn_count += 1
        return self._pool

    def _respawn(self) -> ProcessPoolExecutor:
        """Replace a broken/abandoned pool with a fresh one."""
        self._shutdown_pool(kill=True)
        self.respawns += 1
        logger.warning(
            "process pool lost a worker; respawning (respawn #%d)", self.respawns
        )
        return self._ensure_pool()

    def _shutdown_pool(self, kill: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            # A worker may be dead or wedged on an abandoned task; don't
            # wait on it.  Terminate the worker processes the way
            # multiprocessing.Pool.terminate() did, then reap without
            # blocking.
            pool.shutdown(wait=False, cancel_futures=True)
            # _processes may already be None once the executor has fully
            # shut down (e.g. every worker died and reaping finished).
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    def _payloads(self, tasks: Sequence[ClientTask]) -> List[tuple]:
        # Broadcast rounds pass the *same* state (or wire envelope) object in
        # every task; pickle each distinct one once and ship the blob, instead
        # of re-serializing the full model per client.  Wire envelopes carry an
        # already-encoded payload, so a compressed round ships compressed bytes
        # across the process boundary in both directions.
        blobs: Dict[int, bytes] = {}
        for task in tasks:
            carrier = task.wire if task.wire is not None else task.state
            key = id(carrier)
            if key not in blobs:
                blobs[key] = pickle.dumps(carrier, protocol=pickle.HIGHEST_PROTOCOL)
        return [
            (
                task.client_index,
                task.op,
                blobs[id(task.wire if task.wire is not None else task.state)],
                task.wire is not None,
                task.steps,
                task.proximal_mu,
                self._clients[task.client_index].rng_state,
            )
            for task in tasks
        ]

    def _to_update(self, task: ClientTask, raw) -> ClientUpdate:
        state, upload_payload, stats, rng_state = raw
        client = self._clients[task.client_index]
        client.rng_state = rng_state
        return ClientUpdate(
            client_index=task.client_index,
            client_id=client.client_id,
            state=state,
            stats=stats,
            payload=upload_payload,
        )

    def _resubmit(self, pool, futures, payloads, start: int) -> None:
        """Re-dispatch positions >= ``start`` that have no usable result.

        Futures that completed before the pool broke keep their results;
        everything else is resubmitted from its *original* payload, whose
        pre-captured RNG state makes the re-run bit-identical.
        """
        for position in range(start, len(payloads)):
            future = futures[position]
            done_ok = future.done() and not future.cancelled() and future.exception() is None
            if not done_ok:
                futures[position] = pool.submit(_worker_run_task, payloads[position])

    def imap_outcomes(
        self, tasks: Sequence[ClientTask], timeout: Optional[float] = None
    ) -> Iterator[Union[ClientUpdate, TaskFailure]]:
        if not tasks:
            return
        _check_one_task_per_client(tasks)
        pool = self._ensure_pool()
        payloads = self._payloads(tasks)
        futures = [pool.submit(_worker_run_task, payload) for payload in payloads]
        redispatches = [0] * len(tasks)
        position = 0
        # Futures are drained in submission order, so the coordinator folds
        # update i while updates i+1.. are still training (pool.imap's
        # streaming behavior, with failure detection on top).
        while position < len(tasks):
            task = tasks[position]
            client = self._clients[task.client_index]
            try:
                raw = futures[position].result(timeout=timeout)
            except BrokenExecutor as error:
                # A worker died; every pending future is lost.  Respawn and
                # re-dispatch the in-flight tasks, giving the victim a
                # bounded number of fresh chances.
                pool = self._respawn()
                redispatches[position] += 1
                if redispatches[position] > self.MAX_REDISPATCHES:
                    yield TaskFailure(
                        task_index=position,
                        client_index=task.client_index,
                        client_id=client.client_id,
                        kind="crash",
                        error=(
                            f"worker process died {redispatches[position]} times "
                            f"running this task ({error!r})"
                        ),
                    )
                    position += 1
                self._resubmit(pool, futures, payloads, position)
                continue
            except FuturesTimeoutError:
                # The worker is still running an abandoned task; it cannot
                # be trusted to pick up new work, so the pool is respawned.
                yield TaskFailure(
                    task_index=position,
                    client_index=task.client_index,
                    client_id=client.client_id,
                    kind="timeout",
                    error=f"task exceeded the {timeout:g}s per-task timeout",
                )
                pool = self._respawn()
                position += 1
                self._resubmit(pool, futures, payloads, position)
                continue
            if isinstance(raw, _WorkerFailure):
                yield TaskFailure(
                    task_index=position,
                    client_index=task.client_index,
                    client_id=client.client_id,
                    kind="exception",
                    error=raw.error,
                    traceback=raw.traceback,
                )
            else:
                yield self._to_update(task, raw)
            position += 1

    def close(self) -> None:
        self._shutdown_pool(kill=False)


class ThreadPoolBackend(ExecutionBackend):
    """Fans one round's client tasks out across a warm thread pool.

    NumPy releases the GIL inside its BLAS/gather kernels — exactly where
    the client step spends its time — so threads overlap the conv/GEMM work
    of different clients with **zero pickling**: tasks read and mutate the
    caller's own client objects directly, and states never cross a process
    boundary.

    Safety rests on the roster invariants the backend contract already
    guarantees: at most one task per client per ``map`` call, and every
    mutable object a task touches (model, trainer, optimizer scratch,
    per-layer workspaces, RNG) is owned by exactly one client.  Shared
    read-mostly structures (interned :class:`~repro.fl.parameters.StateLayout`
    objects, memoized im2col indices) are immutable after construction and
    their caches are race-free (atomic ``setdefault`` / ``lru_cache``).

    Results are bit-identical to :class:`SerialBackend`: each client runs
    the identical operation sequence with its own RNG, so scheduling order
    cannot influence any value.  The executor is spawned lazily on the
    first ``map`` and stays warm across rounds (``spawn_count`` counts
    spawns, exactly like the process pool).

    The BLAS thread count is process-global state shared by every pool
    thread, so the policy is applied as a context manager **around** each
    ``map``/``imap`` call (pin to ``cores // pool_size`` for the round,
    restore after) rather than per task.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None, blas_threads: BlasPolicy = BLAS_AUTO):
        super().__init__(blas_threads=blas_threads)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = int(workers) if workers is not None else default_worker_count()
        self.effective_workers = clamp_workers(self.workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self.spawn_count = 0

    def _pool_size(self) -> int:
        return max(1, min(self.effective_workers, len(self._clients)))

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            if not self._clients:
                raise RuntimeError("ThreadPoolBackend.map called before bind()")
            self._executor = ThreadPoolExecutor(
                max_workers=self._pool_size(),
                thread_name_prefix="repro-client",
            )
            self.spawn_count += 1
        return self._executor

    def _run_one(self, task: ClientTask) -> ClientUpdate:
        client = self._clients[task.client_index]
        state, payload, stats = run_client_task(client, task)
        return ClientUpdate(
            client_index=task.client_index,
            client_id=client.client_id,
            state=state,
            stats=stats,
            payload=payload,
        )

    def imap_outcomes(
        self, tasks: Sequence[ClientTask], timeout: Optional[float] = None
    ) -> Iterator[Union[ClientUpdate, TaskFailure]]:
        if not tasks:
            return
        _check_one_task_per_client(tasks)
        executor = self._ensure_executor()
        # Futures are drained in submission order as they complete
        # (Executor.map's streaming behavior, with failure capture on top).
        # ``timeout`` is best-effort here: the coordinator stops *waiting*
        # for a late task, but an in-process thread cannot be reclaimed —
        # it runs to completion in the background.
        with blas_thread_limit(self.resolved_blas_threads(self._pool_size())):
            futures = [executor.submit(self._run_one, task) for task in tasks]
            for position, (task, future) in enumerate(zip(tasks, futures)):
                client = self._clients[task.client_index]
                try:
                    yield future.result(timeout=timeout)
                except FuturesTimeoutError:
                    future.cancel()
                    yield TaskFailure(
                        task_index=position,
                        client_index=task.client_index,
                        client_id=client.client_id,
                        kind="timeout",
                        error=f"task exceeded the {timeout:g}s per-task timeout",
                    )
                except Exception as error:
                    yield TaskFailure(
                        task_index=position,
                        client_index=task.client_index,
                        client_id=client.client_id,
                        kind="exception",
                        error=repr(error),
                        traceback=traceback_module.format_exc(),
                    )

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


#: Registry of execution backends, keyed by their CLI name.
BACKENDS: Dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
}


def create_backend(
    name: Optional[str] = None,
    workers: Optional[int] = None,
    blas_threads: BlasPolicy = BLAS_AUTO,
) -> ExecutionBackend:
    """Instantiate an execution backend by name.

    With ``name=None`` (or ``"auto"``) the backend is chosen from ``workers``:
    more than one worker selects the process pool, otherwise serial — so
    ``--workers N`` alone is enough to opt into parallel execution, and
    ``--workers 1`` is guaranteed to reproduce serial results.  The thread
    backend is never auto-selected; ask for it with ``--backend thread``.

    ``blas_threads`` is the BLAS thread policy (``"auto"``, an exact count,
    or ``None`` to leave the BLAS library unmanaged); see
    :class:`ExecutionBackend` and ``--blas-threads`` on the CLI.
    """
    if name is None or name == "auto":
        name = ProcessPoolBackend.name if (workers or 1) > 1 else SerialBackend.name
    key = name.lower()
    if key not in BACKENDS:
        raise ValueError(f"unknown execution backend {name!r}; available: {sorted(BACKENDS)}")
    if key == ProcessPoolBackend.name:
        return ProcessPoolBackend(workers=workers, blas_threads=blas_threads)
    if key == ThreadPoolBackend.name:
        return ThreadPoolBackend(workers=workers, blas_threads=blas_threads)
    if key == SerialBackend.name:
        if workers is not None and workers > 1:
            raise ValueError(
                f"backend 'serial' cannot use {workers} workers; "
                "drop --workers or choose the 'process' backend"
            )
        return SerialBackend(blas_threads=blas_threads)
    # Externally registered backends (e.g. "wire" from repro.fl.net) take no
    # worker count; their own options are wired up by the experiment runner.
    if workers is not None and workers > 1:
        raise ValueError(
            f"backend {key!r} cannot use {workers} workers; drop --workers"
        )
    return BACKENDS[key](blas_threads=blas_threads)
