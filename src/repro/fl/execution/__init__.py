"""Execution engine for decentralized training.

This subpackage decides *where* one round's client updates run
(:mod:`repro.fl.execution.backend`) and how long runs survive interruption
(:mod:`repro.fl.execution.checkpoint`).  See ``docs/architecture.md`` for the
backend contract every implementation must honor.
"""

from repro.fl.execution.backend import (
    BACKENDS,
    ClientTask,
    ClientUpdate,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    clamp_workers,
    create_backend,
    default_worker_count,
    run_client_task,
)
from repro.fl.execution.checkpoint import CheckpointManager, RoundCheckpoint
from repro.fl.faults.errors import ClientExecutionError, TaskFailure

__all__ = [
    "BACKENDS",
    "ClientTask",
    "ClientUpdate",
    "ClientExecutionError",
    "TaskFailure",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "clamp_workers",
    "create_backend",
    "default_worker_count",
    "run_client_task",
    "CheckpointManager",
    "RoundCheckpoint",
]
