"""Per-round checkpointing of decentralized training runs.

Long multi-round experiments (the paper preset runs R=50 rounds at S=100
local steps) should survive interruption.  A :class:`CheckpointManager`
persists, after every communication round:

* the round index,
* the aggregated global :data:`~repro.fl.parameters.State` (as an ``.npz``
  archive via :mod:`repro.nn.serialization`),
* optional named extra states (e.g. FedAvgM's server momentum buffer),
* every client's RNG state plus optional algorithm-specific JSON metadata
  (in a sidecar ``.json`` file).

Restoring the client RNG states is what makes a resumed run **bit-identical**
to an uninterrupted one: each client's batch-shuffling RNG continues exactly
where it stopped.

Checkpointing is supported by the algorithms whose cross-round state is a
single global model (FedAvg, FedProx, FedAvgM, DP-FedProx, and the federated
stage of FedProx+fine-tuning).  Personalized algorithms that carry per-client
state across rounds (FedBN, FedProx-LG, IFCA, alpha-portion sync) currently
ignore the checkpointer.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.fl.parameters import State, as_flat_state
from repro.nn.serialization import load_state_dict, save_state_dict

PathLike = Union[str, Path]

_ROUND_FILE = re.compile(r"^round_(\d{5})\.json$")


@dataclass
class RoundCheckpoint:
    """Everything restored when resuming from a completed round."""

    round_index: int
    global_state: State
    client_rng_states: Dict[int, dict] = field(default_factory=dict)
    extra_states: Dict[str, State] = field(default_factory=dict)
    extra_meta: Dict[str, object] = field(default_factory=dict)


class CheckpointManager:
    """Saves and restores per-round training checkpoints in one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    keep:
        How many most-recent rounds to retain (older ones are pruned).
    """

    def __init__(self, directory: PathLike, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)

    # -- paths -----------------------------------------------------------------
    def _meta_path(self, round_index: int) -> Path:
        return self.directory / f"round_{round_index:05d}.json"

    def _state_path(self, round_index: int) -> Path:
        return self.directory / f"round_{round_index:05d}.npz"

    def _extra_path(self, round_index: int, name: str) -> Path:
        return self.directory / f"round_{round_index:05d}.extra.{name}.npz"

    # -- writing ------------------------------------------------------------------
    def save(
        self,
        round_index: int,
        global_state: State,
        clients: Sequence = (),
        extra_states: Optional[Dict[str, State]] = None,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Persist one completed round; returns the metadata file path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        save_state_dict(global_state, self._state_path(round_index))
        extra_states = dict(extra_states or {})
        for name, state in extra_states.items():
            if not re.fullmatch(r"[A-Za-z0-9_]+", name):
                raise ValueError(f"extra state name {name!r} must be alphanumeric/underscore")
            save_state_dict(state, self._extra_path(round_index, name))
        meta = {
            "round_index": int(round_index),
            "client_rng_states": {
                str(client.client_id): client.rng_state for client in clients
            },
            "extra_states": sorted(extra_states),
            "extra_meta": dict(extra_meta or {}),
        }
        path = self._meta_path(round_index)
        # Write-then-rename so a crash mid-write never leaves a checkpoint
        # whose metadata parses but whose arrays are missing.
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
        tmp.replace(path)
        self._prune()
        return path

    def _prune(self) -> None:
        rounds = self.saved_rounds()
        for stale in rounds[: -self.keep]:
            for candidate in self.directory.glob(f"round_{stale:05d}*"):
                candidate.unlink(missing_ok=True)

    # -- reading ------------------------------------------------------------------
    def saved_rounds(self) -> List[int]:
        """Round indices with a complete metadata file, ascending."""
        if not self.directory.is_dir():
            return []
        rounds = []
        for entry in self.directory.iterdir():
            match = _ROUND_FILE.match(entry.name)
            if match:
                rounds.append(int(match.group(1)))
        return sorted(rounds)

    def load(self, round_index: int) -> RoundCheckpoint:
        """Load one specific round's checkpoint."""
        meta_path = self._meta_path(round_index)
        if not meta_path.exists():
            raise FileNotFoundError(f"no checkpoint for round {round_index} in {self.directory}")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        # States re-enter the flat-buffer engine on load, so a checkpoint
        # written before the engine existed (plain per-tensor archives)
        # resumes onto the flat hot paths unchanged.
        global_state = as_flat_state(load_state_dict(self._state_path(round_index)))
        extra_states = {
            name: as_flat_state(load_state_dict(self._extra_path(round_index, name)))
            for name in meta.get("extra_states", [])
        }
        return RoundCheckpoint(
            round_index=int(meta["round_index"]),
            global_state=global_state,
            client_rng_states={
                int(client_id): state for client_id, state in meta.get("client_rng_states", {}).items()
            },
            extra_states=extra_states,
            extra_meta=dict(meta.get("extra_meta", {})),
        )

    def load_latest(self) -> Optional[RoundCheckpoint]:
        """Load the most recent checkpoint, or ``None`` when there is none."""
        rounds = self.saved_rounds()
        if not rounds:
            return None
        return self.load(rounds[-1])

    def restore_clients(self, clients: Sequence, checkpoint: RoundCheckpoint) -> None:
        """Write the checkpointed RNG states back into ``clients``.

        Clients absent from the checkpoint keep their current RNG state (so a
        roster grown since the checkpoint still resumes deterministically for
        the original clients).
        """
        for client in clients:
            state = checkpoint.client_rng_states.get(client.client_id)
            if state is not None:
                client.rng_state = state

    def clear(self) -> None:
        """Delete every checkpoint file in the directory."""
        for round_index in self.saved_rounds():
            for candidate in self.directory.glob(f"round_{round_index:05d}*"):
                candidate.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointManager({str(self.directory)!r}, keep={self.keep})"
