"""Operations on model parameter states used by federated aggregation.

A "state" is the flat ``name -> ndarray`` mapping produced by
:meth:`repro.nn.Module.state_dict`.  Everything the developer ever sees in
the decentralized setting is one of these states — never raw data — so all
server-side algorithms (FedAvg/FedProx averaging, FedProx-LG partial
aggregation, IFCA per-cluster aggregation, alpha-portion sync) are expressed
as arithmetic over states.

The flat-buffer engine
----------------------
Server-side arithmetic used to be dict comprehensions over ``name ->
ndarray``, paying per-tensor Python overhead, ``np.stack`` copies, and dict
re-materialization on paths that run once per client per round.  The engine
below makes that whole layer operate on single contiguous buffers:

:class:`StateLayout`
    A frozen layout — ordered names, shapes, per-entry offsets into one
    flat float64 vector — derived once per distinct architecture and
    interned, so two states of the same model share one layout *object*.
:class:`FlatState`
    A ``dict`` subclass whose values are **zero-copy views** into one
    contiguous 1-D ``vector``.  Algorithms keep indexing ``state[name]``
    exactly as before (the dict API is the thin view), while the hot
    arithmetic below reaches straight for ``state.vector``:
    :func:`weighted_average` becomes one ``(K, P) @ (K,)`` GEMV instead of a
    per-name stack/tensordot loop, :func:`interpolate`, delta
    encode/decode, error-feedback folds, and
    :meth:`~repro.fl.FederatedServer.alpha_portion_sync` become whole-model
    vector ops, and pickling (:meth:`FlatState.__reduce__`) ships the one
    buffer across process boundaries instead of a dict of arrays.

Bit-parity rules
----------------
Everything elementwise (interpolate, clone, deltas, folds, noise, clipping
scale) is **bit-identical** to the per-name dict loops by construction: the
flat vector stores each tensor's elements contiguously in state order, so
the same IEEE operations run on the same values in the same order.
:func:`weighted_average` is the one deliberate exception: the single GEMV
may differ from the per-name ``np.tensordot`` loop at the last ulp (BLAS
kernel tails), which is why the pre-refactor implementation is kept as
:func:`reference_weighted_average` behind the :func:`reference_mode` test
flag and asserted against at ``1e-12``.  Flat and plain-dict inputs always
produce identical results because both are routed through the same packed
GEMV.

``sorted`` vs. state order
--------------------------
A layout preserves its source state's key order (the model's
``state_dict`` insertion order) so per-name RNG consumption — e.g. DP noise
draws — is unchanged.  The wire codecs flatten in *sorted* name order (the
PR 2 wire format); :meth:`StateLayout.sorted_permutation` provides the
cached gather indices between the two orders.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

State = Dict[str, np.ndarray]

#: One layout entry: ``(name, shape)``.
LayoutEntry = Tuple[str, Tuple[int, ...]]

# -- engine switches (test flags) ------------------------------------------------
#
# ``_FLAT_ENABLED`` controls the *representation*: when off, the conversion
# points (initial states, client results, codec decodes, checkpoint loads)
# hand out plain dicts, reproducing the pre-refactor dict path with the same
# arithmetic.  ``_REFERENCE`` additionally routes ``weighted_average``
# through the pre-refactor stack/tensordot loop for parity assertions and
# benchmarks.  Both are module-global so forked worker processes inherit
# them.

_FLAT_ENABLED = True
_REFERENCE = False


def flat_states_enabled() -> bool:
    """Whether the conversion points produce :class:`FlatState` objects."""
    return _FLAT_ENABLED


@contextmanager
def flat_states_disabled():
    """Run with plain-dict states (the dict path) for parity tests."""
    global _FLAT_ENABLED
    previous = _FLAT_ENABLED
    _FLAT_ENABLED = False
    try:
        yield
    finally:
        _FLAT_ENABLED = previous


@contextmanager
def reference_mode():
    """Run with the pre-refactor aggregation arithmetic (parity/benchmarks)."""
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = True
    try:
        yield
    finally:
        _REFERENCE = previous


# -- the frozen layout -----------------------------------------------------------


class StateLayout:
    """Frozen description of a model state: ordered names, shapes, offsets.

    Layouts are derived once per distinct ``(name, shape)`` sequence and
    interned (:meth:`of`), so every state of the same architecture shares
    one layout object and compatibility checks reduce to an identity (or
    cached set-equality) test instead of rebuilding ``set(state)`` per call.
    """

    __slots__ = (
        "entries",
        "names",
        "shapes",
        "sizes",
        "offsets",
        "total_size",
        "entry_set",
        "_sorted_perm",
        "_sorted_schema",
        "_gather_cache",
    )

    _interned: Dict[Tuple[LayoutEntry, ...], "StateLayout"] = {}

    def __init__(self, entries: Tuple[LayoutEntry, ...]):
        names = tuple(name for name, _ in entries)
        if len(set(names)) != len(names):
            raise ValueError("layout entries contain duplicate names")
        self.entries = entries
        self.names = names
        self.shapes = tuple(shape for _, shape in entries)
        self.sizes = tuple(
            int(np.prod(shape, dtype=np.int64)) if shape else 1 for shape in self.shapes
        )
        offsets = [0]
        for size in self.sizes:
            offsets.append(offsets[-1] + size)
        self.total_size = offsets.pop()
        self.offsets = tuple(offsets)
        self.entry_set = frozenset(entries)
        self._sorted_perm: Optional[np.ndarray] = None
        self._sorted_schema: Optional[Tuple[LayoutEntry, ...]] = None
        self._gather_cache: Dict[int, np.ndarray] = {}

    # -- construction -----------------------------------------------------------
    @classmethod
    def of(cls, entries: Iterable[Tuple[str, Iterable[int]]]) -> "StateLayout":
        """The interned layout for an ``(name, shape)`` sequence."""
        key = tuple((str(name), tuple(int(dim) for dim in shape)) for name, shape in entries)
        layout = cls._interned.get(key)
        if layout is None:
            # setdefault keeps interning atomic under the thread-pool
            # execution backend: two clients racing to intern the same
            # architecture agree on a single canonical layout object.
            layout = cls._interned.setdefault(key, cls(key))
        return layout

    @classmethod
    def from_state(cls, state: State) -> "StateLayout":
        """The layout of a state mapping, preserving its key order."""
        return cls.of((name, np.asarray(values).shape) for name, values in state.items())

    # -- iteration ----------------------------------------------------------------
    def iter_slots(self) -> Iterator[Tuple[str, Tuple[int, ...], int, int]]:
        """Yield ``(name, shape, offset, size)`` per entry, in layout order."""
        return zip(self.names, self.shapes, self.offsets, self.sizes)

    # -- sorted (wire) order ------------------------------------------------------
    def sorted_schema(self) -> Tuple[LayoutEntry, ...]:
        """The ``(name, shape)`` entries in sorted name order (wire schema)."""
        if self._sorted_schema is None:
            self._sorted_schema = tuple(sorted(self.entries))
        return self._sorted_schema

    def sorted_permutation(self) -> Optional[np.ndarray]:
        """Gather indices mapping this layout's vector to sorted name order.

        ``None`` when the layout already is in sorted order (the common case
        for codec-decoded states).  The returned array is cached and
        read-only.
        """
        if self.names == tuple(sorted(self.names)):
            return None
        if self._sorted_perm is None:
            index = {name: position for position, name in enumerate(self.names)}
            chunks = []
            for name in sorted(self.names):
                position = index[name]
                offset = self.offsets[position]
                chunks.append(np.arange(offset, offset + self.sizes[position], dtype=np.int64))
            perm = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
            perm.setflags(write=False)
            self._sorted_perm = perm
        return self._sorted_perm

    # -- alignment with other layouts ---------------------------------------------
    def compatible_with(self, other: "StateLayout") -> bool:
        """Same names and shapes (order may differ)."""
        return self is other or self.entry_set == other.entry_set

    def gather_from(self, other: "StateLayout") -> np.ndarray:
        """Indices ``p`` such that ``other_vector[p]`` is in *this* order.

        Requires :meth:`compatible_with`; the permutation is cached per
        source layout (layouts are interned, so ``id`` is a stable key).
        """
        cached = self._gather_cache.get(id(other))
        if cached is not None:
            return cached
        if not self.compatible_with(other):
            raise ValueError("cannot align states with different names/shapes")
        position = {name: index for index, name in enumerate(other.names)}
        chunks = []
        for name, _, _, size in self.iter_slots():
            source = position[name]
            offset = other.offsets[source]
            chunks.append(np.arange(offset, offset + size, dtype=np.int64))
        perm = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        perm.setflags(write=False)
        self._gather_cache[id(other)] = perm
        return perm

    # -- packing ------------------------------------------------------------------
    def pack(self, state: State, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy a state's values into one contiguous float64 vector."""
        vector = out if out is not None else np.empty(self.total_size, dtype=np.float64)
        for name, shape, offset, size in self.iter_slots():
            np.copyto(vector[offset : offset + size].reshape(shape), state[name])
        return vector

    def view_dict(self, vector: np.ndarray) -> State:
        """A plain dict of zero-copy views into ``vector`` (layout order)."""
        return {
            name: vector[offset : offset + size].reshape(shape)
            for name, shape, offset, size in self.iter_slots()
        }

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, StateLayout) and self.entries == other.entries
        )

    def __hash__(self) -> int:
        return hash(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateLayout({len(self.entries)} tensors, {self.total_size} values)"


# -- the flat state --------------------------------------------------------------


class FlatState(dict):
    """A model state backed by one contiguous float64 buffer.

    Behaves exactly like the ``name -> ndarray`` dicts the algorithms have
    always consumed — every value is a zero-copy view into :attr:`vector`,
    so reading is free and assigning to an existing name writes through to
    the buffer.  The key set is frozen (adding/removing entries would desync
    the views from the buffer and raises ``ValueError``).
    """

    __slots__ = ("layout", "vector")

    def __init__(self, layout: StateLayout, vector: np.ndarray):
        vector = np.asarray(vector)
        if vector.dtype != np.float64:
            vector = vector.astype(np.float64)
        if vector.ndim != 1 or vector.size != layout.total_size:
            raise ValueError(
                f"vector of size {vector.size} does not match layout "
                f"({layout.total_size} values)"
            )
        if not vector.flags.c_contiguous:
            vector = np.ascontiguousarray(vector)
        self.layout = layout
        self.vector = vector
        dict.__init__(self, layout.view_dict(vector))

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_items(cls, items: Iterable[Tuple[str, np.ndarray]]) -> "FlatState":
        """Pack ``(name, array)`` pairs into a fresh flat state (one copy)."""
        pairs = [(name, np.asarray(values)) for name, values in items]
        layout = StateLayout.of((name, values.shape) for name, values in pairs)
        flat = cls(layout, np.empty(layout.total_size, dtype=np.float64))
        for name, values in pairs:
            np.copyto(dict.__getitem__(flat, name), values)
        return flat

    @classmethod
    def from_state(cls, state: State) -> "FlatState":
        """Pack an existing state mapping (key order preserved)."""
        if isinstance(state, FlatState):
            return FlatState(state.layout, state.vector.copy())
        return cls.from_items(state.items())

    # -- mutation guard rails ----------------------------------------------------
    def __setitem__(self, name: str, value) -> None:
        view = dict.get(self, name)
        if view is None:
            raise ValueError(
                f"cannot add entry {name!r}: a FlatState's key set is frozen by its layout"
            )
        value = np.asarray(value)
        if value.shape != view.shape:
            raise ValueError(
                f"cannot assign shape {value.shape} to entry {name!r} of shape {view.shape}"
            )
        np.copyto(view, value)

    def update(self, other=(), **kwargs) -> None:  # type: ignore[override]
        items = other.items() if isinstance(other, dict) else other
        for name, value in items:
            self[name] = value
        for name, value in kwargs.items():
            self[name] = value

    def _frozen(self, *_args, **_kwargs):
        raise ValueError("a FlatState's key set is frozen by its layout")

    __delitem__ = _frozen
    pop = _frozen
    popitem = _frozen
    clear = _frozen
    setdefault = _frozen

    # -- process-boundary hand-off ----------------------------------------------
    def __reduce__(self):
        # Ship the one contiguous buffer plus the tiny (name, shape) key —
        # not a dict of per-tensor arrays.  The layout is re-interned on the
        # receiving side, so all states of one architecture share it there
        # too.
        return (_restore_flat_state, (self.layout.entries, self.vector))


def _restore_flat_state(entries: Tuple[LayoutEntry, ...], vector: np.ndarray) -> FlatState:
    return FlatState(StateLayout.of(entries), vector)


# -- conversion points -----------------------------------------------------------


def as_flat_state(state: State) -> State:
    """Wrap a plain state into a :class:`FlatState` (no-op when disabled)."""
    if isinstance(state, FlatState) or not _FLAT_ENABLED:
        return state
    return FlatState.from_state(state)


def flat_model_state(model) -> State:
    """A model's ``state_dict`` packed straight into a flat buffer.

    One copy from the parameters/buffers into the contiguous vector —
    instead of ``state_dict()``'s per-tensor copies followed by a pack.
    Value-identical to :meth:`repro.nn.Module.state_dict` (same names, same
    order, same float64 values); falls back to it when the engine is off.
    """
    if not _FLAT_ENABLED:
        return model.state_dict()
    pairs = [(name, param.data) for name, param in model.named_parameters()]
    pairs += [(name, np.asarray(buf)) for name, buf in model.named_buffers()]
    return FlatState.from_items(pairs)


def wrap_flat(layout: StateLayout, vector: np.ndarray) -> State:
    """A state over ``vector``: a :class:`FlatState`, or views when disabled."""
    if _FLAT_ENABLED:
        return FlatState(layout, vector)
    return layout.view_dict(vector)


def state_vector(state: State, layout: Optional[StateLayout] = None) -> np.ndarray:
    """``state``'s values as one float64 vector in ``layout`` order.

    Zero-copy for a :class:`FlatState` already in that layout; a cached
    gather for a flat state in a different entry order; a pack for plain
    dicts.  Callers must treat the result as read-only.
    """
    if isinstance(state, FlatState):
        if layout is None or layout is state.layout:
            return state.vector
        return state.vector[layout.gather_from(state.layout)]
    if layout is None:
        layout = StateLayout.from_state(state)
    return layout.pack(state)


def sorted_state_vector(state: State) -> Optional[np.ndarray]:
    """The flat vector in sorted name order, or ``None`` for plain dicts.

    The zero-copy fast path for the wire codecs: a codec-decoded
    :class:`FlatState` is already in sorted order, so its buffer is returned
    as-is (read-only).
    """
    if not isinstance(state, FlatState):
        return None
    perm = state.layout.sorted_permutation()
    return state.vector if perm is None else state.vector[perm]


def flat_pair(
    state_a: State, state_b: State
) -> Optional[Tuple[StateLayout, np.ndarray, np.ndarray]]:
    """``(layout, vector_a, vector_b)`` when both states can run flat.

    The vectors are aligned to ``state_a``'s layout; ``None`` when either
    input is a plain dict (callers fall back to the per-name loop, which is
    bit-identical).
    """
    if isinstance(state_a, FlatState) and isinstance(state_b, FlatState):
        layout = state_a.layout
        if state_b.layout is layout:
            return layout, state_a.vector, state_b.vector
        if layout.compatible_with(state_b.layout):
            return layout, state_a.vector, state_b.vector[layout.gather_from(state_b.layout)]
    return None


# -- state arithmetic ------------------------------------------------------------


def clone_state(state: State) -> State:
    """Deep-copy a state dictionary."""
    if isinstance(state, FlatState):
        return FlatState(state.layout, state.vector.copy())
    return {name: np.array(values, copy=True) for name, values in state.items()}


def zeros_like_state(state: State) -> State:
    """A state with the same keys/shapes but all zeros."""
    if isinstance(state, FlatState):
        return FlatState(state.layout, np.zeros(state.layout.total_size, dtype=np.float64))
    return {name: np.zeros_like(values) for name, values in state.items()}


def check_compatible(states: Sequence[State]) -> None:
    """Validate that all states share keys and shapes.

    Validation runs once against the first state's frozen layout: flat
    states sharing that (interned) layout pass with an identity check, and
    plain dicts are compared through their ``keys()`` views instead of
    rebuilding a ``set(state)`` per state per call.
    """
    if not states:
        raise ValueError("no states provided")
    reference = states[0]
    reference_layout = reference.layout if isinstance(reference, FlatState) else None
    reference_keys = reference.keys()
    for index, state in enumerate(states[1:], start=1):
        if (
            reference_layout is not None
            and isinstance(state, FlatState)
            and reference_layout.compatible_with(state.layout)
        ):
            continue
        if state.keys() != reference_keys:
            raise ValueError(f"state {index} has different keys than state 0")
        for name in reference:
            if state[name].shape != reference[name].shape:
                raise ValueError(
                    f"state {index} entry {name!r} has shape {state[name].shape}, "
                    f"expected {reference[name].shape}"
                )


# The (K, P) aggregation matrix is reused across rounds: the server
# aggregates the same cohort-size/model-size shape every round, and
# re-touching a freshly allocated multi-megabyte buffer each call costs
# more in page faults than the GEMV itself.  A single buffer is kept and
# sliced to the requested row count; it is reallocated when the column
# count changes or the requested rows fall outside [rows, 2*rows] of the
# allocation, so the scratch cannot stay pinned at a stale cohort size
# after the round policy drops stragglers (K shrinks).
_MATRIX_SCRATCH: Optional[np.ndarray] = None
_MATRIX_SCRATCH_MAX_BYTES = 1 << 28  # 256 MiB


def _aggregation_matrix(rows: int, columns: int) -> np.ndarray:
    """A reusable (rows, columns) float64 work matrix for weighted averaging."""
    global _MATRIX_SCRATCH
    if rows * columns * 8 > _MATRIX_SCRATCH_MAX_BYTES:
        return np.empty((rows, columns), dtype=np.float64)
    scratch = _MATRIX_SCRATCH
    if (
        scratch is None
        or scratch.shape[1] != columns
        or not rows <= scratch.shape[0] <= 2 * rows
    ):
        scratch = np.empty((rows, columns), dtype=np.float64)
        _MATRIX_SCRATCH = scratch
    return scratch[:rows]


def aggregation_scratch_bytes() -> int:
    """Bytes currently held by the cached aggregation work matrix."""
    scratch = _MATRIX_SCRATCH
    return 0 if scratch is None else int(scratch.nbytes)


def release_aggregation_scratch() -> None:
    """Drop the cached aggregation work matrix (e.g. between experiments)."""
    global _MATRIX_SCRATCH
    _MATRIX_SCRATCH = None


def _check_weights(states: List[State], weights: np.ndarray) -> np.ndarray:
    if len(states) != weights.size:
        raise ValueError(f"got {len(states)} states but {weights.size} weights")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return weights / total


def reference_weighted_average(states: Sequence[State], weights: Sequence[float]) -> State:
    """The pre-refactor per-name stack/tensordot aggregation.

    Kept as the parity/benchmark reference for :func:`weighted_average`
    (also reachable through :func:`reference_mode`); may differ from the
    flat GEMV at the last ulp.
    """
    states = list(states)
    normalized = _check_weights(states, np.asarray(list(weights), dtype=np.float64))
    check_compatible(states)
    result: State = {}
    for name in states[0]:
        stacked = np.stack([state[name] for state in states], axis=0)
        result[name] = np.tensordot(normalized, stacked, axes=(0, 0))
    return result


def weighted_average(states: Sequence[State], weights: Sequence[float]) -> State:
    """Weighted average of states (weights are normalized internally).

    This is the server's parameter-aggregation step
    ``W^{r+1} = sum_k (n_k / n) w_k^r`` from Figure 1 of the paper,
    computed as one ``(K,) @ (K, P)`` GEMV over the flat buffers — BLAS
    speed instead of a per-name Python loop.  Flat and plain-dict inputs
    produce bit-identical results (both route through the same GEMV).
    """
    states = list(states)
    if _REFERENCE:
        return reference_weighted_average(states, weights)
    normalized = _check_weights(states, np.asarray(list(weights), dtype=np.float64))
    check_compatible(states)
    first = states[0]
    layout = first.layout if isinstance(first, FlatState) else StateLayout.from_state(first)
    matrix = _aggregation_matrix(len(states), layout.total_size)
    for row, state in enumerate(states):
        if isinstance(state, FlatState):
            if state.layout is layout:
                matrix[row] = state.vector
            else:
                matrix[row] = state.vector[layout.gather_from(state.layout)]
        else:
            layout.pack(state, out=matrix[row])
    return wrap_flat(layout, normalized @ matrix)


def interpolate(state_a: State, state_b: State, weight_a: float) -> State:
    """``weight_a * state_a + (1 - weight_a) * state_b`` (alpha-portion sync)."""
    if not 0.0 <= weight_a <= 1.0:
        raise ValueError(f"weight_a must be in [0, 1], got {weight_a}")
    check_compatible([state_a, state_b])
    pair = flat_pair(state_a, state_b)
    if pair is not None:
        layout, vector_a, vector_b = pair
        return wrap_flat(layout, weight_a * vector_a + (1.0 - weight_a) * vector_b)
    return {
        name: weight_a * state_a[name] + (1.0 - weight_a) * state_b[name]
        for name in state_a
    }


def merge_partition(global_state: State, local_state: State, local_names: Iterable[str]) -> State:
    """Overlay the ``local_names`` entries of ``local_state`` onto ``global_state``.

    Used by FedProx-LG: the developer's aggregate supplies the global part,
    the client's private copy supplies the local part.
    """
    local_names = set(local_names)
    unknown = local_names - set(global_state)
    if unknown:
        raise ValueError(f"local parameter names not present in state: {sorted(unknown)}")
    merged = clone_state(global_state)
    if isinstance(merged, FlatState):
        for name in local_names:
            merged[name] = local_state[name]  # write-through into the buffer
    else:
        for name in local_names:
            merged[name] = np.array(local_state[name], copy=True)
    return merged


def filter_state(state: State, names: Iterable[str]) -> State:
    """A new state containing only the requested entries."""
    names = list(names)
    missing = [name for name in names if name not in state]
    if missing:
        raise ValueError(f"state does not contain {missing}")
    if isinstance(state, FlatState) and _FLAT_ENABLED:
        return FlatState.from_items((name, state[name]) for name in names)
    return {name: np.array(state[name], copy=True) for name in names}


def state_distance(state_a: State, state_b: State) -> float:
    """Euclidean distance between two states (used in tests and diagnostics)."""
    check_compatible([state_a, state_b])
    total = 0.0
    for name in state_a:
        diff = state_a[name] - state_b[name]
        total += float(np.sum(diff * diff))
    return float(np.sqrt(total))


def state_norm(state: State) -> float:
    """Euclidean norm of a state.

    Deliberately accumulated per tensor (not over the whole flat vector) so
    the value is bit-identical for flat and dict states — DP clipping
    scales depend on it.
    """
    return float(np.sqrt(sum(float(np.sum(values**2)) for values in state.values())))


def flatten_state(state: State) -> np.ndarray:
    """Concatenate all entries into one vector (deterministic key order)."""
    flat = sorted_state_vector(state)
    if flat is not None:
        return flat.copy() if flat is getattr(state, "vector", None) else flat
    return np.concatenate([np.asarray(state[name]).ravel() for name in sorted(state)])


def state_digest(state: State) -> str:
    """A hex SHA-256 digest of a state's exact bits (names, shapes, values).

    The bit-for-bit identity witness the wire-smoke CI job diffs: two runs
    produce the same digest iff every parameter tensor is byte-identical
    (values are hashed as contiguous float64 buffers in sorted name order,
    so flat and dict states of the same values agree).
    """
    import hashlib

    digest = hashlib.sha256()
    for name in sorted(state):
        values = np.ascontiguousarray(np.asarray(state[name], dtype=np.float64))
        digest.update(name.encode("utf-8"))
        digest.update(str(values.shape).encode("ascii"))
        digest.update(values.tobytes())
    return digest.hexdigest()


def average_pairwise_distance(states: Sequence[State]) -> float:
    """Mean pairwise distance between client states (heterogeneity diagnostic).

    Computed from one flattened ``(n_states, n_params)`` matrix: for each
    anchor state, the differences to every later state are formed in one
    vectorized block and reduced with a single ``einsum`` — replacing the
    O(n^2) Python-level :func:`state_distance` calls.  Differences are
    computed directly (never via the Gram identity
    ``||x||^2 + ||y||^2 - 2 x.y``), so nearly-identical states — exactly
    when drift diagnostics matter most — do not suffer catastrophic
    cancellation.  Agrees with the pairwise loop to floating-point accuracy
    (see the parity test).
    """
    states = list(states)
    if len(states) < 2:
        return 0.0
    check_compatible(states)
    matrix = np.stack([flatten_state(state) for state in states], axis=0)
    blocks = []
    for index in range(len(states) - 1):
        diff = matrix[index + 1 :] - matrix[index]
        blocks.append(np.sqrt(np.einsum("ij,ij->i", diff, diff)))
    return float(np.mean(np.concatenate(blocks)))
