"""Operations on model state dictionaries used by federated aggregation.

A "state" is the flat ``name -> ndarray`` mapping produced by
:meth:`repro.nn.Module.state_dict`.  Everything the developer ever sees in
the decentralized setting is one of these states — never raw data — so all
server-side algorithms (FedAvg/FedProx averaging, FedProx-LG partial
aggregation, IFCA per-cluster aggregation, alpha-portion sync) are expressed
as arithmetic over states.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

State = Dict[str, np.ndarray]


def clone_state(state: State) -> State:
    """Deep-copy a state dictionary."""
    return {name: np.array(values, copy=True) for name, values in state.items()}


def zeros_like_state(state: State) -> State:
    """A state with the same keys/shapes but all zeros."""
    return {name: np.zeros_like(values) for name, values in state.items()}


def check_compatible(states: Sequence[State]) -> None:
    """Validate that all states share keys and shapes."""
    if not states:
        raise ValueError("no states provided")
    reference = states[0]
    for index, state in enumerate(states[1:], start=1):
        if set(state) != set(reference):
            raise ValueError(f"state {index} has different keys than state 0")
        for name in reference:
            if state[name].shape != reference[name].shape:
                raise ValueError(
                    f"state {index} entry {name!r} has shape {state[name].shape}, "
                    f"expected {reference[name].shape}"
                )


def weighted_average(states: Sequence[State], weights: Sequence[float]) -> State:
    """Weighted average of states (weights are normalized internally).

    This is the server's parameter-aggregation step
    ``W^{r+1} = sum_k (n_k / n) w_k^r`` from Figure 1 of the paper.
    """
    states = list(states)
    weights = np.asarray(list(weights), dtype=np.float64)
    if len(states) != weights.size:
        raise ValueError(f"got {len(states)} states but {weights.size} weights")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weights must not all be zero")
    check_compatible(states)
    normalized = weights / total
    result: State = {}
    for name in states[0]:
        stacked = np.stack([state[name] for state in states], axis=0)
        result[name] = np.tensordot(normalized, stacked, axes=(0, 0))
    return result


def interpolate(state_a: State, state_b: State, weight_a: float) -> State:
    """``weight_a * state_a + (1 - weight_a) * state_b`` (alpha-portion sync)."""
    if not 0.0 <= weight_a <= 1.0:
        raise ValueError(f"weight_a must be in [0, 1], got {weight_a}")
    check_compatible([state_a, state_b])
    return {
        name: weight_a * state_a[name] + (1.0 - weight_a) * state_b[name]
        for name in state_a
    }


def merge_partition(global_state: State, local_state: State, local_names: Iterable[str]) -> State:
    """Overlay the ``local_names`` entries of ``local_state`` onto ``global_state``.

    Used by FedProx-LG: the developer's aggregate supplies the global part,
    the client's private copy supplies the local part.
    """
    local_names = set(local_names)
    unknown = local_names - set(global_state)
    if unknown:
        raise ValueError(f"local parameter names not present in state: {sorted(unknown)}")
    merged = clone_state(global_state)
    for name in local_names:
        merged[name] = np.array(local_state[name], copy=True)
    return merged


def filter_state(state: State, names: Iterable[str]) -> State:
    """A new state containing only the requested entries."""
    names = list(names)
    missing = [name for name in names if name not in state]
    if missing:
        raise ValueError(f"state does not contain {missing}")
    return {name: np.array(state[name], copy=True) for name in names}


def state_distance(state_a: State, state_b: State) -> float:
    """Euclidean distance between two states (used in tests and diagnostics)."""
    check_compatible([state_a, state_b])
    total = 0.0
    for name in state_a:
        diff = state_a[name] - state_b[name]
        total += float(np.sum(diff * diff))
    return float(np.sqrt(total))


def state_norm(state: State) -> float:
    """Euclidean norm of a state."""
    return float(np.sqrt(sum(float(np.sum(values**2)) for values in state.values())))


def flatten_state(state: State) -> np.ndarray:
    """Concatenate all entries into one vector (deterministic key order)."""
    return np.concatenate([np.asarray(state[name]).ravel() for name in sorted(state)])


def average_pairwise_distance(states: Sequence[State]) -> float:
    """Mean pairwise distance between client states (heterogeneity diagnostic).

    Computed from one flattened ``(n_states, n_params)`` matrix: for each
    anchor state, the differences to every later state are formed in one
    vectorized block and reduced with a single ``einsum`` — replacing the
    O(n^2) Python-level :func:`state_distance` calls.  Differences are
    computed directly (never via the Gram identity
    ``||x||^2 + ||y||^2 - 2 x.y``), so nearly-identical states — exactly
    when drift diagnostics matter most — do not suffer catastrophic
    cancellation.  Agrees with the pairwise loop to floating-point accuracy
    (see the parity test).
    """
    states = list(states)
    if len(states) < 2:
        return 0.0
    check_compatible(states)
    matrix = np.stack([flatten_state(state) for state in states], axis=0)
    blocks = []
    for index in range(len(states) - 1):
        diff = matrix[index + 1 :] - matrix[index]
        blocks.append(np.sqrt(np.einsum("ij,ij->i", diff, diff)))
    return float(np.mean(np.concatenate(blocks)))
