"""Alpha-portion sync personalization (Figure 2d).

Instead of one global average, the developer prepares a *customized*
aggregate for each client: the client's own previous parameters count for an
``alpha`` portion and the remaining ``1 - alpha`` portion is the
sample-weighted average of every other client's parameters.  The client then
trains from its customized aggregate.  Personalization is therefore almost
free — only the server-side mixing changes.
"""

from __future__ import annotations

from typing import Dict

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.parameters import State, clone_state


class AlphaPortionSync(FederatedAlgorithm):
    """FedProx local training with per-client alpha-weighted aggregation."""

    name = "fedprox_alpha"

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        initial = self.initial_state()
        client_states: Dict[int, State] = {
            client.client_id: clone_state(initial) for client in self.clients
        }
        client_weights = {
            client.client_id: float(client.num_samples) for client in self.clients
        }
        mu = self.config.proximal_mu
        alpha = self.config.alpha

        for round_index in range(self.config.rounds):
            customized = self.server.alpha_portion_sync(client_states, client_weights, alpha)
            updates = self.map_client_updates(
                [customized[client.client_id] for client in self.clients],
                steps=self.config.local_steps,
                proximal_mu=mu,
            )
            per_client_loss: Dict[int, float] = {}
            for update in updates:
                client_states[update.client_id] = update.state
                per_client_loss[update.client_id] = update.stats.mean_loss
            result.history.append(self._round_record(round_index, per_client_loss))

        result.client_states = client_states
        return result
