"""Cluster-based personalization: IFCA and assigned clustering.

IFCA (Ghosh et al., 2020) maintains ``C`` cluster models; every round each
client picks the cluster whose model currently fits its training data best,
trains that model, and the developer aggregates per cluster (Figure 2b).

Assigned clustering replaces the iterative cluster choice with a fixed
mapping derived from prior knowledge about client similarity — the paper
groups clients by benchmark suite: {1,2,3}, {4,5,6}, {7,8}, {9} (Figure 2c).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.client import FederatedClient
from repro.fl.parameters import State, flat_model_state


class IFCA(FederatedAlgorithm):
    """Iterative Federated Clustering Algorithm on top of FedProx local training."""

    name = "ifca"

    def _initial_cluster_states(self) -> Dict[int, State]:
        return {
            cluster_id: flat_model_state(self.model_factory())
            for cluster_id in range(self.config.num_clusters)
        }

    def choose_cluster(self, client: FederatedClient, cluster_states: Dict[int, State]) -> int:
        """Pick the cluster whose model has the lowest loss on the client's data."""
        losses = {
            cluster_id: client.training_loss(state, max_batches=self.config.ifca_eval_batches)
            for cluster_id, state in cluster_states.items()
        }
        return min(losses, key=losses.get)

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        cluster_states = self._initial_cluster_states()
        mu = self.config.proximal_mu
        last_assignment: Dict[int, int] = {}

        for round_index in range(self.config.rounds):
            # Cluster choice stays in the coordinating process (it is a cheap
            # loss probe); each client consumes its own RNG stream for the
            # probe and then for training, so the per-client draw order is
            # identical under any execution backend.
            chosen = []
            for client in self.clients:
                cluster_id = self.choose_cluster(client, cluster_states)
                last_assignment[client.client_id] = cluster_id
                chosen.append(cluster_id)
            updates = self.map_client_updates(
                [cluster_states[cluster_id] for cluster_id in chosen],
                steps=self.config.local_steps,
                proximal_mu=mu,
            )
            member_states: Dict[int, List[State]] = {}
            member_weights: Dict[int, List[float]] = {}
            per_client_loss: Dict[int, float] = {}
            for client, cluster_id, update in zip(self.clients, chosen, updates):
                member_states.setdefault(cluster_id, []).append(update.state)
                member_weights.setdefault(cluster_id, []).append(float(client.num_samples))
                per_client_loss[update.client_id] = update.stats.mean_loss
            cluster_states = self.server.aggregate_clusters(cluster_states, member_states, member_weights)
            result.history.append(
                self._round_record(
                    round_index, per_client_loss, extra={"assignment": dict(last_assignment)}
                )
            )

        for client in self.clients:
            cluster_id = last_assignment.get(client.client_id, 0)
            result.client_states[client.client_id] = cluster_states[cluster_id]
        result.global_state = self._average_cluster_state(cluster_states)
        return result

    def _average_cluster_state(self, cluster_states: Dict[int, State]) -> State:
        """Unweighted average of the cluster models (diagnostic global model)."""
        states = list(cluster_states.values())
        weights = np.ones(len(states))
        return self.server.aggregate(states, weights)


class AssignedClustering(IFCA):
    """IFCA with a fixed, pre-assigned cluster per client (Figure 2c)."""

    name = "assigned_clustering"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._assignment = self.config.assigned_cluster_map()

    def choose_cluster(self, client: FederatedClient, cluster_states: Dict[int, State]) -> int:
        if client.client_id in self._assignment:
            cluster_id = self._assignment[client.client_id]
        else:
            # Unknown clients fall back to a deterministic spread over clusters.
            cluster_id = client.client_id % self.config.num_clusters
        if cluster_id >= self.config.num_clusters:
            raise ValueError(
                f"assigned cluster {cluster_id} for client {client.client_id} exceeds "
                f"num_clusters={self.config.num_clusters}"
            )
        return cluster_id
