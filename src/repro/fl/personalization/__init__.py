"""Federated-learning personalization techniques (Section 4.3, Figure 2).

Five ways a client ends up with a model adapted to its own data
distribution, evaluated against each other in Tables 3-5:

* :class:`FedProxLG` — local/global parameter partitioning, Figure 2(a).
* :class:`IFCA` — iterative federated clustering, Figure 2(b).
* :class:`AssignedClustering` — prior-knowledge clustering, Figure 2(c).
* :class:`AlphaPortionSync` — per-client alpha-weighted aggregation,
  Figure 2(d).
* :class:`FedProxFineTuning` — FedProx followed by local fine-tuning,
  Figure 2(e); the paper's Table 3 winner.
"""

from repro.fl.personalization.alpha_sync import AlphaPortionSync
from repro.fl.personalization.clustering import IFCA, AssignedClustering
from repro.fl.personalization.finetune import FedProxFineTuning
from repro.fl.personalization.lg import FedProxLG

__all__ = [
    "FedProxFineTuning",
    "FedProxLG",
    "IFCA",
    "AssignedClustering",
    "AlphaPortionSync",
]
