"""Federated-learning personalization techniques (Section 4.3)."""

from repro.fl.personalization.alpha_sync import AlphaPortionSync
from repro.fl.personalization.clustering import IFCA, AssignedClustering
from repro.fl.personalization.finetune import FedProxFineTuning
from repro.fl.personalization.lg import FedProxLG

__all__ = [
    "FedProxFineTuning",
    "FedProxLG",
    "IFCA",
    "AssignedClustering",
    "AlphaPortionSync",
]
