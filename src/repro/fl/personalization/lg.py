"""FedProx-LG personalization (local/global parameter partitioning).

Following Liang et al. (2020), the model is partitioned into a global part
``g`` (shared and aggregated by the developer) and a local part ``l`` (kept
private on each client and never communicated).  The paper assigns the output
layer of each estimator to the local part and everything else to the global
part.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.parameters import State, clone_state, filter_state, flat_model_state


class FedProxLG(FederatedAlgorithm):
    """FedProx with the output layer kept local to each client (Figure 2a)."""

    name = "fedprox_lg"

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        reference_model = self.model_factory()
        local_names = reference_model.local_parameter_names()
        global_names = reference_model.global_parameter_names()
        # Buffers (e.g. BatchNorm running statistics) travel with the global part.
        buffer_names = [
            name for name in reference_model.state_dict() if name not in local_names and name not in global_names
        ]
        shared_names = list(global_names) + buffer_names

        initial = flat_model_state(reference_model)
        global_part = filter_state(initial, shared_names)
        client_full_states: Dict[int, State] = {
            client.client_id: clone_state(initial) for client in self.clients
        }
        weights = self.client_weights()
        mu = self.config.proximal_mu

        for round_index in range(self.config.rounds):
            # Each client receives only the aggregated global part, overlaid
            # onto its privately kept full state.
            start_states = [
                self.server.merge_global_local(global_part, client_full_states[client.client_id])
                for client in self.clients
            ]
            # Only the shared (global + buffer) part is uploaded and billed;
            # the local part never leaves the client.
            updates = self.map_client_updates(
                start_states,
                steps=self.config.local_steps,
                proximal_mu=mu,
                transport="both" if shared_names else "down",
                upload_names=shared_names if local_names and shared_names else None,
            )
            returned_states: List[State] = []
            per_client_loss: Dict[int, float] = {}
            for update in updates:
                client_full_states[update.client_id] = update.state
                returned_states.append(update.state)
                per_client_loss[update.client_id] = update.stats.mean_loss
            global_part = self.server.aggregate_partition(returned_states, weights, shared_names)
            result.history.append(self._round_record(round_index, per_client_loss))

        for client in self.clients:
            result.client_states[client.client_id] = self.server.merge_global_local(
                global_part, client_full_states[client.client_id]
            )
        return result
