"""FedProx + local fine-tuning personalization.

The simplest and — per the paper's Table 3 — most effective personalization:
after decentralized training converges, each client continues training the
received generalized model on its own private data for ``S'`` extra steps
(no proximal term), adapting it to its local distribution.
"""

from __future__ import annotations

from typing import Dict

from repro.fl.algorithms.base import TrainingResult
from repro.fl.algorithms.fedprox import FedProx


class FedProxFineTuning(FedProx):
    """FedProx followed by per-client local fine-tuning."""

    name = "fedprox_finetune"

    def run(self) -> TrainingResult:
        federated = super().run()
        result = TrainingResult(algorithm=self.name, history=list(federated.history))
        result.global_state = federated.global_state

        # Fine-tuning downloads the converged global model once more, but the
        # personalized result is deployed on the client and never uploaded.
        updates = self.map_client_updates(
            federated.global_state, steps=self.config.finetune_steps, op="finetune", transport="down"
        )
        per_client_loss: Dict[int, float] = {}
        for update in updates:
            result.client_states[update.client_id] = update.state
            per_client_loss[update.client_id] = update.stats.mean_loss
        result.history.append(
            self._round_record(self.config.rounds, per_client_loss, extra={"stage": "fine_tuning"})
        )
        return result
