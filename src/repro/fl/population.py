"""Lazy client virtualization for population-scale federation.

Cross-device federated settings assume populations of tens of thousands of
clients, of which a sampler selects a small cohort each round.  Eagerly
instantiating a :class:`~repro.fl.client.FederatedClient` per population
member — model, trainer, optimizer scratch, layer workspaces — is both
impossible at that scale and pointless: a client that is never sampled
never computes anything.

:class:`ClientDirectory` therefore holds only per-client *specs*
(:class:`VirtualClientSpec`: id, data partition, sample counts) and hands
out :class:`ClientHandle` proxies.  A handle satisfies everything the
roster machinery reads eagerly — ``client_id``, ``num_samples``,
``rng_state`` — without building anything; the real client is materialized
on the first training call (i.e. only when the sampler actually selected
it) and released as soon as its update has been folded.

Bit-parity with an eager roster rests on two invariants:

* A handle's pre-materialization RNG state is exactly
  :func:`~repro.fl.client.initial_rng_state` — what an eagerly built
  client starts with — and the state is persisted across
  materialize/release cycles.  The RNG stream is the *only* cross-round
  client state (trainers build fresh optimizer/loader state per call), so
  a released-and-rebuilt client continues bit-identically.
* Population client ``k`` (0-based) reuses the data partition of base
  client ``k % B``; for ``k < B`` a handle therefore wraps the identical
  datasets, factory, and config an eager roster would, making
  population runs directly comparable against the eager K=9 goldens.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.data.clients import ClientData
from repro.fl.client import FederatedClient, initial_rng_state
from repro.fl.config import FLConfig

ModelFactory = Callable[[], object]


class VirtualClientSpec:
    """What the directory knows about one population member without building it."""

    __slots__ = ("client_id", "base_index", "num_samples", "num_test_samples")

    def __init__(self, client_id: int, base_index: int, num_samples: int, num_test_samples: int):
        self.client_id = int(client_id)
        self.base_index = int(base_index)
        self.num_samples = int(num_samples)
        self.num_test_samples = int(num_test_samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualClientSpec(client_id={self.client_id}, base_index={self.base_index}, "
            f"num_samples={self.num_samples})"
        )


class ClientHandle:
    """A lazily materialized :class:`FederatedClient`.

    Quacks like a client for every eager read (``client_id``,
    ``num_samples``, ``rng_state``) and materializes the real thing on the
    first training call.  ``release()`` captures the client's RNG state and
    drops the client, so a handle cycles between a ~100-byte spec and a
    full client without ever forking the RNG stream.
    """

    def __init__(self, directory: "ClientDirectory", spec: VirtualClientSpec):
        self._directory = directory
        self.spec = spec
        self._client: Optional[FederatedClient] = None
        self._pending_rng: Optional[dict] = None

    # -- eager reads (no materialization) ---------------------------------------
    @property
    def client_id(self) -> int:
        return self.spec.client_id

    @property
    def num_samples(self) -> int:
        return self.spec.num_samples

    @property
    def is_materialized(self) -> bool:
        return self._client is not None

    @property
    def rng_state(self) -> dict:
        if self._client is not None:
            return self._client.rng_state
        if self._pending_rng is None:
            self._pending_rng = initial_rng_state(self.client_id)
        return self._pending_rng

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        if self._client is not None:
            self._client.rng_state = state
        else:
            self._pending_rng = state

    # -- lifecycle ----------------------------------------------------------------
    def materialize(self) -> FederatedClient:
        """Build (or return) the real client, restoring any persisted RNG state."""
        if self._client is None:
            self._client = self._directory._build(self.spec)
            if self._pending_rng is not None:
                self._client.rng_state = self._pending_rng
                self._pending_rng = None
            self._directory._note_materialized()
        return self._client

    def release(self) -> None:
        """Capture the RNG stream and drop the materialized client."""
        if self._client is not None:
            self._pending_rng = self._client.rng_state
            self._client = None
            self._directory._note_released()

    # -- client protocol (materializing proxies) ----------------------------------
    def local_train(self, *args, **kwargs):
        return self.materialize().local_train(*args, **kwargs)

    def fine_tune(self, *args, **kwargs):
        return self.materialize().fine_tune(*args, **kwargs)

    def training_loss(self, *args, **kwargs):
        return self.materialize().training_loss(*args, **kwargs)

    def evaluate_auc(self, *args, **kwargs):
        return self.materialize().evaluate_auc(*args, **kwargs)

    def initial_state(self):
        return self.materialize().initial_state()

    # -- pickling (process backend) ------------------------------------------------
    def __getstate__(self):
        # A handle crosses the process boundary (pool initializer roster)
        # as its spec + RNG stream only; the worker materializes on demand.
        return {
            "directory": self._directory,
            "spec": self.spec,
            "pending_rng": self.rng_state,
        }

    def __setstate__(self, state):
        self._directory = state["directory"]
        self.spec = state["spec"]
        self._client = None
        self._pending_rng = state["pending_rng"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "materialized" if self._client is not None else "virtual"
        return f"ClientHandle(client_id={self.client_id}, {status})"


class ClientDirectory:
    """The population roster: per-client specs, clients built only on demand.

    ``base`` supplies the data partitions; population client ``k`` (0-based
    position) gets ``client_id = k + 1`` and the partition of base client
    ``k % len(base)``.  Materialization counters cover *this process only*
    (worker processes track their own); ``eager_clients`` is the number of
    clients currently materialized, the quantity the population smoke test
    asserts is zero before sampling.
    """

    def __init__(
        self,
        base: Sequence[ClientData],
        model_factory: ModelFactory,
        config: FLConfig,
        population: int,
    ):
        if population < 1:
            raise ValueError(f"population must be positive, got {population}")
        if not base:
            raise ValueError("at least one base client partition is required")
        self._base = list(base)
        self._model_factory = model_factory
        self._config = config
        self.population = int(population)
        self.materialized_count = 0
        self.peak_materialized = 0
        self.total_materializations = 0
        self.total_releases = 0
        self.handles: List[ClientHandle] = [
            ClientHandle(
                self,
                VirtualClientSpec(
                    client_id=index + 1,
                    base_index=index % len(self._base),
                    num_samples=len(self._base[index % len(self._base)].train),
                    num_test_samples=len(self._base[index % len(self._base)].test),
                ),
            )
            for index in range(self.population)
        ]

    def __len__(self) -> int:
        return self.population

    def __iter__(self):
        return iter(self.handles)

    def __getitem__(self, index: int) -> ClientHandle:
        return self.handles[index]

    @property
    def eager_clients(self) -> int:
        """Clients currently materialized in this process."""
        return self.materialized_count

    def base_size(self) -> int:
        return len(self._base)

    def _build(self, spec: VirtualClientSpec) -> FederatedClient:
        data = self._base[spec.base_index]
        return FederatedClient(
            client_id=spec.client_id,
            train_dataset=data.train,
            test_dataset=data.test,
            model_factory=self._model_factory,
            config=self._config,
        )

    def _note_materialized(self) -> None:
        self.materialized_count += 1
        self.total_materializations += 1
        self.peak_materialized = max(self.peak_materialized, self.materialized_count)

    def _note_released(self) -> None:
        self.materialized_count -= 1
        self.total_releases += 1

    def release_all(self) -> None:
        """Release every materialized client (end of an experiment)."""
        for handle in self.handles:
            handle.release()

    def __getstate__(self):
        # The directory rides along with every pickled handle; ship the
        # construction inputs, not the counters (workers count their own).
        return {
            "base": self._base,
            "model_factory": self._model_factory,
            "config": self._config,
            "population": self.population,
        }

    def __setstate__(self, state):
        self._base = state["base"]
        self._model_factory = state["model_factory"]
        self._config = state["config"]
        self.population = state["population"]
        self.materialized_count = 0
        self.peak_materialized = 0
        self.total_materializations = 0
        self.total_releases = 0
        # Handles are rebuilt lazily only if someone iterates a deserialized
        # directory; pickled handles carry their own spec and RNG state.
        self.handles = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClientDirectory(population={self.population}, base={len(self._base)}, "
            f"materialized={self.materialized_count})"
        )
