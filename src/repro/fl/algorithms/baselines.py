"""Non-federated baselines: per-client local training and centralized training.

These correspond to the first two rows of Tables 3-5: "Local Average (b1 to
b9)" — every client trains and deploys its own model on its own data — and
"Training Centrally on All Data" — the privacy-free empirical upper bound
where all clients' data is pooled on one machine.
"""

from __future__ import annotations

from typing import Dict

from repro.data.dataset import RoutabilityDataset
from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.parameters import flat_model_state
from repro.fl.trainer import LocalTrainer


class LocalOnly(FederatedAlgorithm):
    """Each client trains its own model ``b_k`` on its own data only."""

    name = "local"

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        steps = self.config.effective_local_steps
        # One distinct initialization per client, drawn in client order so the
        # factory's seed sequence is independent of the execution backend.
        # The initial states are created locally on each client, so nothing
        # crosses the wire (transport="none" keeps measured bytes at zero).
        initials = [flat_model_state(self.model_factory()) for _ in self.clients]
        updates = self.map_client_updates(initials, steps=steps, proximal_mu=0.0, transport="none")
        per_client_loss: Dict[int, float] = {}
        for update in updates:
            result.client_states[update.client_id] = update.state
            per_client_loss[update.client_id] = update.stats.mean_loss
        result.history.append(self._round_record(0, per_client_loss))
        return result


class Centralized(FederatedAlgorithm):
    """Pools every client's training data and trains one model centrally.

    This explicitly violates the privacy constraint; the paper uses it as the
    empirical upper limit that decentralized training should approach.
    """

    name = "centralized"

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        pooled = RoutabilityDataset(name="centralized/train")
        for client in self.clients:
            pooled.extend(client.train_dataset)

        config = self.config
        trainer = LocalTrainer(
            loss=config.loss,
            optimizer=config.optimizer,
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
            batch_size=config.batch_size,
            compute_dtype=config.compute_dtype,
        )
        model = self.model_factory()
        stats = trainer.train_steps(model, pooled, steps=config.effective_centralized_steps)
        result.global_state = flat_model_state(model)
        result.history.append(
            self._round_record(0, {0: stats.mean_loss}, extra={"pooled_samples": len(pooled)})
        )
        return result
