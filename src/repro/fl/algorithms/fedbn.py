"""FedBN: federated training that keeps normalization layers local.

Section 4.2 of the paper identifies Batch Normalization's aggregated running
statistics as one reason deep routability estimators degrade under
decentralized training.  FedBN (Li et al., 2021) is the standard remedy from
the FL literature: every parameter *except* those belonging to normalization
layers is aggregated as in FedProx, while each client keeps its own
normalization parameters and running statistics.  It therefore doubles as a
personalization technique (each client ends up with its own model) and as an
ablation of the paper's "BN is the problem" argument — FLNet, which has no
normalization layers, is unaffected by it.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.parameters import State, clone_state
from repro.models.base import RoutabilityModel
from repro.nn.layers.norm import BatchNorm2d, GroupNorm


def normalization_parameter_names(model: RoutabilityModel) -> Set[str]:
    """State-dict keys owned by normalization layers (params and buffers)."""
    prefixes = [
        name
        for name, module in model.named_modules()
        if isinstance(module, (BatchNorm2d, GroupNorm))
    ]
    names: Set[str] = set()
    for key in model.state_dict():
        for prefix in prefixes:
            if key == prefix or key.startswith(prefix + "."):
                names.add(key)
                break
    return names


class FedBN(FederatedAlgorithm):
    """FedProx-style training with normalization layers excluded from aggregation."""

    name = "fedbn"

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        reference_model = self.model_factory()
        local_names = normalization_parameter_names(reference_model)
        global_names = [name for name in reference_model.state_dict() if name not in local_names]
        weights = self.client_weights()
        mu = self.config.proximal_mu

        global_state = self.initial_state()
        # Every client starts from the same initialization, including its
        # private normalization parameters.
        client_states: Dict[int, State] = {
            client.client_id: clone_state(global_state) for client in self.clients
        }

        for round_index in range(self.config.rounds):
            # Each client trains the aggregated global part merged with its
            # own private normalization part.
            start_states = [
                self.server.partition_merge(
                    global_state, client_states[client.client_id], local_names
                )
                if local_names
                else clone_state(global_state)
                for client in self.clients
            ]
            # Only the globally shared part is uploaded (and billed); each
            # client's private normalization parameters never cross the wire.
            updates = self.map_client_updates(
                start_states,
                steps=self.config.local_steps,
                proximal_mu=mu,
                transport="both" if global_names else "down",
                upload_names=global_names if local_names and global_names else None,
            )
            returned: List[State] = []
            per_client_loss: Dict[int, float] = {}
            for update in updates:
                client_states[update.client_id] = update.state
                returned.append(update.state)
                per_client_loss[update.client_id] = update.stats.mean_loss
            if global_names:
                aggregated = self.server.aggregate_partition(returned, weights, global_names)
                global_state = self.server.merge_global_local(aggregated, global_state)
            result.history.append(
                self._round_record(
                    round_index,
                    per_client_loss,
                    extra={"local_parameters": len(local_names), "global_parameters": len(global_names)},
                )
            )

        result.global_state = global_state
        result.client_states = {
            client_id: self.server.partition_merge(global_state, state, local_names)
            if local_names
            else clone_state(global_state)
            for client_id, state in client_states.items()
        }
        return result
