"""FedAvgM: server-side momentum on the aggregated update.

FedAvgM (Hsu et al., 2019) treats the difference between the previous global
model and the clients' weighted average as a pseudo-gradient and applies
momentum to it on the server.  Under the client-level heterogeneity of
routability data this damps the round-to-round oscillation of the global
model — the same fluctuation the paper's FLNet is designed to be robust to —
so it is a natural server-side complement to FedProx's client-side proximal
term.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.parameters import State, average_pairwise_distance, zeros_like_state


class FedAvgM(FederatedAlgorithm):
    """Federated averaging with server momentum (and optional proximal term)."""

    name = "fedavgm"
    supports_checkpointing = True

    #: Server momentum coefficient; subclasses or experiments may override.
    server_momentum: float = 0.9

    def run(self) -> TrainingResult:
        if not 0.0 <= self.server_momentum < 1.0:
            raise ValueError(f"server_momentum must be in [0, 1), got {self.server_momentum}")
        result = TrainingResult(algorithm=self.name)
        global_state = self.initial_state()
        velocity: State = zeros_like_state(global_state)
        weights = self.client_weights()
        mu = self.config.proximal_mu

        start_round = 0
        resumed = self.load_checkpoint(reference_state=global_state)
        if resumed is not None:
            start_round = resumed.round_index + 1
            global_state = resumed.global_state
            if "velocity" in resumed.extra_states:
                velocity = resumed.extra_states["velocity"]

        for round_index in range(start_round, self.config.rounds):
            updates = self.map_client_updates(
                global_state, steps=self.config.local_steps, proximal_mu=mu
            )
            client_states: List[State] = [update.state for update in updates]
            per_client_loss: Dict[int, float] = {
                update.client_id: update.stats.mean_loss for update in updates
            }
            drift = average_pairwise_distance(client_states)
            average = self.server.aggregate(client_states, weights)

            # Pseudo-gradient: how far the average moved away from the global
            # model this round; momentum accumulates it across rounds.
            for name in global_state:
                delta = global_state[name] - average[name]
                velocity[name] = self.server_momentum * velocity[name] + delta
                global_state[name] = global_state[name] - velocity[name]

            self.save_checkpoint(round_index, global_state, extra_states={"velocity": velocity})
            result.history.append(
                self._round_record(round_index, per_client_loss, extra={"client_drift": drift})
            )

        result.global_state = global_state
        return result
