"""FedAvgM: server-side momentum on the aggregated update.

FedAvgM (Hsu et al., 2019) treats the difference between the previous global
model and the clients' weighted average as a pseudo-gradient and applies
momentum to it on the server.  Under the client-level heterogeneity of
routability data this damps the round-to-round oscillation of the global
model — the same fluctuation the paper's FLNet is designed to be robust to —
so it is a natural server-side complement to FedProx's client-side proximal
term.

Under a round scheduler the pseudo-gradient is computed from whichever
cohort updates survived the round policy; a round whose every selected
client missed the deadline leaves both the global model and the momentum
buffer untouched.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.execution import ClientUpdate
from repro.fl.parameters import (
    FlatState,
    State,
    average_pairwise_distance,
    state_vector,
    wrap_flat,
    zeros_like_state,
)


class FedAvgM(FederatedAlgorithm):
    """Federated averaging with server momentum (and optional proximal term)."""

    name = "fedavgm"
    supports_checkpointing = True
    supports_scheduling = True
    supports_resilience = True

    #: Server momentum coefficient; subclasses or experiments may override.
    server_momentum: float = 0.9

    def _fold_update(self, accumulator, global_state: State, update: ClientUpdate) -> None:
        accumulator.fold(
            update.state, float(self.clients[update.client_index].num_samples)
        )

    def _finalize_round(
        self, round_index: int, global_state: State, accumulator
    ) -> Tuple[State, Dict[str, object]]:
        extra: Dict[str, object] = {}
        if accumulator.count:
            client_states = accumulator.states()
            if client_states is not None:
                extra["client_drift"] = average_pairwise_distance(client_states)
            average = accumulator.result()

            # Pseudo-gradient: how far the average moved away from the global
            # model this round; momentum accumulates it across rounds.  The
            # flat path runs the identical elementwise update on the whole
            # contiguous buffer instead of per name.
            if isinstance(global_state, FlatState) and isinstance(self._velocity, FlatState):
                layout = global_state.layout
                delta = global_state.vector - state_vector(average, layout)
                velocity = self.server_momentum * state_vector(self._velocity, layout) + delta
                self._velocity = wrap_flat(layout, velocity)
                global_state = wrap_flat(layout, global_state.vector - velocity)
            else:
                for name in global_state:
                    delta = global_state[name] - average[name]
                    self._velocity[name] = self.server_momentum * self._velocity[name] + delta
                    global_state[name] = global_state[name] - self._velocity[name]

        self.save_checkpoint(round_index, global_state, extra_states={"velocity": self._velocity})
        return global_state, extra

    def run(self) -> TrainingResult:
        if not 0.0 <= self.server_momentum < 1.0:
            raise ValueError(f"server_momentum must be in [0, 1), got {self.server_momentum}")
        result = TrainingResult(algorithm=self.name)
        global_state = self.initial_state()
        self._velocity: State = zeros_like_state(global_state)

        start_round = 0
        resumed = self.load_checkpoint(reference_state=global_state)
        if resumed is not None:
            start_round = resumed.round_index + 1
            global_state = resumed.global_state
            if "velocity" in resumed.extra_states:
                self._velocity = resumed.extra_states["velocity"]

        global_state = self._run_global_rounds(result, global_state, start_round)
        result.global_state = global_state
        return result
