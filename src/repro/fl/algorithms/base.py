"""Common machinery of decentralized training algorithms."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.fl.client import FederatedClient
from repro.fl.config import FLConfig
from repro.fl.execution import (
    CheckpointManager,
    ClientTask,
    ClientUpdate,
    ExecutionBackend,
    RoundCheckpoint,
    SerialBackend,
)
from repro.fl.faults import ResilienceManager
from repro.fl.parameters import State, clone_state, flat_model_state
from repro.fl.scheduling import RoundScheduler
from repro.fl.server import FederatedServer
from repro.fl.transport import Channel
from repro.models.base import RoutabilityModel

ModelFactory = Callable[[], RoutabilityModel]

logger = logging.getLogger("repro.fl")

#: Transport modes accepted by :meth:`FederatedAlgorithm.map_client_updates`.
TRANSPORT_BOTH = "both"  # broadcast and upload cross the channel (a round)
TRANSPORT_DOWN = "down"  # broadcast only (results stay on the client)
TRANSPORT_NONE = "none"  # no communication (e.g. locally created states)
_TRANSPORT_MODES = (TRANSPORT_BOTH, TRANSPORT_DOWN, TRANSPORT_NONE)


@dataclass
class RoundRecord:
    """Summary of one communication round (or one training stage)."""

    round_index: int
    mean_loss: float
    per_client_loss: Dict[int, float] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class TrainingResult:
    """Output of a decentralized training algorithm.

    ``global_state`` is the generalized model (if the algorithm produces
    one); ``client_states`` holds personalized per-client models (if any).
    Evaluation uses :meth:`state_for_client`, which prefers the personalized
    state and falls back to the global one — mirroring how the paper
    evaluates generalized vs. personalized methods with one interface.
    """

    algorithm: str
    global_state: Optional[State] = None
    client_states: Dict[int, State] = field(default_factory=dict)
    history: List[RoundRecord] = field(default_factory=list)

    def state_for_client(self, client_id: int) -> State:
        if client_id in self.client_states:
            return self.client_states[client_id]
        if self.global_state is not None:
            return self.global_state
        raise KeyError(
            f"result of {self.algorithm!r} has neither a personalized state for "
            f"client {client_id} nor a global state"
        )

    @property
    def is_personalized(self) -> bool:
        return bool(self.client_states)

    def final_loss(self) -> float:
        """Mean loss of the final recorded round (NaN when no history exists)."""
        if not self.history:
            return float("nan")
        return self.history[-1].mean_loss


class FederatedAlgorithm:
    """Base class for every training algorithm (federated or baseline).

    A communication round is expressed as *map client tasks over the
    participating clients, then aggregate*: subclasses build the per-client
    starting states and call :meth:`map_client_updates`, which delegates the
    client-side computation to an :class:`~repro.fl.execution.ExecutionBackend`
    (serial by default, process-parallel with
    :class:`~repro.fl.execution.ProcessPoolBackend`).

    When a :class:`~repro.fl.transport.Channel` is attached, every broadcast
    (server → client) and upload (client → server) of the round passes
    through its wire codec: clients train from the decoded downlink payload
    and the server aggregates the decoded uploads, with every payload's real
    byte size recorded by the channel's tracker.  Without a channel, states
    move raw and in-process (the pre-transport behavior).
    """

    #: Registry / display name, overridden by subclasses.
    name: str = "base"

    #: Whether :meth:`run` honors a :class:`CheckpointManager`.  True for the
    #: algorithms whose cross-round state is a single global model; the
    #: personalized algorithms carry per-client state across rounds and
    #: currently ignore checkpointing.
    supports_checkpointing: bool = False

    #: Whether :meth:`run` honors a :class:`~repro.fl.scheduling.RoundScheduler`
    #: (partial participation, stragglers, deadline cutoffs).  True for the
    #: global-state algorithms whose round loop goes through
    #: :meth:`_run_scheduled_rounds`; the personalized algorithms still run
    #: the full cohort every round.
    supports_scheduling: bool = False

    #: Whether :meth:`run` implements the FedBuff buffered-asynchronous
    #: round policy.  Requires delta-style aggregation; only the FedProx
    #: family supports it.
    supports_fedbuff: bool = False

    #: Whether :meth:`run` honors a :class:`~repro.fl.faults.ResilienceManager`
    #: (fault injection, supervised retries, quorum-gated round commits).
    #: True for the global-state algorithms whose round loops can degrade
    #: gracefully; the personalized algorithms currently ignore resilience.
    supports_resilience: bool = False

    def __init__(
        self,
        clients: Sequence[FederatedClient],
        model_factory: ModelFactory,
        config: FLConfig,
        server: Optional[FederatedServer] = None,
        backend: Optional[ExecutionBackend] = None,
        checkpoint: Optional[CheckpointManager] = None,
        channel: Optional[Channel] = None,
        scheduler: Optional[RoundScheduler] = None,
        resilience: Optional[ResilienceManager] = None,
    ):
        if not clients:
            raise ValueError("at least one client is required")
        self.clients: List[FederatedClient] = list(clients)
        self.model_factory = model_factory
        self.config = config
        self.server = server if server is not None else FederatedServer()
        self.backend = backend if backend is not None else SerialBackend()
        self.backend.bind(self.clients)
        self.checkpoint = checkpoint
        self.channel = channel
        self.scheduler = scheduler
        self.resilience = resilience
        if scheduler is not None:
            scheduler.bind(self.clients)
            if scheduler.policy == "fedbuff" and not self.supports_fedbuff:
                raise ValueError(
                    f"algorithm {self.name!r} does not support the fedbuff round "
                    "policy; choose sync or deadline (or run fedavg/fedprox)"
                )
        if resilience is not None:
            if scheduler is not None and scheduler.policy == "fedbuff":
                raise ValueError(
                    "fault tolerance (quorum/faults/retries) is not supported under "
                    "the fedbuff round policy yet; choose sync or deadline"
                )
            # Retry backoff elapses on the scheduler's virtual clock when
            # one exists, so waits and straggler latencies share a timeline.
            resilience.bind(
                self.clients,
                clock=scheduler.clock if scheduler is not None else None,
            )
        if channel is not None and checkpoint is not None:
            if channel.error_feedback:
                logger.warning(
                    "%s: error-feedback residuals are not checkpointed; a resumed run "
                    "will not be bit-identical to an uninterrupted one",
                    self.name,
                )
            logger.warning(
                "%s: the transport channel's measured-byte tracker is not "
                "checkpointed; after a resume, reported communication covers "
                "only the rounds trained in this process",
                self.name,
            )

    # -- helpers shared by subclasses -------------------------------------------
    def client_weights(self) -> List[float]:
        """Aggregation weights ``n_k`` (training sample counts)."""
        return [float(client.num_samples) for client in self.clients]

    def initial_state(self) -> State:
        """A fresh global model initialization (packed into a flat buffer)."""
        return flat_model_state(self.model_factory())

    def _prepare_client_tasks(
        self,
        states: Union[State, Sequence[State]],
        steps: Optional[int],
        proximal_mu: Optional[float],
        op: str,
        transport: str,
        upload_names: Optional[Sequence[str]],
        cohort: Optional[Sequence[int]],
    ):
        """Validate one client pass and build its tasks.

        Returns ``(tasks, finish)`` where ``finish(update)`` completes one
        returned update in the coordinating process (decoding backend-encoded
        payloads; applying delta references and error feedback; recording
        measured bytes) — a no-op without a channel.  Shared by the batch
        (:meth:`map_client_updates`) and streaming
        (:meth:`iter_client_updates`) entry points so both dispatch — and
        account transport bytes — identically.
        """
        if transport not in _TRANSPORT_MODES:
            raise ValueError(
                f"unknown transport mode {transport!r}; expected one of {_TRANSPORT_MODES}"
            )
        if cohort is None:
            indices = list(range(len(self.clients)))
        else:
            indices = [int(index) for index in cohort]
            if any(index < 0 or index >= len(self.clients) for index in indices):
                raise ValueError(
                    f"cohort indices {indices} out of range for {len(self.clients)} clients"
                )
        if isinstance(states, dict):
            per_client: Sequence[State] = [states] * len(indices)
        else:
            per_client = list(states)
            if len(per_client) != len(indices):
                raise ValueError(
                    f"got {len(per_client)} states for {len(indices)} participating "
                    "clients; pass one state per participant or a single broadcast state"
                )

        if self.channel is None or transport == TRANSPORT_NONE:
            tasks = [
                ClientTask(
                    client_index=index,
                    state=state,
                    op=op,
                    steps=steps,
                    proximal_mu=proximal_mu,
                )
                for index, state in zip(indices, per_client)
            ]

            def finish(update: ClientUpdate) -> None:
                return None

            return tasks, finish

        wire_tasks = self.channel.broadcast(
            per_client,
            [self.clients[index].client_id for index in indices],
            expect_upload=transport == TRANSPORT_BOTH,
            partial_upload=upload_names is not None,
        )
        tasks = [
            ClientTask(
                client_index=index,
                wire=wire,
                op=op,
                steps=steps,
                proximal_mu=proximal_mu,
            )
            for index, wire in zip(indices, wire_tasks)
        ]

        def finish(update: ClientUpdate) -> None:
            if transport == TRANSPORT_BOTH:
                update.state = self.channel.receive(
                    update.client_id,
                    state=update.state,
                    payload=update.payload,
                    upload_names=upload_names,
                )
                update.payload = None

        return tasks, finish

    def map_client_updates(
        self,
        states: Union[State, Sequence[State]],
        steps: Optional[int] = None,
        proximal_mu: Optional[float] = None,
        op: str = "train",
        transport: str = TRANSPORT_BOTH,
        upload_names: Optional[Sequence[str]] = None,
        cohort: Optional[Sequence[int]] = None,
    ) -> List[ClientUpdate]:
        """Run one client-side pass over the participating clients.

        ``cohort`` is the round's participating roster indices (from a
        :class:`~repro.fl.scheduling.RoundScheduler` plan); ``None`` means
        every client participates — the pre-scheduling behavior, bit for
        bit.  ``states`` is either a single global :data:`State` broadcast
        to every participant or a sequence aligned with the participants
        (one personalized starting state each).  Results come back in
        participant order.

        ``transport`` says which directions of this pass are real
        communication when a channel is attached: ``"both"`` (a normal
        round: broadcast down, upload back), ``"down"`` (broadcast only —
        e.g. fine-tuning, whose personalized result stays on the client),
        or ``"none"`` (no wire at all — e.g. locally created initial
        states).  ``upload_names`` restricts the upload to a subset of the
        state (FedBN / FedProx-LG ship only their shared part; the private
        part returns untouched).  Without a channel both flags are
        irrelevant: states move raw.
        """
        tasks, finish = self._prepare_client_tasks(
            states, steps, proximal_mu, op, transport, upload_names, cohort
        )
        if self.resilience is not None:
            # Supervised dispatch: fault injection, retries with backoff,
            # per-client RNG snapshot/restore.  Clients that exhaust their
            # retries are simply absent from the returned list.
            return list(self.resilience.supervise(self.backend, tasks, finish, self.clients))
        updates = self.backend.map(tasks)
        for update in updates:
            finish(update)
        return updates

    def iter_client_updates(
        self,
        states: Union[State, Sequence[State]],
        steps: Optional[int] = None,
        proximal_mu: Optional[float] = None,
        op: str = "train",
        transport: str = TRANSPORT_BOTH,
        upload_names: Optional[Sequence[str]] = None,
        cohort: Optional[Sequence[int]] = None,
    ):
        """Streaming variant of :meth:`map_client_updates`.

        Yields each :class:`ClientUpdate` in participant order as soon as
        its computation completes (via the backend's ``imap``), so a
        streaming server can fold — and release — update ``i`` while
        updates ``i+1..`` are still training.  Values are identical to the
        batch entry point; only the delivery is incremental.
        """
        tasks, finish = self._prepare_client_tasks(
            states, steps, proximal_mu, op, transport, upload_names, cohort
        )
        if self.resilience is not None:
            yield from self.resilience.supervise(self.backend, tasks, finish, self.clients)
            return
        for update in self.backend.imap(tasks):
            finish(update)
            yield update

    # -- checkpointing ------------------------------------------------------------
    def checkpoint_fingerprint(self) -> Dict[str, object]:
        """Identifies the run a checkpoint belongs to.

        Stored with every checkpoint and validated on load, so resuming from
        a directory written by a different algorithm, seed, or client roster
        fails loudly instead of silently continuing from mismatched weights.
        The round budget is deliberately excluded: a checkpoint from a
        shorter run is legitimately resumable into a longer one.  The
        transport settings are included whenever a channel is attached:
        resuming a lossy-compressed run without its codec (or vice versa)
        would silently mix trajectories.  Channel-less runs omit the key
        entirely so checkpoints written before the transport layer existed
        stay resumable.
        """
        fingerprint: Dict[str, object] = {}
        if self.scheduler is not None:
            # Resuming a partial-participation run under a different sampler,
            # straggler model, or round policy would silently diverge from
            # the uninterrupted trajectory; channel-less / scheduler-less
            # runs omit the key so older checkpoints stay resumable.
            fingerprint["scheduling"] = self.scheduler.describe()
        if self.channel is not None:
            fingerprint["transport"] = {
                "uplink": self.channel.uplink_codec.describe(),
                "downlink": self.channel.downlink_codec.describe(),
                "delta_upload": self.channel.delta_upload,
                "error_feedback": self.channel.error_feedback,
            }
        if self.config.compute_dtype != "float64":
            # A float32 trajectory is not bit-compatible with a float64 one;
            # resuming across the dtype switch must fail loudly.  Default
            # (float64) runs omit the key so pre-engine checkpoints stay
            # resumable.
            fingerprint["compute_dtype"] = self.config.compute_dtype
        if self.server.aggregator.name != "gemv":
            # Streaming/sharded runs fold in a different summation order
            # past the parity limit; mixing modes across a resume could
            # silently blend trajectories.  GEMV runs omit the key so
            # checkpoints from before the aggregation tier stay resumable.
            fingerprint["aggregation"] = self.server.aggregator.name
        if self.resilience is not None and self.resilience.plan.any_faults:
            # Resuming a chaos run under a different fault plan would
            # silently change which clients fail; fault-free (or
            # resilience-less) runs omit the key so their checkpoints stay
            # interchangeable with pre-resilience ones.  Quorum and the
            # retry policy are deliberately *excluded*: they are
            # operational knobs a resume may legitimately relax (e.g.
            # lowering --quorum to get past the round that failed).
            fingerprint["faults"] = self.resilience.describe()
        fingerprint.update({
            "algorithm": self.name,
            "seed": self.config.seed,
            "local_steps": self.config.local_steps,
            "learning_rate": self.config.learning_rate,
            "batch_size": self.config.batch_size,
            "proximal_mu": self.config.proximal_mu,
            "optimizer": self.config.optimizer,
            "weight_decay": self.config.weight_decay,
            "loss": self.config.loss,
            "client_ids": [client.client_id for client in self.clients],
        })
        return fingerprint

    def load_checkpoint(self, reference_state: Optional[State] = None) -> Optional[RoundCheckpoint]:
        """Load the latest round checkpoint (if any) and restore client RNGs.

        ``reference_state`` is a freshly initialized global state of the
        current run; when given, the checkpointed state must have the same
        parameter names and shapes (catching a model switch between runs).
        Raises ``ValueError`` when the checkpoint was written by a different
        run (see :meth:`checkpoint_fingerprint`).
        """
        if self.checkpoint is None:
            return None
        resumed = self.checkpoint.load_latest()
        if resumed is None:
            return None
        recorded = resumed.extra_meta.get("fingerprint")
        expected = self.checkpoint_fingerprint()
        if recorded is not None and recorded != expected:
            raise ValueError(
                f"checkpoint in {self.checkpoint.directory} was written by a different "
                f"run (recorded {recorded}, expected {expected}); clear the directory "
                "or point the checkpoint option elsewhere"
            )
        if reference_state is not None:
            same_model = set(resumed.global_state) == set(reference_state) and all(
                resumed.global_state[key].shape == np.asarray(reference_state[key]).shape
                for key in reference_state
            )
            if not same_model:
                raise ValueError(
                    f"checkpoint in {self.checkpoint.directory} holds a different model "
                    "(parameter names/shapes do not match the current configuration); "
                    "clear the directory or point the checkpoint option elsewhere"
                )
        self.checkpoint.restore_clients(self.clients, resumed)
        if self.scheduler is not None and "scheduler_state" in resumed.extra_meta:
            # Restore sampler/availability/latency RNGs, the virtual clock,
            # and the participation counters, so the resumed run draws the
            # same cohorts and reports the same totals as an uninterrupted
            # one.
            self.scheduler.set_state(resumed.extra_meta["scheduler_state"])
        if self.resilience is not None and "resilience_state" in resumed.extra_meta:
            # Restore the fault plan's draw counters, the permanent-failure
            # set, and the retry accounting, so the resumed chaos run
            # replays the exact fault/retry sequence of an uninterrupted
            # one and reports the same totals.
            self.resilience.set_state(resumed.extra_meta["resilience_state"])
        logger.info(
            "%s: resuming from checkpoint round %d in %s",
            self.name,
            resumed.round_index,
            self.checkpoint.directory,
        )
        if resumed.round_index + 1 >= self.config.rounds:
            logger.warning(
                "%s: checkpoint in %s already covers all %d configured rounds; "
                "returning the checkpointed state without further training",
                self.name,
                self.checkpoint.directory,
                self.config.rounds,
            )
        return resumed

    def save_checkpoint(
        self,
        round_index: int,
        global_state: State,
        extra_states: Optional[Dict[str, State]] = None,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> None:
        """Persist one completed round (no-op without a checkpoint manager)."""
        if self.checkpoint is not None:
            meta = dict(extra_meta or {})
            meta["fingerprint"] = self.checkpoint_fingerprint()
            if self.scheduler is not None:
                meta["scheduler_state"] = self.scheduler.state()
            if self.resilience is not None:
                meta["resilience_state"] = self.resilience.state()
            self.checkpoint.save(
                round_index,
                global_state,
                self.clients,
                extra_states=extra_states,
                extra_meta=meta,
            )

    def _round_record(
        self,
        round_index: int,
        per_client_loss: Dict[int, float],
        extra: Optional[Dict[str, object]] = None,
    ) -> RoundRecord:
        mean_loss = float(np.mean(list(per_client_loss.values()))) if per_client_loss else float("nan")
        return RoundRecord(
            round_index=round_index,
            mean_loss=mean_loss,
            per_client_loss=dict(per_client_loss),
            extra=dict(extra or {}),
        )

    # -- scheduled round loop (global-state algorithms) ---------------------------
    def _local_proximal_mu(self) -> float:
        """Proximal strength used for the per-round client pass."""
        return self.config.proximal_mu

    def _release_client(self, client_index: int) -> None:
        """Free a virtual client's materialized resources (no-op for eager clients)."""
        release = getattr(self.clients[client_index], "release", None)
        if release is not None:
            release()

    def _auto_checkpoint_dir(self) -> Optional[str]:
        """Where a quorum failure's auto-checkpoint lives (if anywhere).

        Checkpoints are saved eagerly at the end of every committed round,
        so the latest checkpoint on disk *is* the resume point when a later
        round fails quorum — no extra save happens at failure time (a
        re-save would have to reconstruct per-algorithm extra states like
        server momentum mid-round).
        """
        return str(self.checkpoint.directory) if self.checkpoint is not None else None

    def _begin_fold(self, global_state: State):
        """A fresh accumulator for one round's server aggregation."""
        return self.server.accumulator()

    def _fold_update(self, accumulator, global_state: State, update: ClientUpdate) -> None:
        """Fold one kept update into the round's accumulator.

        The per-algorithm per-update server step: FedProx folds the raw
        state weighted by sample count, DP-FedProx privatizes it first.
        Called in arrival order — which equals cohort order on every
        backend — so sequential server-side RNG streams (DP noise) are
        backend- and mode-independent.
        """
        raise NotImplementedError(
            f"{self.__class__.__name__} does not implement the scheduled round loop"
        )

    def _finalize_round(
        self, round_index: int, global_state: State, accumulator
    ) -> "tuple[State, Dict[str, object]]":
        """Turn the round's accumulator into the new global state.

        Implementations read ``accumulator.result()`` (when any update was
        folded — the accumulator may be empty when every selected client
        missed the deadline, leaving the global state unchanged), persist
        the round via :meth:`save_checkpoint`, and return the new global
        state plus extras for the round record.
        """
        raise NotImplementedError(
            f"{self.__class__.__name__} does not implement the scheduled round loop"
        )

    def _global_round(
        self, round_index: int, global_state: State, kept: Sequence[ClientUpdate]
    ) -> "tuple[State, Dict[str, object]]":
        """Aggregate one round's kept updates into the global state.

        Expressed through the fold hooks so every aggregation mode shares
        one code path: the ``gemv`` accumulator simply buffers the updates
        it is folded (reproducing the historical batch aggregation bit for
        bit), while the streaming/sharded accumulators consume them one at
        a time — in which case each update's state is dropped, and its
        (possibly virtual) client released, as soon as it is folded.
        """
        accumulator = self._begin_fold(global_state)
        for update in kept:
            self._fold_update(accumulator, global_state, update)
            if self.server.streaming:
                update.state = None
                self._release_client(update.client_index)
        self.server.record_folds(accumulator.count)
        return self._finalize_round(round_index, global_state, accumulator)

    def _run_global_rounds(
        self, result: TrainingResult, global_state: State, start_round: int
    ) -> State:
        """The per-round loop of every global-state algorithm.

        Dispatches to the scheduler-driven loop when a round scheduler is
        attached, and to the historical full-cohort loop (bit-identical to
        pre-scheduling behavior) otherwise.  Both express the server step
        through the :meth:`_global_round` hook.
        """
        if self.scheduler is None:
            return self._run_unscheduled_rounds(result, global_state, start_round)
        return self._run_scheduled_rounds(result, global_state, start_round)

    def _run_unscheduled_rounds(
        self, result: TrainingResult, global_state: State, start_round: int
    ) -> State:
        """Full-cohort synchronous rounds (the pre-scheduling behavior).

        With a resilience manager attached the cohort excludes permanently
        failed clients, the round only commits at quorum (raising the typed
        :class:`~repro.fl.faults.QuorumFailure` below it), and clients that
        exhausted their retries this round are dropped for good with a
        recorded weight renormalization.  Without one, the loop is the
        pre-resilience code path bit for bit.
        """
        mu = self._local_proximal_mu()
        resilience = self.resilience
        for round_index in range(start_round, self.config.rounds):
            if resilience is None:
                updates = self.map_client_updates(
                    global_state, steps=self.config.local_steps, proximal_mu=mu
                )
            else:
                resilience.begin_round(round_index)
                cohort = resilience.active_cohort(range(len(self.clients)))
                updates = (
                    self.map_client_updates(
                        global_state,
                        steps=self.config.local_steps,
                        proximal_mu=mu,
                        cohort=cohort,
                    )
                    if cohort
                    else []
                )
                resilience.check_quorum(
                    round_index,
                    arrived=len(updates),
                    cohort_size=len(cohort),
                    checkpoint_dir=self._auto_checkpoint_dir(),
                )
            # Drops commit *before* the aggregation step so the round's
            # checkpoint (saved inside _finalize_round) already carries the
            # updated permanent-failure set.
            commit_extra = resilience.commit_round(self.client_weights()) if resilience else {}
            global_state, extra = self._global_round(round_index, global_state, updates)
            extra = {**extra, **commit_extra}
            per_client_loss = {
                update.client_id: update.stats.mean_loss for update in updates
            }
            result.history.append(
                self._round_record(round_index, per_client_loss, extra=extra)
            )
        return global_state

    def _run_scheduled_rounds(
        self, result: TrainingResult, global_state: State, start_round: int
    ) -> State:
        """Barrier-style (sync / deadline) rounds driven by the scheduler.

        Each round: ask the scheduler for a cohort (sampling over the
        clients available at the current virtual time), run the cohort's
        client passes through the execution backend, let the round policy
        keep or drop each update (drawing straggler latencies and advancing
        the virtual clock), and aggregate whatever survived via
        :meth:`_global_round`.
        """
        scheduler = self.scheduler
        resilience = self.resilience
        for round_index in range(start_round, self.config.rounds):
            plan = scheduler.begin_round(round_index)
            if resilience is not None:
                resilience.begin_round(round_index)
                # Permanently failed clients leave the cohort *before* any
                # latency draw, so the latency RNG never spends entropy on
                # clients that cannot participate.
                plan.cohort = resilience.active_cohort(plan.cohort)
            attempted = len(plan.cohort)
            if self.server.streaming and plan.cohort:
                global_state, extra, per_client_loss = self._stream_scheduled_round(
                    round_index, global_state, plan
                )
            else:
                updates = (
                    self.map_client_updates(
                        global_state,
                        steps=self.config.local_steps,
                        proximal_mu=self._local_proximal_mu(),
                        cohort=plan.cohort,
                    )
                    if plan.cohort
                    else []
                )
                if resilience is not None:
                    # Clients that exhausted their retries produced no
                    # update; shrink the plan to the arrivals so the
                    # scheduler's alignment contract holds.
                    plan.cohort = [update.client_index for update in updates]
                outcome = scheduler.complete_round(plan, updates)
                if resilience is not None:
                    resilience.check_quorum(
                        round_index,
                        arrived=len(outcome.kept),
                        cohort_size=attempted,
                        checkpoint_dir=self._auto_checkpoint_dir(),
                    )
                # Drops commit *before* the aggregation step so the round's
                # checkpoint (saved inside _finalize_round) already carries
                # the updated permanent-failure set.
                commit_extra = resilience.commit_round(self.client_weights()) if resilience else {}
                global_state, extra = self._global_round(round_index, global_state, outcome.kept)
                extra = {**extra, **outcome.record_extra, **commit_extra}
                per_client_loss = {
                    update.client_id: update.stats.mean_loss for update in outcome.kept
                }
            result.history.append(
                self._round_record(round_index, per_client_loss, extra=extra)
            )
        return global_state

    def _stream_scheduled_round(self, round_index: int, global_state: State, plan):
        """One scheduled round with per-arrival folding (streaming server).

        The cohort's straggler latencies are pre-drawn (consuming the
        latency RNG exactly as the batch path's ``complete_round`` would,
        so every drawn value stays bit-identical), each update is folded —
        or, past the deadline, discarded — the moment it comes off the
        backend, and its state and client are released immediately after.
        Peak coordinator memory is therefore O(P), independent of the
        cohort size.
        """
        scheduler = self.scheduler
        resilience = self.resilience
        attempted = len(plan.cohort)
        latencies = scheduler.arrival_schedule(plan)
        deadline = scheduler.deadline if scheduler.policy == "deadline" else None
        accumulator = self._begin_fold(global_state)
        updates: List[ClientUpdate] = []
        per_client_loss: Dict[int, float] = {}
        for update in self.iter_client_updates(
            global_state,
            steps=self.config.local_steps,
            proximal_mu=self._local_proximal_mu(),
            cohort=plan.cohort,
        ):
            updates.append(update)
            if deadline is None or latencies[update.client_index] <= deadline:
                self._fold_update(accumulator, global_state, update)
                per_client_loss[update.client_id] = update.stats.mean_loss
            update.state = None
            self._release_client(update.client_index)
        if resilience is not None:
            # Clients that exhausted their retries produced no update;
            # shrink the plan (and its pre-drawn latencies) to the arrivals
            # so the scheduler's alignment contract holds, and gate the
            # commit on the number of updates actually *folded*.
            plan.cohort = [update.client_index for update in updates]
            latencies = {index: latencies[index] for index in plan.cohort}
            resilience.check_quorum(
                round_index,
                arrived=accumulator.count,
                cohort_size=attempted,
                checkpoint_dir=self._auto_checkpoint_dir(),
            )
        outcome = scheduler.complete_round(plan, updates, latencies=latencies)
        # Drops commit *before* _finalize_round so the round's checkpoint
        # already carries the updated permanent-failure set.
        commit_extra = resilience.commit_round(self.client_weights()) if resilience else {}
        self.server.record_folds(accumulator.count)
        global_state, extra = self._finalize_round(round_index, global_state, accumulator)
        return global_state, {**extra, **outcome.record_extra, **commit_extra}, per_client_loss

    # -- interface ------------------------------------------------------------------
    def run(self) -> TrainingResult:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(clients={len(self.clients)})"


class SeededModelFactory:
    """A model factory producing deterministic but distinct initializations.

    Every call creates a new model seeded by ``base_seed + call index``; this
    is what IFCA uses to initialize ``C`` distinct cluster models while the
    whole experiment stays reproducible.
    """

    def __init__(self, builder: Callable[[int], RoutabilityModel], base_seed: int = 0):
        self._builder = builder
        self._base_seed = int(base_seed)
        self._calls = 0

    def __call__(self) -> RoutabilityModel:
        model = self._builder(self._base_seed + self._calls)
        self._calls += 1
        return model

    def build_with_seed(self, seed: int) -> RoutabilityModel:
        """Build one model from an explicit seed *without* advancing the
        factory's call counter.

        Used by :meth:`repro.fl.FederatedClient.initial_state`: per-client
        initializations are seeded from the client's own RNG, so they stay
        reproducible regardless of how many models other clients (or the
        coordinating process) have built from the shared factory.
        """
        return self._builder(int(seed))

    def reset(self) -> None:
        """Restart the seed sequence (a fresh factory for a fresh experiment)."""
        self._calls = 0
