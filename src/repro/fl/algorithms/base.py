"""Common machinery of decentralized training algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.fl.client import FederatedClient
from repro.fl.config import FLConfig
from repro.fl.parameters import State, clone_state
from repro.fl.server import FederatedServer
from repro.models.base import RoutabilityModel

ModelFactory = Callable[[], RoutabilityModel]


@dataclass
class RoundRecord:
    """Summary of one communication round (or one training stage)."""

    round_index: int
    mean_loss: float
    per_client_loss: Dict[int, float] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class TrainingResult:
    """Output of a decentralized training algorithm.

    ``global_state`` is the generalized model (if the algorithm produces
    one); ``client_states`` holds personalized per-client models (if any).
    Evaluation uses :meth:`state_for_client`, which prefers the personalized
    state and falls back to the global one — mirroring how the paper
    evaluates generalized vs. personalized methods with one interface.
    """

    algorithm: str
    global_state: Optional[State] = None
    client_states: Dict[int, State] = field(default_factory=dict)
    history: List[RoundRecord] = field(default_factory=list)

    def state_for_client(self, client_id: int) -> State:
        if client_id in self.client_states:
            return self.client_states[client_id]
        if self.global_state is not None:
            return self.global_state
        raise KeyError(
            f"result of {self.algorithm!r} has neither a personalized state for "
            f"client {client_id} nor a global state"
        )

    @property
    def is_personalized(self) -> bool:
        return bool(self.client_states)

    def final_loss(self) -> float:
        """Mean loss of the final recorded round (NaN when no history exists)."""
        if not self.history:
            return float("nan")
        return self.history[-1].mean_loss


class FederatedAlgorithm:
    """Base class for every training algorithm (federated or baseline)."""

    #: Registry / display name, overridden by subclasses.
    name: str = "base"

    def __init__(
        self,
        clients: Sequence[FederatedClient],
        model_factory: ModelFactory,
        config: FLConfig,
        server: Optional[FederatedServer] = None,
    ):
        if not clients:
            raise ValueError("at least one client is required")
        self.clients: List[FederatedClient] = list(clients)
        self.model_factory = model_factory
        self.config = config
        self.server = server if server is not None else FederatedServer()

    # -- helpers shared by subclasses -------------------------------------------
    def client_weights(self) -> List[float]:
        """Aggregation weights ``n_k`` (training sample counts)."""
        return [float(client.num_samples) for client in self.clients]

    def initial_state(self) -> State:
        """A fresh global model initialization."""
        return self.model_factory().state_dict()

    def _round_record(
        self,
        round_index: int,
        per_client_loss: Dict[int, float],
        extra: Optional[Dict[str, object]] = None,
    ) -> RoundRecord:
        mean_loss = float(np.mean(list(per_client_loss.values()))) if per_client_loss else float("nan")
        return RoundRecord(
            round_index=round_index,
            mean_loss=mean_loss,
            per_client_loss=dict(per_client_loss),
            extra=dict(extra or {}),
        )

    # -- interface ------------------------------------------------------------------
    def run(self) -> TrainingResult:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(clients={len(self.clients)})"


class SeededModelFactory:
    """A model factory producing deterministic but distinct initializations.

    Every call creates a new model seeded by ``base_seed + call index``; this
    is what IFCA uses to initialize ``C`` distinct cluster models while the
    whole experiment stays reproducible.
    """

    def __init__(self, builder: Callable[[int], RoutabilityModel], base_seed: int = 0):
        self._builder = builder
        self._base_seed = int(base_seed)
        self._calls = 0

    def __call__(self) -> RoutabilityModel:
        model = self._builder(self._base_seed + self._calls)
        self._calls += 1
        return model

    def reset(self) -> None:
        """Restart the seed sequence (a fresh factory for a fresh experiment)."""
        self._calls = 0
