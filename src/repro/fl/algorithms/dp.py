"""Differentially private FedProx.

Wraps the FedProx round with the client-level DP mechanism of
:mod:`repro.fl.privacy`: every client's per-round model update is clipped to
a maximum L2 norm and perturbed with Gaussian noise *before* it is sent to
the developer, and a zCDP accountant tracks the cumulative (epsilon, delta)
guarantee across rounds.  This is the "privacy engineering" the paper's
footnote defers to, made concrete so its accuracy cost can be measured (see
the DP ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.algorithms.base import FederatedAlgorithm, ModelFactory, TrainingResult
from repro.fl.client import FederatedClient
from repro.fl.config import FLConfig
from repro.fl.parameters import State, average_pairwise_distance
from repro.fl.privacy import GaussianAccountant, PrivacyConfig, PrivateUpdateLog, privatize_update
from repro.fl.server import FederatedServer
from repro.utils.rng import new_rng


class DPFedProx(FederatedAlgorithm):
    """FedProx with clipped, noised client updates and a privacy accountant."""

    name = "dp_fedprox"

    def __init__(
        self,
        clients: Sequence[FederatedClient],
        model_factory: ModelFactory,
        config: FLConfig,
        server: Optional[FederatedServer] = None,
        privacy: Optional[PrivacyConfig] = None,
    ):
        super().__init__(clients, model_factory, config, server)
        self.privacy = privacy if privacy is not None else PrivacyConfig(clip_norm=1.0, noise_multiplier=0.1)
        self.accountant = GaussianAccountant(self.privacy)
        self.update_log = PrivateUpdateLog()

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        global_state = self.initial_state()
        weights = self.client_weights()
        mu = self.config.proximal_mu
        rng = new_rng(np.random.SeedSequence([self.config.seed, 0xD9]))

        for round_index in range(self.config.rounds):
            client_states: List[State] = []
            per_client_loss: Dict[int, float] = {}
            for client in self.clients:
                state, stats = client.local_train(
                    global_state, steps=self.config.local_steps, proximal_mu=mu
                )
                private_state, raw_norm = privatize_update(global_state, state, self.privacy, rng)
                self.update_log.record(raw_norm, self.privacy.clip_norm)
                client_states.append(private_state)
                per_client_loss[client.client_id] = stats.mean_loss
            drift = average_pairwise_distance(client_states)
            global_state = self.server.aggregate(client_states, weights)
            self.accountant.record_round()
            result.history.append(
                self._round_record(
                    round_index,
                    per_client_loss,
                    extra={
                        "client_drift": drift,
                        "epsilon": self.accountant.epsilon(),
                        "clipped_fraction": self.update_log.clipped_fraction,
                    },
                )
            )

        result.global_state = global_state
        return result
