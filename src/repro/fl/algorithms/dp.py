"""Differentially private FedProx.

Wraps the FedProx round with the client-level DP mechanism of
:mod:`repro.fl.privacy`: every client's per-round model update is clipped to
a maximum L2 norm and perturbed with Gaussian noise *before* it is sent to
the developer, and a zCDP accountant tracks the cumulative (epsilon, delta)
guarantee across rounds.  This is the "privacy engineering" the paper's
footnote defers to, made concrete so its accuracy cost can be measured (see
the DP ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.algorithms.base import FederatedAlgorithm, ModelFactory, TrainingResult
from repro.fl.client import FederatedClient
from repro.fl.config import FLConfig
from repro.fl.parameters import State, average_pairwise_distance
from repro.fl.privacy import GaussianAccountant, PrivacyConfig, PrivateUpdateLog, privatize_update
from repro.fl.server import FederatedServer
from repro.utils.rng import new_rng


class DPFedProx(FederatedAlgorithm):
    """FedProx with clipped, noised client updates and a privacy accountant."""

    name = "dp_fedprox"
    supports_checkpointing = True

    def __init__(
        self,
        clients: Sequence[FederatedClient],
        model_factory: ModelFactory,
        config: FLConfig,
        server: Optional[FederatedServer] = None,
        privacy: Optional[PrivacyConfig] = None,
        **kwargs,
    ):
        super().__init__(clients, model_factory, config, server, **kwargs)
        self.privacy = privacy if privacy is not None else PrivacyConfig(clip_norm=1.0, noise_multiplier=0.1)
        self.accountant = GaussianAccountant(self.privacy)
        self.update_log = PrivateUpdateLog()

    def checkpoint_fingerprint(self):
        fingerprint = super().checkpoint_fingerprint()
        fingerprint["clip_norm"] = self.privacy.clip_norm
        fingerprint["noise_multiplier"] = self.privacy.noise_multiplier
        return fingerprint

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        global_state = self.initial_state()
        weights = self.client_weights()
        mu = self.config.proximal_mu
        rng = new_rng(np.random.SeedSequence([self.config.seed, 0xD9]))

        start_round = 0
        resumed = self.load_checkpoint(reference_state=global_state)
        if resumed is not None:
            start_round = resumed.round_index + 1
            global_state = resumed.global_state
            if "noise_rng" in resumed.extra_meta:
                rng.bit_generator.state = resumed.extra_meta["noise_rng"]
            if "raw_norms" in resumed.extra_meta:
                self.update_log.raw_norms = [float(v) for v in resumed.extra_meta["raw_norms"]]
                self.update_log.clipped_fraction_hits = int(
                    resumed.extra_meta.get("clipped_hits", 0)
                )
            self.accountant.record_round(start_round)

        for round_index in range(start_round, self.config.rounds):
            updates = self.map_client_updates(
                global_state, steps=self.config.local_steps, proximal_mu=mu
            )
            client_states: List[State] = []
            per_client_loss: Dict[int, float] = {}
            # The clipping + noising of each returned update happens on the
            # server side with one sequential RNG stream, in client order, so
            # the noise draws are identical under any execution backend.
            for update in updates:
                private_state, raw_norm = privatize_update(
                    global_state, update.state, self.privacy, rng
                )
                self.update_log.record(raw_norm, self.privacy.clip_norm)
                client_states.append(private_state)
                per_client_loss[update.client_id] = update.stats.mean_loss
            drift = average_pairwise_distance(client_states)
            global_state = self.server.aggregate(client_states, weights)
            self.accountant.record_round()
            self.save_checkpoint(
                round_index,
                global_state,
                extra_meta={
                    "noise_rng": rng.bit_generator.state,
                    "raw_norms": list(self.update_log.raw_norms),
                    "clipped_hits": self.update_log.clipped_fraction_hits,
                },
            )
            result.history.append(
                self._round_record(
                    round_index,
                    per_client_loss,
                    extra={
                        "client_drift": drift,
                        "epsilon": self.accountant.epsilon(),
                        "clipped_fraction": self.update_log.clipped_fraction,
                    },
                )
            )

        result.global_state = global_state
        return result
