"""Differentially private FedProx.

Wraps the FedProx round with the client-level DP mechanism of
:mod:`repro.fl.privacy`: every client's per-round model update is clipped to
a maximum L2 norm and perturbed with Gaussian noise *before* it is sent to
the developer, and a zCDP accountant tracks the cumulative (epsilon, delta)
guarantee across rounds.  This is the "privacy engineering" the paper's
footnote defers to, made concrete so its accuracy cost can be measured (see
the DP ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.algorithms.base import FederatedAlgorithm, ModelFactory, TrainingResult
from repro.fl.client import FederatedClient
from repro.fl.config import FLConfig
from repro.fl.execution import ClientUpdate
from repro.fl.parameters import State, average_pairwise_distance
from repro.fl.privacy import GaussianAccountant, PrivacyConfig, PrivateUpdateLog, privatize_update
from repro.fl.server import FederatedServer
from repro.utils.rng import new_rng


class DPFedProx(FederatedAlgorithm):
    """FedProx with clipped, noised client updates and a privacy accountant."""

    name = "dp_fedprox"
    supports_checkpointing = True
    supports_scheduling = True
    supports_resilience = True

    def __init__(
        self,
        clients: Sequence[FederatedClient],
        model_factory: ModelFactory,
        config: FLConfig,
        server: Optional[FederatedServer] = None,
        privacy: Optional[PrivacyConfig] = None,
        **kwargs,
    ):
        super().__init__(clients, model_factory, config, server, **kwargs)
        self.privacy = privacy if privacy is not None else PrivacyConfig(clip_norm=1.0, noise_multiplier=0.1)
        self.accountant = GaussianAccountant(self.privacy)
        self.update_log = PrivateUpdateLog()

    def checkpoint_fingerprint(self):
        fingerprint = super().checkpoint_fingerprint()
        fingerprint["clip_norm"] = self.privacy.clip_norm
        fingerprint["noise_multiplier"] = self.privacy.noise_multiplier
        return fingerprint

    def _fold_update(self, accumulator, global_state: State, update: ClientUpdate) -> None:
        # The clipping + noising of each returned update happens on the
        # server side with one sequential RNG stream, in fold (= cohort)
        # order, so the noise draws are identical under any execution
        # backend and any aggregation mode.
        private_state, raw_norm = privatize_update(
            global_state, update.state, self.privacy, self._noise_rng
        )
        self.update_log.record(raw_norm, self.privacy.clip_norm)
        accumulator.fold(
            private_state, float(self.clients[update.client_index].num_samples)
        )

    def _finalize_round(
        self, round_index: int, global_state: State, accumulator
    ) -> Tuple[State, Dict[str, object]]:
        extra: Dict[str, object] = {}
        if accumulator.count:
            client_states = accumulator.states()
            if client_states is not None:
                extra["client_drift"] = average_pairwise_distance(client_states)
            global_state = accumulator.result()
            self.accountant.record_round()
        self.save_checkpoint(
            round_index,
            global_state,
            extra_meta={
                "noise_rng": self._noise_rng.bit_generator.state,
                "raw_norms": list(self.update_log.raw_norms),
                "clipped_hits": self.update_log.clipped_fraction_hits,
                # The accountant's applied-mechanism count: under a deadline
                # policy a round can keep zero updates and release nothing,
                # so it cannot be reconstructed from the round index alone.
                "privacy_steps": self.accountant.steps,
            },
        )
        extra["epsilon"] = self.accountant.epsilon()
        extra["clipped_fraction"] = self.update_log.clipped_fraction
        return global_state, extra

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        global_state = self.initial_state()
        self._noise_rng = new_rng(np.random.SeedSequence([self.config.seed, 0xD9]))

        start_round = 0
        resumed = self.load_checkpoint(reference_state=global_state)
        if resumed is not None:
            start_round = resumed.round_index + 1
            global_state = resumed.global_state
            if "noise_rng" in resumed.extra_meta:
                self._noise_rng.bit_generator.state = resumed.extra_meta["noise_rng"]
            if "raw_norms" in resumed.extra_meta:
                self.update_log.raw_norms = [float(v) for v in resumed.extra_meta["raw_norms"]]
                self.update_log.clipped_fraction_hits = int(
                    resumed.extra_meta.get("clipped_hits", 0)
                )
            # Restore the exact mechanism count (a scheduled round may have
            # released nothing); older checkpoints without the count fall
            # back to one application per completed round.
            self.accountant.record_round(
                int(resumed.extra_meta.get("privacy_steps", start_round))
            )

        global_state = self._run_global_rounds(result, global_state, start_round)
        result.global_state = global_state
        return result
