"""Decentralized training algorithms and baselines.

Each algorithm reproduces one row (or extension) of the paper's result
tables:

* :class:`LocalOnly` / :class:`Centralized` — the "Local Average" and
  "Training Centrally on All Data" reference rows of Tables 3-5.
* :class:`FedAvg` / :class:`FedProx` — the Figure 1 decentralized loop;
  FedProx adds the Equation 1 proximal term, FedAvg is the ``mu = 0`` case.
* :class:`FedAvgM` — server-side momentum extension (Hsu et al., 2019).
* :class:`FedBN` — keeps normalization layers local (Li et al., 2021), an
  ablation of the paper's Section 4.2 argument that aggregated BN statistics
  hurt decentralized routability estimation.
* :class:`DPFedProx` — FedProx with client-level differential privacy (the
  privacy engineering the paper's footnote defers to).

The personalization techniques of Figure 2 live in
:mod:`repro.fl.personalization`.  Every algorithm subclasses
:class:`FederatedAlgorithm`, which expresses a round as *map client tasks
via an execution backend, then aggregate* — see :mod:`repro.fl.execution`.
"""

from repro.fl.algorithms.base import (
    FederatedAlgorithm,
    ModelFactory,
    RoundRecord,
    SeededModelFactory,
    TrainingResult,
)
from repro.fl.algorithms.baselines import Centralized, LocalOnly
from repro.fl.algorithms.dp import DPFedProx
from repro.fl.algorithms.fedavgm import FedAvgM
from repro.fl.algorithms.fedbn import FedBN, normalization_parameter_names
from repro.fl.algorithms.fedprox import FedAvg, FedProx

__all__ = [
    "FederatedAlgorithm",
    "TrainingResult",
    "RoundRecord",
    "ModelFactory",
    "SeededModelFactory",
    "LocalOnly",
    "Centralized",
    "FedAvg",
    "FedProx",
    "FedAvgM",
    "FedBN",
    "normalization_parameter_names",
    "DPFedProx",
]
