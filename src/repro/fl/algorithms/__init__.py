"""Decentralized training algorithms and baselines."""

from repro.fl.algorithms.base import (
    FederatedAlgorithm,
    ModelFactory,
    RoundRecord,
    SeededModelFactory,
    TrainingResult,
)
from repro.fl.algorithms.baselines import Centralized, LocalOnly
from repro.fl.algorithms.dp import DPFedProx
from repro.fl.algorithms.fedavgm import FedAvgM
from repro.fl.algorithms.fedbn import FedBN, normalization_parameter_names
from repro.fl.algorithms.fedprox import FedAvg, FedProx

__all__ = [
    "FederatedAlgorithm",
    "TrainingResult",
    "RoundRecord",
    "ModelFactory",
    "SeededModelFactory",
    "LocalOnly",
    "Centralized",
    "FedAvg",
    "FedProx",
    "FedAvgM",
    "FedBN",
    "normalization_parameter_names",
    "DPFedProx",
]
