"""FedProx and FedAvg decentralized training.

FedProx (Li et al., 2018) is the paper's chosen federated optimizer: each
round, every client trains the received global model on its own data with a
proximal term ``mu * ||W^r - w_k||^2`` that limits client drift, then the
developer aggregates the returned parameters weighted by sample count.
FedAvg is the special case ``mu = 0``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.parameters import State, average_pairwise_distance


class FedProx(FederatedAlgorithm):
    """The decentralized training loop of Figure 1 with the FedProx objective."""

    name = "fedprox"
    supports_checkpointing = True

    def proximal_mu(self) -> float:
        """Proximal strength; overridden by :class:`FedAvg`."""
        return self.config.proximal_mu

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        global_state = self.initial_state()
        weights = self.client_weights()
        mu = self.proximal_mu()

        start_round = 0
        resumed = self.load_checkpoint(reference_state=global_state)
        if resumed is not None:
            start_round = resumed.round_index + 1
            global_state = resumed.global_state

        for round_index in range(start_round, self.config.rounds):
            updates = self.map_client_updates(
                global_state, steps=self.config.local_steps, proximal_mu=mu
            )
            client_states: List[State] = [update.state for update in updates]
            per_client_loss: Dict[int, float] = {
                update.client_id: update.stats.mean_loss for update in updates
            }
            drift = average_pairwise_distance(client_states)
            global_state = self.server.aggregate(client_states, weights)
            self.save_checkpoint(round_index, global_state)
            result.history.append(
                self._round_record(round_index, per_client_loss, extra={"client_drift": drift})
            )

        result.global_state = global_state
        return result


class FedAvg(FedProx):
    """FedAvg (McMahan et al., 2017): FedProx without the proximal term."""

    name = "fedavg"

    def proximal_mu(self) -> float:
        return 0.0
