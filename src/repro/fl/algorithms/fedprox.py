"""FedProx and FedAvg decentralized training.

FedProx (Li et al., 2018) is the paper's chosen federated optimizer: each
round, every client trains the received global model on its own data with a
proximal term ``mu * ||W^r - w_k||^2`` that limits client drift, then the
developer aggregates the returned parameters weighted by sample count.
FedAvg is the special case ``mu = 0``.

Both algorithms honor a :class:`~repro.fl.scheduling.RoundScheduler`: under
partial participation only the sampled cohort trains, under the deadline
policy straggler updates are dropped before aggregation, and under the
``fedbuff`` policy the synchronous barrier disappears entirely —
:meth:`FedProx._run_fedbuff` runs the buffered-asynchronous event loop of
Nguyen et al. (2022), aggregating staleness-weighted update deltas whenever
the server-side buffer fills.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.fl.algorithms.base import FederatedAlgorithm, TrainingResult
from repro.fl.execution import ClientUpdate
from repro.fl.parameters import (
    FlatState,
    State,
    average_pairwise_distance,
    state_vector,
    weighted_average,
    wrap_flat,
)


@dataclass
class _InFlight:
    """One dispatched client task awaiting its simulated arrival.

    Heap entries are ``(arrival, seq)`` tuples pointing at these records:
    arrival instant first, dispatch order as the deterministic tie-break
    (``seq`` is unique, so the record itself is never compared).
    """

    arrival: float
    seq: int
    client_index: int
    version: int
    dispatch_state: State
    update: ClientUpdate


class FedProx(FederatedAlgorithm):
    """The decentralized training loop of Figure 1 with the FedProx objective."""

    name = "fedprox"
    supports_checkpointing = True
    supports_scheduling = True
    supports_fedbuff = True
    supports_resilience = True

    def proximal_mu(self) -> float:
        """Proximal strength; overridden by :class:`FedAvg`."""
        return self.config.proximal_mu

    def _local_proximal_mu(self) -> float:
        return self.proximal_mu()

    def _fold_update(self, accumulator, global_state: State, update: ClientUpdate) -> None:
        accumulator.fold(
            update.state, float(self.clients[update.client_index].num_samples)
        )

    def _finalize_round(
        self, round_index: int, global_state: State, accumulator
    ) -> Tuple[State, Dict[str, object]]:
        """Sample-count-weighted averaging over the round's folded updates."""
        extra: Dict[str, object] = {}
        if accumulator.count:
            client_states = accumulator.states()
            if client_states is not None:
                # Drift needs the individual states; a spilled streaming
                # accumulator no longer holds them, so the diagnostic is
                # simply omitted at population scale.
                extra["client_drift"] = average_pairwise_distance(client_states)
            global_state = accumulator.result()
        self.save_checkpoint(round_index, global_state)
        return global_state, extra

    def run(self) -> TrainingResult:
        result = TrainingResult(algorithm=self.name)
        global_state = self.initial_state()

        start_round = 0
        resumed = self.load_checkpoint(reference_state=global_state)
        if resumed is not None:
            start_round = resumed.round_index + 1
            global_state = resumed.global_state

        if self.scheduler is not None and self.scheduler.policy == "fedbuff":
            global_state = self._run_fedbuff(result, global_state, start_round)
        else:
            global_state = self._run_global_rounds(result, global_state, start_round)

        result.global_state = global_state
        return result

    # -- buffered-asynchronous aggregation (FedBuff) ------------------------------
    def _run_fedbuff(
        self, result: TrainingResult, global_state: State, start_round: int
    ) -> State:
        """The FedBuff event loop: no barrier, staleness-weighted buffering.

        The server keeps a fixed number of clients training concurrently
        (the sampler's cohort size).  Each dispatched client trains from the
        then-current global model; its update *arrives* after a simulated
        straggler latency.  Arrivals are buffered as update deltas weighted
        by ``n_k * (1 + staleness) ** -exponent`` — staleness being how many
        aggregations happened since the client was dispatched — and every
        time the buffer holds ``buffer_size`` updates the server folds it
        into the global model and bumps the model version.  One aggregation
        counts as one "round" against ``config.rounds``.

        When every buffered update is fresh (staleness zero, dispatched from
        the current model) the fold reduces to exactly the synchronous
        sample-weighted average, so FedBuff with buffer size K and zero
        latency is bit-identical to synchronous FedAvg over the same cohort.

        Simulation correctness note: an update's content depends only on the
        state the client was *dispatched* with, so client computation runs
        eagerly at dispatch (through the execution backend, and through the
        transport channel when one is attached — async payload bytes are
        measured like any other round's) while its arrival is re-ordered by
        the virtual clock.
        """
        scheduler = self.scheduler
        if self.checkpoint is not None:
            # In-flight (dispatched, not yet aggregated) work is not part of
            # a round checkpoint; a resumed fedbuff run re-dispatches from
            # the checkpointed model instead of replaying lost flights.
            from repro.fl.algorithms.base import logger

            logger.warning(
                "%s: fedbuff checkpoints cover aggregations, not in-flight "
                "updates; a resumed run is deterministic but not bit-identical "
                "to an uninterrupted one",
                self.name,
            )
        mu = self._local_proximal_mu()
        steps = self.config.local_steps
        version = start_round
        heap: List[Tuple[float, int, _InFlight]] = []
        in_flight: set = set()
        seq = 0

        def dispatch(indices: Sequence[int]) -> None:
            nonlocal seq
            if not indices:
                return
            updates = self.map_client_updates(
                global_state, steps=steps, proximal_mu=mu, cohort=indices
            )
            scheduler.record_dispatch(len(indices))
            for index, update in zip(indices, updates):
                arrival = scheduler.clock.now + scheduler.draw_latency(index)
                entry = _InFlight(
                    arrival=arrival,
                    seq=seq,
                    client_index=index,
                    version=version,
                    dispatch_state=global_state,
                    update=update,
                )
                heapq.heappush(heap, (arrival, seq, entry))
                in_flight.add(index)
                seq += 1

        # The concurrency target: how many clients train at once.  Fixed at
        # the first cohort's size so the sampler's size rule (fraction or
        # clients-per-round) sets it.
        initial = scheduler.sample_clients(version, exclude=())
        while not initial:
            scheduler.wait_for_clients()
            initial = scheduler.sample_clients(version, exclude=())
        concurrency = len(initial)
        dispatch(initial)

        buffer: List[Tuple[_InFlight, float, int]] = []  # (entry, weight, staleness)
        buffer_losses: Dict[int, float] = {}
        # Streaming servers fold each buffered delta at arrival time (and
        # release the update's state immediately); the gemv path keeps the
        # historical batch fold below, bit for bit.
        delta_accumulator = self.server.delta_accumulator() if self.server.streaming else None

        def aggregate_buffer() -> State:
            """Fold the buffered updates into the global model."""
            entries = [entry for entry, _, _ in buffer]
            weights = [weight for _, weight, _ in buffer]
            if all(
                staleness == 0 and entry.dispatch_state is global_state
                for entry, _, staleness in buffer
            ):
                # Every update is fresh: identical to the synchronous
                # sample-weighted average over the buffered clients.
                return weighted_average([entry.update.state for entry in entries], weights)
            total = float(sum(weights))
            if isinstance(global_state, FlatState) and all(
                isinstance(entry.update.state, FlatState)
                and isinstance(entry.dispatch_state, FlatState)
                for entry, _, _ in buffer
            ):
                # Staleness-weighted folding over the contiguous buffers:
                # one axpy per buffered update, in arrival order — the same
                # elementwise operations as the per-name loop below, so the
                # two paths stay bit-identical.
                layout = global_state.layout
                folded_vector = global_state.vector.copy()
                for entry, weight, _ in buffer:
                    scale = weight / total
                    folded_vector += scale * (
                        state_vector(entry.update.state, layout)
                        - state_vector(entry.dispatch_state, layout)
                    )
                return wrap_flat(layout, folded_vector)
            folded = {name: values.copy() for name, values in global_state.items()}
            for entry, weight, _ in buffer:
                scale = weight / total
                for name in folded:
                    folded[name] += scale * (
                        entry.update.state[name] - entry.dispatch_state[name]
                    )
            return folded

        while version < self.config.rounds:
            if not heap:
                refill = scheduler.sample_clients(
                    version, exclude=in_flight, size=concurrency - len(in_flight)
                )
                if not refill:
                    scheduler.wait_for_clients()
                    continue
                dispatch(refill)
                continue
            # Process every arrival landing at the same instant before
            # refilling, so zero-latency batches behave synchronously.
            batch_time = heap[0][0]
            scheduler.clock.advance_to(batch_time)
            while heap and heap[0][0] == batch_time and version < self.config.rounds:
                _, _, entry = heapq.heappop(heap)
                in_flight.discard(entry.client_index)
                staleness = version - entry.version
                weight = float(
                    self.clients[entry.client_index].num_samples
                ) * scheduler.staleness_weight(staleness)
                buffer.append((entry, weight, staleness))
                buffer_losses[entry.update.client_id] = entry.update.stats.mean_loss
                scheduler.record_buffered(staleness)
                if delta_accumulator is not None:
                    # Fresh at fold time stays fresh at aggregation time: the
                    # global model only rebinds at an aggregation, which also
                    # resets the buffer and the accumulator.
                    delta_accumulator.fold(
                        entry.update.state,
                        entry.dispatch_state,
                        weight,
                        fresh=staleness == 0 and entry.dispatch_state is global_state,
                    )
                    if delta_accumulator.spilled:
                        # Past the parity buffer the delta is captured in the
                        # running sum; drop the references so coordinator
                        # memory stays O(P) regardless of buffer size.
                        entry.update.state = None
                        entry.dispatch_state = None
                    self._release_client(entry.client_index)
                if len(buffer) >= scheduler.buffer_size:
                    if delta_accumulator is not None:
                        global_state = delta_accumulator.result(global_state)
                        delta_accumulator.reset()
                    else:
                        global_state = aggregate_buffer()
                    self.server.record_folds(len(buffer))
                    staleness_values = [staleness for _, _, staleness in buffer]
                    round_index = version
                    version += 1
                    scheduler.record_aggregation()
                    self.save_checkpoint(round_index, global_state)
                    result.history.append(
                        self._round_record(
                            round_index,
                            dict(buffer_losses),
                            extra={
                                "buffered_updates": len(buffer),
                                "mean_staleness": float(
                                    sum(staleness_values) / len(staleness_values)
                                ),
                                "max_staleness": int(max(staleness_values)),
                                "simulated_time_s": scheduler.clock.now,
                            },
                        )
                    )
                    buffer = []
                    buffer_losses = {}
            if version >= self.config.rounds:
                break
            refill = scheduler.sample_clients(
                version, exclude=in_flight, size=concurrency - len(in_flight)
            )
            dispatch(refill)

        # The run stops at the aggregation budget; in-flight work that never
        # arrived is discarded, like a server draining at shutdown.  (Updates
        # already sitting in the buffer arrived and were counted as such;
        # they are simply never folded in.)
        scheduler.record_discarded(len(heap))
        return global_state


class FedAvg(FedProx):
    """FedAvg (McMahan et al., 2017): FedProx without the proximal term."""

    name = "fedavg"

    def proximal_mu(self) -> float:
        return 0.0
