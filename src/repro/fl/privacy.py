"""Privacy mechanisms for decentralized training.

The paper's footnote points at the standard federated-learning privacy
toolbox (differential privacy and secure aggregation) as orthogonal,
well-studied machinery.  This module implements that machinery so the
framework can be exercised end-to-end under a quantified privacy budget:

* **client-level differential privacy**: every model update a client sends
  is clipped to a maximum L2 norm and perturbed with Gaussian noise
  calibrated to that clip norm, the classic DP-FedAvg recipe;
* a **privacy accountant** that composes the per-round Gaussian mechanism
  through zero-concentrated differential privacy (zCDP) and converts the
  accumulated budget to an (epsilon, delta) guarantee;
* a **secure-aggregation simulation**: pairwise additive masks that cancel
  in the server's sum, so the developer only ever observes the aggregate of
  the clients' (weighted) updates, never an individual update.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.parameters import (
    FlatState,
    State,
    check_compatible,
    clone_state,
    flat_pair,
    state_norm,
    wrap_flat,
    zeros_like_state,
)
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class PrivacyConfig:
    """Client-level differential-privacy settings.

    Attributes
    ----------
    clip_norm:
        Maximum L2 norm of a client's per-round model update (its sensitivity).
    noise_multiplier:
        Standard deviation of the Gaussian noise divided by ``clip_norm``.
        Zero disables noise (clipping still applies).
    delta:
        Target delta of the reported (epsilon, delta) guarantee.
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 0.0
    delta: float = 1e-5

    def __post_init__(self):
        if self.clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {self.clip_norm}")
        if self.noise_multiplier < 0:
            raise ValueError(f"noise_multiplier must be non-negative, got {self.noise_multiplier}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")

    @property
    def enabled(self) -> bool:
        """Whether the mechanism adds noise (clipping alone is not DP)."""
        return self.noise_multiplier > 0


def state_update(reference: State, new_state: State) -> State:
    """The model update ``new_state - reference`` a client would transmit.

    Flat states subtract their contiguous buffers in one pass — the hot
    path of delta-encoded uploads — and are bit-identical to the per-name
    dict loop (same elementwise operations, same element order).
    """
    check_compatible([reference, new_state])
    pair = flat_pair(reference, new_state)
    if pair is not None:
        layout, reference_vector, new_vector = pair
        return wrap_flat(layout, new_vector - reference_vector)
    return {name: new_state[name] - reference[name] for name in reference}


def apply_update(reference: State, update: State) -> State:
    """Re-apply a (possibly clipped / noisy) update onto the reference state."""
    check_compatible([reference, update])
    pair = flat_pair(reference, update)
    if pair is not None:
        layout, reference_vector, update_vector = pair
        return wrap_flat(layout, reference_vector + update_vector)
    return {name: reference[name] + update[name] for name in reference}


def clip_update(update: State, clip_norm: float) -> Tuple[State, float]:
    """Scale ``update`` so its global L2 norm is at most ``clip_norm``.

    Returns the clipped update and the pre-clipping norm.
    """
    if clip_norm <= 0:
        raise ValueError(f"clip_norm must be positive, got {clip_norm}")
    norm = state_norm(update)
    if norm <= clip_norm or norm == 0.0:
        return clone_state(update), norm
    scale = clip_norm / norm
    if isinstance(update, FlatState):
        return wrap_flat(update.layout, update.vector * scale), norm
    return {name: values * scale for name, values in update.items()}, norm


def add_gaussian_noise(state: State, sigma: float, rng: np.random.Generator) -> State:
    """Add element-wise Gaussian noise of standard deviation ``sigma``."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        return clone_state(state)
    if isinstance(state, FlatState):
        # One draw over the contiguous buffer.  ``Generator.normal`` fills
        # its output sequentially, so this consumes the identical stream as
        # per-name draws in state order — the dict path below — and the two
        # stay bit-identical (guarded by a test).
        noise = rng.normal(0.0, sigma, size=state.layout.total_size)
        return wrap_flat(state.layout, state.vector + noise)
    return {name: values + rng.normal(0.0, sigma, size=values.shape) for name, values in state.items()}


def privatize_update(
    reference: State,
    new_state: State,
    config: PrivacyConfig,
    rng: np.random.Generator,
) -> Tuple[State, float]:
    """Clip and noise a client's update before it leaves the client.

    Returns the privatized *state* (reference + noisy clipped update) and the
    norm of the raw update (a useful diagnostic for choosing ``clip_norm``).
    """
    update = state_update(reference, new_state)
    clipped, raw_norm = clip_update(update, config.clip_norm)
    sigma = config.noise_multiplier * config.clip_norm
    noisy = add_gaussian_noise(clipped, sigma, rng)
    return apply_update(reference, noisy), raw_norm


class GaussianAccountant:
    """zCDP accountant for repeated applications of the Gaussian mechanism.

    One application of the Gaussian mechanism with noise multiplier ``z``
    satisfies ``rho = 1 / (2 z^2)`` zCDP; ``T`` compositions add their
    ``rho``.  The (epsilon, delta) conversion is
    ``epsilon = rho + 2 sqrt(rho ln(1 / delta))``.
    """

    def __init__(self, config: PrivacyConfig):
        self.config = config
        self.rho = 0.0
        self.steps = 0

    def record_round(self, rounds: int = 1) -> None:
        """Account for ``rounds`` further applications of the mechanism."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        if not self.config.enabled:
            self.steps += rounds
            return
        z = self.config.noise_multiplier
        self.rho += rounds * 1.0 / (2.0 * z * z)
        self.steps += rounds

    def epsilon(self, delta: Optional[float] = None) -> float:
        """Epsilon after the recorded rounds (``inf`` when noise is disabled)."""
        delta = delta if delta is not None else self.config.delta
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if self.steps == 0:
            return 0.0
        if not self.config.enabled:
            return float("inf")
        return self.rho + 2.0 * math.sqrt(self.rho * math.log(1.0 / delta))

    def summary(self) -> Dict[str, float]:
        return {
            "rounds": float(self.steps),
            "rho": float(self.rho),
            "epsilon": float(self.epsilon()),
            "delta": float(self.config.delta),
            "noise_multiplier": float(self.config.noise_multiplier),
            "clip_norm": float(self.config.clip_norm),
        }


class SecureAggregationSession:
    """Pairwise-mask secure aggregation (simulation).

    Every ordered client pair ``(i, j)`` with ``i < j`` derives a shared mask
    from a common seed; client ``i`` adds the mask to its weighted update and
    client ``j`` subtracts it.  Individual masked updates look like noise to
    the server, but their sum equals the sum of the weighted updates exactly,
    so the aggregate (and only the aggregate) is recoverable.
    """

    def __init__(self, client_ids: Sequence[int], template: State, seed: int = 0):
        if len(set(client_ids)) != len(client_ids):
            raise ValueError("client ids must be unique")
        if len(client_ids) < 2:
            raise ValueError("secure aggregation needs at least two clients")
        self.client_ids = list(client_ids)
        self.template = zeros_like_state(template)
        self.seed = int(seed)
        self._submitted: Dict[int, State] = {}
        self._weights: Dict[int, float] = {}

    def _pair_mask(self, low: int, high: int) -> State:
        rng = new_rng(np.random.SeedSequence([self.seed, low, high, 0x5EC]))
        return {
            name: rng.normal(0.0, 1.0, size=values.shape)
            for name, values in self.template.items()
        }

    def masked_update(self, client_id: int, update: State, weight: float = 1.0) -> State:
        """What ``client_id`` sends: its weighted update plus pairwise masks."""
        if client_id not in self.client_ids:
            raise ValueError(f"unknown client id {client_id}")
        if weight <= 0:
            raise ValueError("weight must be positive")
        check_compatible([self.template, update])
        masked = {name: weight * values for name, values in update.items()}
        for other in self.client_ids:
            if other == client_id:
                continue
            low, high = min(client_id, other), max(client_id, other)
            mask = self._pair_mask(low, high)
            sign = 1.0 if client_id == low else -1.0
            for name in masked:
                masked[name] = masked[name] + sign * mask[name]
        return masked

    def submit(self, client_id: int, update: State, weight: float = 1.0) -> State:
        """Mask, record, and return the client's contribution."""
        masked = self.masked_update(client_id, update, weight)
        self._submitted[client_id] = masked
        self._weights[client_id] = float(weight)
        return masked

    def aggregate(self) -> State:
        """The weighted-average update recovered from all masked contributions."""
        missing = [cid for cid in self.client_ids if cid not in self._submitted]
        if missing:
            raise RuntimeError(f"clients {missing} have not submitted; masks would not cancel")
        total_weight = sum(self._weights.values())
        summed = zeros_like_state(self.template)
        for masked in self._submitted.values():
            for name in summed:
                summed[name] = summed[name] + masked[name]
        return {name: values / total_weight for name, values in summed.items()}


@dataclass
class PrivateUpdateLog:
    """Bookkeeping of privatized updates over a training run (for reports)."""

    raw_norms: List[float] = field(default_factory=list)
    clipped_fraction_hits: int = 0

    def record(self, raw_norm: float, clip_norm: float) -> None:
        self.raw_norms.append(float(raw_norm))
        if raw_norm > clip_norm:
            self.clipped_fraction_hits += 1

    @property
    def num_updates(self) -> int:
        return len(self.raw_norms)

    @property
    def clipped_fraction(self) -> float:
        if not self.raw_norms:
            return 0.0
        return self.clipped_fraction_hits / len(self.raw_norms)

    def median_norm(self) -> float:
        if not self.raw_norms:
            return 0.0
        return float(np.median(self.raw_norms))
