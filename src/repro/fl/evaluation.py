"""Evaluation of decentralized training results.

Produces the per-client ROC AUC rows of Tables 3-5: each client evaluates
the model it would actually deploy (its personalized model when the
algorithm produces one, otherwise the shared generalized model) on its own
held-out testing designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.fl.algorithms.base import TrainingResult
from repro.fl.client import FederatedClient


@dataclass
class EvaluationRow:
    """One row of a results table: per-client AUC plus the average."""

    algorithm: str
    per_client_auc: Dict[int, float] = field(default_factory=dict)

    @property
    def average_auc(self) -> float:
        if not self.per_client_auc:
            return float("nan")
        return float(np.mean(list(self.per_client_auc.values())))

    def as_dict(self) -> Dict[str, float]:
        row = {f"client{cid}": auc for cid, auc in sorted(self.per_client_auc.items())}
        row["average"] = self.average_auc
        return row


def evaluate_result(result: TrainingResult, clients: Sequence[FederatedClient]) -> EvaluationRow:
    """Evaluate a training result on every client's private test data."""
    row = EvaluationRow(algorithm=result.algorithm)
    for client in clients:
        state = result.state_for_client(client.client_id)
        row.per_client_auc[client.client_id] = client.evaluate_auc(state)
    return row


def evaluate_cross_client(
    result: TrainingResult, clients: Sequence[FederatedClient]
) -> Dict[int, Dict[int, float]]:
    """Evaluate every per-client model on every client's test data.

    Returns ``{model_owner: {test_client: auc}}``; useful for diagnosing how
    transferable local models are across benchmark suites (the heterogeneity
    the paper describes in Section 3).
    """
    matrix: Dict[int, Dict[int, float]] = {}
    for owner in clients:
        state = result.state_for_client(owner.client_id)
        matrix[owner.client_id] = {
            tester.client_id: tester.evaluate_auc(state) for tester in clients
        }
    return matrix


def local_average_row(
    local_result: TrainingResult, clients: Sequence[FederatedClient], label: str = "local"
) -> EvaluationRow:
    """The "Local Average (b1 to b9)" row: client ``k`` deploys its own ``b_k``."""
    row = evaluate_result(local_result, clients)
    row.algorithm = label
    return row


def rows_to_table(rows: List[EvaluationRow], digits: int = 2) -> List[Dict[str, object]]:
    """Render evaluation rows as printable dictionaries (rounded)."""
    table = []
    for row in rows:
        entry: Dict[str, object] = {"method": row.algorithm}
        for key, value in row.as_dict().items():
            entry[key] = round(float(value), digits)
        table.append(entry)
    return table
