"""Decentralized (federated) training framework.

This subpackage is the paper's primary contribution area: the decentralized
training loop (Figure 1), the FedProx objective (Equation 1), and the five
personalization techniques (Figure 2), together with the local-only and
centralized baselines used as the lower and upper reference points of
Tables 3-5.
"""

from typing import Dict, Type

from repro.fl.algorithms import (
    Centralized,
    DPFedProx,
    FedAvg,
    FedAvgM,
    FedBN,
    FederatedAlgorithm,
    FedProx,
    LocalOnly,
    ModelFactory,
    RoundRecord,
    SeededModelFactory,
    TrainingResult,
    normalization_parameter_names,
)
from repro.fl.client import FederatedClient
from repro.fl.communication import (
    BYTES_PER_FLOAT32,
    CommunicationReport,
    CommunicationTracker,
    CompressionResult,
    compression_error,
    estimate_communication,
    quantize_state,
    state_bytes,
    state_num_parameters,
    topk_sparsify,
)
from repro.fl.config import PAPER_ASSIGNED_CLUSTERS, FLConfig, paper_fl_config, scaled_fl_config
from repro.fl.evaluation import (
    EvaluationRow,
    evaluate_cross_client,
    evaluate_result,
    local_average_row,
    rows_to_table,
)
from repro.fl.parameters import (
    State,
    average_pairwise_distance,
    clone_state,
    filter_state,
    flatten_state,
    interpolate,
    merge_partition,
    state_distance,
    state_norm,
    weighted_average,
    zeros_like_state,
)
from repro.fl.privacy import (
    GaussianAccountant,
    PrivacyConfig,
    PrivateUpdateLog,
    SecureAggregationSession,
    add_gaussian_noise,
    apply_update,
    clip_update,
    privatize_update,
    state_update,
)
from repro.fl.personalization import (
    IFCA,
    AlphaPortionSync,
    AssignedClustering,
    FedProxFineTuning,
    FedProxLG,
)
from repro.fl.server import FederatedServer
from repro.fl.trainer import LocalTrainer, StepStatistics, predict_dataset

#: Registry of every training algorithm, keyed by its configuration name.
ALGORITHMS: Dict[str, Type[FederatedAlgorithm]] = {
    LocalOnly.name: LocalOnly,
    Centralized.name: Centralized,
    FedAvg.name: FedAvg,
    FedProx.name: FedProx,
    FedProxLG.name: FedProxLG,
    IFCA.name: IFCA,
    FedProxFineTuning.name: FedProxFineTuning,
    AssignedClustering.name: AssignedClustering,
    AlphaPortionSync.name: AlphaPortionSync,
    FedAvgM.name: FedAvgM,
    FedBN.name: FedBN,
    DPFedProx.name: DPFedProx,
}


def create_algorithm(
    name: str,
    clients,
    model_factory,
    config: FLConfig,
) -> FederatedAlgorithm:
    """Instantiate a training algorithm from the registry by name."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}")
    return ALGORITHMS[key](clients, model_factory, config)


__all__ = [
    "FLConfig",
    "paper_fl_config",
    "scaled_fl_config",
    "PAPER_ASSIGNED_CLUSTERS",
    "FederatedClient",
    "FederatedServer",
    "LocalTrainer",
    "StepStatistics",
    "predict_dataset",
    "FederatedAlgorithm",
    "TrainingResult",
    "RoundRecord",
    "ModelFactory",
    "SeededModelFactory",
    "LocalOnly",
    "Centralized",
    "FedAvg",
    "FedProx",
    "FedProxLG",
    "IFCA",
    "FedProxFineTuning",
    "AssignedClustering",
    "AlphaPortionSync",
    "FedAvgM",
    "FedBN",
    "normalization_parameter_names",
    "DPFedProx",
    "ALGORITHMS",
    "create_algorithm",
    "PrivacyConfig",
    "GaussianAccountant",
    "PrivateUpdateLog",
    "SecureAggregationSession",
    "privatize_update",
    "state_update",
    "apply_update",
    "clip_update",
    "add_gaussian_noise",
    "BYTES_PER_FLOAT32",
    "state_num_parameters",
    "state_bytes",
    "CommunicationReport",
    "CommunicationTracker",
    "CompressionResult",
    "estimate_communication",
    "topk_sparsify",
    "quantize_state",
    "compression_error",
    "EvaluationRow",
    "evaluate_result",
    "evaluate_cross_client",
    "local_average_row",
    "rows_to_table",
    "State",
    "weighted_average",
    "interpolate",
    "merge_partition",
    "filter_state",
    "clone_state",
    "zeros_like_state",
    "state_distance",
    "state_norm",
    "flatten_state",
    "average_pairwise_distance",
]
