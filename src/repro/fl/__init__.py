"""Decentralized (federated) training framework.

This subpackage is the paper's primary contribution area: the decentralized
training loop (Figure 1), the FedProx objective (Equation 1), and the five
personalization techniques (Figure 2), together with the local-only and
centralized baselines used as the lower and upper reference points of
Tables 3-5.

Overview
--------
The framework separates four concerns:

clients and local computation
    :class:`FederatedClient` owns one client's private data and performs
    local training (:class:`LocalTrainer`); only parameter states and scalar
    loss summaries ever leave a client.
server-side aggregation
    :class:`FederatedServer` implements every aggregation rule used by the
    paper (weighted averaging, per-cluster, per-partition, alpha-portion).
training algorithms
    :data:`ALGORITHMS` maps a configuration name to an algorithm class; see
    the table below for which paper result each one reproduces.  Instantiate
    via :func:`create_algorithm`.
execution
    :mod:`repro.fl.execution` decides where one round's client updates run
    (serial, or fanned out over worker processes) and checkpoints rounds so
    long runs survive interruption.  Backends are bit-identical to each
    other by contract.
scheduling
    :mod:`repro.fl.scheduling` decides *which* clients run each round and
    when their updates land: cohort samplers, availability traces,
    straggler latencies on a deterministic virtual clock, and the round
    policies (synchronous barriers, deadline cutoffs, FedBuff-style
    buffered-asynchronous aggregation).

Algorithm registry
------------------
======================  =====================================================
name                    reproduces
======================  =====================================================
``local``               "Local Average" rows of Tables 3-5 (lower reference)
``centralized``         "Training Centrally on All Data" rows (upper bound)
``fedavg``              FedProx with ``mu = 0`` (McMahan et al., 2017)
``fedprox``             Figure 1 loop with the Equation 1 objective
``fedprox_lg``          local/global partitioning, Figure 2(a)
``ifca``                iterative federated clustering, Figure 2(b)
``assigned_clustering`` prior-knowledge clustering, Figure 2(c)
``fedprox_alpha``       alpha-portion sync, Figure 2(d)
``fedprox_finetune``    FedProx + local fine-tuning, Figure 2(e)
``fedavgm``             server momentum extension (Hsu et al., 2019)
``fedbn``               local normalization layers (Li et al., 2021)
``dp_fedprox``          FedProx with client-level differential privacy
======================  =====================================================
"""

import warnings
from typing import Dict, Optional, Type

from repro.fl.algorithms import (
    Centralized,
    DPFedProx,
    FedAvg,
    FedAvgM,
    FedBN,
    FederatedAlgorithm,
    FedProx,
    LocalOnly,
    ModelFactory,
    RoundRecord,
    SeededModelFactory,
    TrainingResult,
    normalization_parameter_names,
)
from repro.fl.aggregation import (
    AGGREGATION_CHOICES,
    Aggregator,
    GemvAggregator,
    ShardedAggregator,
    StreamingAccumulator,
    StreamingAggregator,
    StreamingDeltaAccumulator,
    UpdateAccumulator,
    create_aggregator,
)
from repro.fl.client import FederatedClient, initial_rng_state
from repro.fl.population import ClientDirectory, ClientHandle, VirtualClientSpec
from repro.fl.communication import (
    BYTES_PER_FLOAT32,
    CommunicationReport,
    CommunicationTracker,
    CompressionResult,
    compression_error,
    estimate_communication,
    quantize_state,
    state_bytes,
    state_num_parameters,
    topk_sparsify,
)
from repro.fl.transport import (
    CODECS,
    COMPRESSION_CHOICES,
    Channel,
    ChannelSummary,
    Codec,
    IdentityCodec,
    Payload,
    QuantizationCodec,
    TopKCodec,
    TransportDecodeError,
    create_channel,
)
from repro.fl.scheduling import (
    AVAILABILITY_CHOICES,
    ROUND_POLICY_CHOICES,
    SAMPLER_CHOICES,
    STRAGGLER_CHOICES,
    AvailabilityModel,
    ClientSampler,
    FullParticipation,
    LatencyModel,
    RoundScheduler,
    SchedulingSummary,
    UniformSampler,
    VirtualClock,
    WeightedSampler,
    create_availability,
    create_latency,
    create_sampler,
    create_scheduler,
)
from repro.fl.config import PAPER_ASSIGNED_CLUSTERS, FLConfig, paper_fl_config, scaled_fl_config
from repro.fl.execution import (
    BACKENDS,
    CheckpointManager,
    ClientTask,
    ClientUpdate,
    ExecutionBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
    RoundCheckpoint,
    SerialBackend,
    create_backend,
    default_worker_count,
)
from repro.fl.faults import (
    ClientExecutionError,
    FaultPlan,
    InjectedFault,
    QuorumFailure,
    ResilienceManager,
    ResilienceSummary,
    RetryPolicy,
    TaskFailure,
    create_resilience,
    resilience_requested,
)
from repro.fl.evaluation import (
    EvaluationRow,
    evaluate_cross_client,
    evaluate_result,
    local_average_row,
    rows_to_table,
)
from repro.fl.parameters import (
    FlatState,
    State,
    StateLayout,
    as_flat_state,
    average_pairwise_distance,
    clone_state,
    filter_state,
    flat_model_state,
    flat_states_disabled,
    flatten_state,
    interpolate,
    merge_partition,
    reference_mode,
    state_distance,
    state_norm,
    state_vector,
    weighted_average,
    zeros_like_state,
)
from repro.fl.privacy import (
    GaussianAccountant,
    PrivacyConfig,
    PrivateUpdateLog,
    SecureAggregationSession,
    add_gaussian_noise,
    apply_update,
    clip_update,
    privatize_update,
    state_update,
)
from repro.fl.personalization import (
    IFCA,
    AlphaPortionSync,
    AssignedClustering,
    FedProxFineTuning,
    FedProxLG,
)
from repro.fl.server import FederatedServer
from repro.fl.trainer import LocalTrainer, StepStatistics, predict_dataset

# Imported after repro.fl.execution so the import side effect can register
# the "wire" backend into BACKENDS.
from repro.fl.net import (
    FederationClientRunner,
    FederationServer as WireFederationServer,
    JoinReport,
    WireBackend,
    WireFaultPlan,
    run_client,
)

#: Registry of every training algorithm, keyed by its configuration name.
ALGORITHMS: Dict[str, Type[FederatedAlgorithm]] = {
    LocalOnly.name: LocalOnly,
    Centralized.name: Centralized,
    FedAvg.name: FedAvg,
    FedProx.name: FedProx,
    FedProxLG.name: FedProxLG,
    IFCA.name: IFCA,
    FedProxFineTuning.name: FedProxFineTuning,
    AssignedClustering.name: AssignedClustering,
    AlphaPortionSync.name: AlphaPortionSync,
    FedAvgM.name: FedAvgM,
    FedBN.name: FedBN,
    DPFedProx.name: DPFedProx,
}


def create_algorithm(
    name: str,
    clients,
    model_factory,
    config: FLConfig,
    backend: Optional[ExecutionBackend] = None,
    checkpoint: Optional[CheckpointManager] = None,
    channel: Optional[Channel] = None,
    scheduler: Optional[RoundScheduler] = None,
    server: Optional[FederatedServer] = None,
    resilience: Optional[ResilienceManager] = None,
) -> FederatedAlgorithm:
    """Instantiate a training algorithm from the registry by name.

    Parameters
    ----------
    name:
        A key of :data:`ALGORITHMS` (case-insensitive).
    clients / model_factory / config:
        Forwarded to the algorithm constructor.
    server:
        Optional :class:`FederatedServer` carrying the aggregation mode
        (gemv / streaming / sharded — see :mod:`repro.fl.aggregation`);
        defaults to a fresh GEMV server.
    backend:
        Execution backend running the per-round client updates; defaults to
        :class:`SerialBackend`.  Pass :class:`ProcessPoolBackend` (or use
        :func:`create_backend`) to parallelize rounds across processes.
    checkpoint:
        Optional :class:`CheckpointManager` enabling per-round
        checkpoint/resume for the global-state algorithms.
    channel:
        Optional transport :class:`Channel` every broadcast and upload of
        the run passes through (wire codec + measured byte accounting).  A
        channel is stateful; use a fresh one per algorithm run.
    scheduler:
        Optional :class:`~repro.fl.scheduling.RoundScheduler` driving
        partial participation, availability, stragglers, and the round
        policy (sync / deadline / fedbuff).  A scheduler is stateful; use a
        fresh one per algorithm run.  Ignored (with a warning) by the
        algorithms that still run their full cohort every round.
    resilience:
        Optional :class:`~repro.fl.faults.ResilienceManager` enabling the
        fault-tolerant runtime (deterministic fault injection, supervised
        retries with backoff, quorum-gated round commits).  Stateful; use a
        fresh one per algorithm run (or build via
        :func:`~repro.fl.faults.create_resilience`).  Ignored (with a
        warning) by the algorithms whose round loops cannot degrade
        gracefully yet.
    """
    key = name.lower()
    if key not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}")
    cls = ALGORITHMS[key]
    if checkpoint is not None and not cls.supports_checkpointing:
        warnings.warn(
            f"algorithm {key!r} does not support per-round checkpointing; "
            "the checkpoint option is ignored (an interrupted run restarts from round 0)",
            stacklevel=2,
        )
        checkpoint = None
    if scheduler is not None and not cls.supports_scheduling:
        warnings.warn(
            f"algorithm {key!r} does not support client scheduling; the scheduling "
            "options are ignored (every client participates in every round)",
            stacklevel=2,
        )
        scheduler = None
    if resilience is not None and not cls.supports_resilience:
        warnings.warn(
            f"algorithm {key!r} does not support fault tolerance; the quorum/fault/"
            "retry options are ignored (a client failure aborts the run)",
            stacklevel=2,
        )
        resilience = None
    return cls(
        clients,
        model_factory,
        config,
        server=server,
        backend=backend,
        checkpoint=checkpoint,
        channel=channel,
        scheduler=scheduler,
        resilience=resilience,
    )


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "ClientTask",
    "ClientUpdate",
    "create_backend",
    "default_worker_count",
    "WireBackend",
    "WireFaultPlan",
    "WireFederationServer",
    "FederationClientRunner",
    "JoinReport",
    "run_client",
    "FaultPlan",
    "RetryPolicy",
    "ResilienceManager",
    "ResilienceSummary",
    "create_resilience",
    "resilience_requested",
    "InjectedFault",
    "TaskFailure",
    "ClientExecutionError",
    "QuorumFailure",
    "CheckpointManager",
    "RoundCheckpoint",
    "FLConfig",
    "paper_fl_config",
    "scaled_fl_config",
    "PAPER_ASSIGNED_CLUSTERS",
    "FederatedClient",
    "FederatedServer",
    "initial_rng_state",
    "ClientDirectory",
    "ClientHandle",
    "VirtualClientSpec",
    "AGGREGATION_CHOICES",
    "Aggregator",
    "UpdateAccumulator",
    "GemvAggregator",
    "StreamingAggregator",
    "StreamingAccumulator",
    "StreamingDeltaAccumulator",
    "ShardedAggregator",
    "create_aggregator",
    "LocalTrainer",
    "StepStatistics",
    "predict_dataset",
    "FederatedAlgorithm",
    "TrainingResult",
    "RoundRecord",
    "ModelFactory",
    "SeededModelFactory",
    "LocalOnly",
    "Centralized",
    "FedAvg",
    "FedProx",
    "FedProxLG",
    "IFCA",
    "FedProxFineTuning",
    "AssignedClustering",
    "AlphaPortionSync",
    "FedAvgM",
    "FedBN",
    "normalization_parameter_names",
    "DPFedProx",
    "ALGORITHMS",
    "create_algorithm",
    "PrivacyConfig",
    "GaussianAccountant",
    "PrivateUpdateLog",
    "SecureAggregationSession",
    "privatize_update",
    "state_update",
    "apply_update",
    "clip_update",
    "add_gaussian_noise",
    "BYTES_PER_FLOAT32",
    "state_num_parameters",
    "state_bytes",
    "CommunicationReport",
    "CommunicationTracker",
    "CompressionResult",
    "estimate_communication",
    "topk_sparsify",
    "quantize_state",
    "compression_error",
    "SAMPLER_CHOICES",
    "AVAILABILITY_CHOICES",
    "STRAGGLER_CHOICES",
    "ROUND_POLICY_CHOICES",
    "ClientSampler",
    "FullParticipation",
    "UniformSampler",
    "WeightedSampler",
    "AvailabilityModel",
    "LatencyModel",
    "VirtualClock",
    "RoundScheduler",
    "SchedulingSummary",
    "create_sampler",
    "create_availability",
    "create_latency",
    "create_scheduler",
    "CODECS",
    "COMPRESSION_CHOICES",
    "Codec",
    "IdentityCodec",
    "QuantizationCodec",
    "TopKCodec",
    "TransportDecodeError",
    "Payload",
    "Channel",
    "ChannelSummary",
    "create_channel",
    "EvaluationRow",
    "evaluate_result",
    "evaluate_cross_client",
    "local_average_row",
    "rows_to_table",
    "State",
    "FlatState",
    "StateLayout",
    "as_flat_state",
    "flat_model_state",
    "flat_states_disabled",
    "reference_mode",
    "state_vector",
    "weighted_average",
    "interpolate",
    "merge_partition",
    "filter_state",
    "clone_state",
    "zeros_like_state",
    "state_distance",
    "state_norm",
    "flatten_state",
    "average_pairwise_distance",
]
