"""Streaming (O(P)) update accumulators and the aggregator registry.

See the package docstring for the summation-order rules.  The accumulators
here are *per-round* objects: an algorithm asks its
:class:`~repro.fl.server.FederatedServer` for a fresh accumulator at the
start of each aggregation, folds every kept update into it (releasing the
update — and, under lazy client virtualization, the client — immediately
after), and reads :meth:`UpdateAccumulator.result` once at the end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.parameters import (
    FlatState,
    State,
    StateLayout,
    state_vector,
    weighted_average,
    wrap_flat,
)

#: Aggregation modes understood by :func:`create_aggregator` (and the CLI).
AGGREGATION_CHOICES = ("gemv", "streaming", "sharded")

#: Streaming accumulators buffer up to this many updates before spilling
#: into the running O(P) form.  While buffered, ``result()`` delegates to
#: ``weighted_average`` and is therefore bit-identical to the GEMV path —
#: which keeps every existing 9-client golden exact under ``streaming``.
DEFAULT_PARITY_LIMIT = 32


def _layout_of(state: State) -> StateLayout:
    """The layout updates are folded in (the first update fixes it)."""
    return state.layout if isinstance(state, FlatState) else StateLayout.from_state(state)


def _check_weight(weight: float) -> float:
    weight = float(weight)
    if weight < 0:
        raise ValueError("weights must be non-negative")
    return weight


class UpdateAccumulator:
    """Interface of every per-round fold target."""

    def fold(self, state: State, weight: float) -> None:
        """Fold one client's state with aggregation weight ``n_k``."""
        raise NotImplementedError

    def result(self) -> State:
        """The weighted average of everything folded so far."""
        raise NotImplementedError

    @property
    def count(self) -> int:
        """Number of updates folded so far."""
        raise NotImplementedError

    @property
    def weight_total(self) -> float:
        """Sum of the folded weights."""
        raise NotImplementedError

    def states(self) -> Optional[List[State]]:
        """The buffered input states, or ``None`` once they are gone.

        Diagnostics that need the individual states (``client_drift``) read
        them from here; a streaming accumulator that has spilled returns
        ``None`` and the diagnostic is skipped — that is the price of O(P)
        memory.
        """
        return None


class GemvAccumulator(UpdateAccumulator):
    """The historical GEMV aggregation behind the fold interface.

    Buffers every (state, weight) pair and runs ``weighted_average`` once at
    :meth:`result` — bit-identical to the pre-streaming server step.
    """

    def __init__(self):
        self._states: List[State] = []
        self._weights: List[float] = []

    def fold(self, state: State, weight: float) -> None:
        self._states.append(state)
        self._weights.append(_check_weight(weight))

    def result(self) -> State:
        return weighted_average(self._states, self._weights)

    @property
    def count(self) -> int:
        return len(self._states)

    @property
    def weight_total(self) -> float:
        return float(sum(self._weights))

    def states(self) -> Optional[List[State]]:
        return list(self._states)


class StreamingAccumulator(UpdateAccumulator):
    """Running weighted-sum / weight accumulators over the flat vector.

    One axpy per folded update; memory is O(P) regardless of how many
    updates arrive.  The first ``parity_limit`` updates are buffered and
    :meth:`result` then delegates to ``weighted_average`` — the exact-parity
    mode that reproduces the GEMV summation order bit for bit at small
    cohort sizes.  The buffer spills into the running form on update
    ``parity_limit + 1``.
    """

    def __init__(self, parity_limit: int = DEFAULT_PARITY_LIMIT):
        if parity_limit < 0:
            raise ValueError(f"parity_limit must be >= 0, got {parity_limit}")
        self.parity_limit = int(parity_limit)
        self._pending: List[Tuple[State, float]] = []
        self._layout: Optional[StateLayout] = None
        self._sum: Optional[np.ndarray] = None
        self._weight_total = 0.0
        self._count = 0

    @property
    def spilled(self) -> bool:
        """Whether the accumulator has left the exact-parity mode."""
        return self._sum is not None

    def fold(self, state: State, weight: float) -> None:
        weight = _check_weight(weight)
        self._count += 1
        self._weight_total += weight
        if self._sum is None and len(self._pending) < self.parity_limit:
            self._pending.append((state, weight))
            return
        self._spill(state)
        self._sum += weight * state_vector(state, self._layout)

    def _spill(self, incoming: State) -> None:
        """Leave parity mode: fold the buffered pairs into the running sum."""
        if self._sum is not None:
            return
        reference = self._pending[0][0] if self._pending else incoming
        self._layout = _layout_of(reference)
        self._sum = np.zeros(self._layout.total_size, dtype=np.float64)
        for state, weight in self._pending:
            self._sum += weight * state_vector(state, self._layout)
        self._pending = []

    def result(self) -> State:
        if self._sum is None:
            # Exact-parity mode: the identical GEMV the gemv path runs.
            return weighted_average(
                [state for state, _ in self._pending],
                [weight for _, weight in self._pending],
            )
        if self._weight_total <= 0:
            raise ValueError("weights must not all be zero")
        return wrap_flat(self._layout, self._sum / self._weight_total)

    @property
    def count(self) -> int:
        return self._count

    @property
    def weight_total(self) -> float:
        return self._weight_total

    def states(self) -> Optional[List[State]]:
        if self._sum is not None:
            return None
        return [state for state, _ in self._pending]

    # -- checkpointing -----------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Snapshot for a bit-identical mid-round resume."""
        return {
            "pending": [(state, weight) for state, weight in self._pending],
            "sum": None if self._sum is None else self._sum.copy(),
            "layout": self._layout,
            "weight_total": self._weight_total,
            "count": self._count,
            "parity_limit": self.parity_limit,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        self.parity_limit = int(state["parity_limit"])
        self._pending = [(s, float(w)) for s, w in state["pending"]]
        stored = state["sum"]
        self._sum = None if stored is None else np.array(stored, dtype=np.float64)
        self._layout = state["layout"]
        self._weight_total = float(state["weight_total"])
        self._count = int(state["count"])


class StreamingDeltaAccumulator:
    """Streaming form of the FedBuff staleness-weighted delta fold.

    FedBuff folds ``global += (w_i / total) * (update_i - dispatch_i)`` over
    the buffered updates, in arrival order, with one special case: an
    all-fresh buffer (every update dispatched from the current model)
    reduces to the synchronous ``weighted_average``.  This accumulator
    reproduces that math exactly while the buffer holds at most
    ``parity_limit`` entries (the parity phase keeps the raw states), and
    spills into a running ``sum(w_i * (update_i - dispatch_i))`` beyond it —
    O(P) memory, agreeing with the exact fold to ~1e-12.

    Unlike the barrier accumulators the total weight is unknown until the
    buffer closes, so the normalization happens in :meth:`result`.
    """

    def __init__(self, parity_limit: int = DEFAULT_PARITY_LIMIT):
        if parity_limit < 0:
            raise ValueError(f"parity_limit must be >= 0, got {parity_limit}")
        self.parity_limit = int(parity_limit)
        self.reset()

    def reset(self) -> None:
        """Start a fresh buffer (called after every aggregation)."""
        self._pending: List[Tuple[State, State, float, bool]] = []
        self._layout: Optional[StateLayout] = None
        self._delta_sum: Optional[np.ndarray] = None
        self._weight_total = 0.0
        self._count = 0

    @property
    def spilled(self) -> bool:
        return self._delta_sum is not None

    @property
    def count(self) -> int:
        return self._count

    def fold(self, update: State, dispatch: State, weight: float, fresh: bool) -> None:
        """Fold one arrived update delta.

        ``fresh`` marks updates dispatched from the current global model
        (staleness zero); an all-fresh parity buffer takes the synchronous
        ``weighted_average`` special case, exactly like the exact fold.
        """
        weight = _check_weight(weight)
        self._count += 1
        self._weight_total += weight
        if self._delta_sum is None and len(self._pending) < self.parity_limit:
            self._pending.append((update, dispatch, weight, fresh))
            return
        self._spill(update)
        self._delta_sum += weight * (
            state_vector(update, self._layout) - state_vector(dispatch, self._layout)
        )

    def _spill(self, incoming: State) -> None:
        if self._delta_sum is not None:
            return
        reference = self._pending[0][0] if self._pending else incoming
        self._layout = _layout_of(reference)
        self._delta_sum = np.zeros(self._layout.total_size, dtype=np.float64)
        for update, dispatch, weight, _ in self._pending:
            self._delta_sum += weight * (
                state_vector(update, self._layout) - state_vector(dispatch, self._layout)
            )
        self._pending = []

    def result(self, global_state: State) -> State:
        """The buffered fold applied to ``global_state``."""
        if self._count == 0:
            return global_state
        if self._weight_total <= 0:
            raise ValueError("weights must not all be zero")
        total = self._weight_total
        if self._delta_sum is None:
            if all(fresh for _, _, _, fresh in self._pending):
                # Every update is fresh: identical to the synchronous
                # sample-weighted average over the buffered clients.
                return weighted_average(
                    [update for update, _, _, _ in self._pending],
                    [weight for _, _, weight, _ in self._pending],
                )
            # The exact per-entry fold, in arrival order — the same
            # elementwise operations as the historical fedbuff loop.
            layout = _layout_of(global_state)
            folded_vector = state_vector(global_state, layout).copy()
            for update, dispatch, weight, _ in self._pending:
                scale = weight / total
                folded_vector += scale * (
                    state_vector(update, layout) - state_vector(dispatch, layout)
                )
            return wrap_flat(layout, folded_vector)
        layout = self._layout
        return wrap_flat(
            layout, state_vector(global_state, layout) + self._delta_sum / total
        )

    # -- checkpointing -----------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Snapshot for a bit-identical mid-buffer resume."""
        return {
            "pending": list(self._pending),
            "delta_sum": None if self._delta_sum is None else self._delta_sum.copy(),
            "layout": self._layout,
            "weight_total": self._weight_total,
            "count": self._count,
            "parity_limit": self.parity_limit,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self.parity_limit = int(state["parity_limit"])
        self._pending = list(state["pending"])
        stored = state["delta_sum"]
        self._delta_sum = None if stored is None else np.array(stored, dtype=np.float64)
        self._layout = state["layout"]
        self._weight_total = float(state["weight_total"])
        self._count = int(state["count"])


class Aggregator:
    """Factory of per-round accumulators (one aggregation mode)."""

    #: Registry / CLI name, overridden by subclasses.
    name: str = "base"

    #: Whether round loops should fold-and-release updates one at a time
    #: (and release lazily materialized clients after each fold).
    streaming: bool = False

    def accumulator(self) -> UpdateAccumulator:
        """A fresh accumulator for one aggregation."""
        raise NotImplementedError

    def delta_accumulator(self) -> StreamingDeltaAccumulator:
        """A fresh FedBuff delta accumulator (streaming modes only)."""
        raise NotImplementedError(
            f"aggregation mode {self.name!r} has no streaming delta accumulator"
        )

    def aggregate(self, states: Sequence[State], weights: Sequence[float]) -> State:
        """One-shot aggregation (fold everything, read the result)."""
        states = list(states)
        weights = [float(weight) for weight in weights]
        if len(states) != len(weights):
            raise ValueError(f"got {len(states)} states but {len(weights)} weights")
        accumulator = self.accumulator()
        for state, weight in zip(states, weights):
            accumulator.fold(state, weight)
        return accumulator.result()

    def describe(self) -> str:
        """Stable fingerprint component of this aggregation mode."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


class GemvAggregator(Aggregator):
    """The historical (K, P) GEMV aggregation — the default mode."""

    name = "gemv"
    streaming = False

    def accumulator(self) -> GemvAccumulator:
        return GemvAccumulator()

    def aggregate(self, states: Sequence[State], weights: Sequence[float]) -> State:
        # The one-shot path skips the fold loop entirely so the default
        # server step stays byte-for-byte the pre-aggregation-tier code.
        return weighted_average(states, weights)


class StreamingAggregator(Aggregator):
    """O(P) streaming aggregation with the exact-parity small-cohort mode."""

    name = "streaming"
    streaming = True

    def __init__(self, parity_limit: int = DEFAULT_PARITY_LIMIT):
        if parity_limit < 0:
            raise ValueError(f"parity_limit must be >= 0, got {parity_limit}")
        self.parity_limit = int(parity_limit)

    def accumulator(self) -> StreamingAccumulator:
        return StreamingAccumulator(parity_limit=self.parity_limit)

    def delta_accumulator(self) -> StreamingDeltaAccumulator:
        return StreamingDeltaAccumulator(parity_limit=self.parity_limit)

    def describe(self) -> str:
        return f"{self.name}(parity_limit={self.parity_limit})"


def create_aggregator(name: Optional[str] = None, shards: int = 4, parity_limit: int = DEFAULT_PARITY_LIMIT):
    """Instantiate an aggregation mode by name (``None`` means ``gemv``)."""
    from repro.fl.aggregation.sharded import ShardedAggregator

    if name is None:
        return GemvAggregator()
    key = name.lower()
    if key == "gemv":
        return GemvAggregator()
    if key == "streaming":
        return StreamingAggregator(parity_limit=parity_limit)
    if key == "sharded":
        return ShardedAggregator(shards=shards, parity_limit=parity_limit)
    raise ValueError(
        f"unknown aggregation mode {name!r}; available: {AGGREGATION_CHOICES}"
    )
