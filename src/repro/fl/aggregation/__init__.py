"""Population-scale server aggregation.

The default server aggregation (:func:`repro.fl.parameters.weighted_average`)
materializes one (K, P) work matrix per round — fine for the paper's 9
clients, impossible for cross-device populations where K reaches 1e5.  This
package provides the O(P) alternatives:

:class:`StreamingAggregator`
    Folds each arriving update into running weighted-sum / weight
    accumulators (one axpy per update); server memory is O(P), independent
    of the cohort size.  Small cohorts take an **exact-parity** path that
    reproduces the GEMV summation order bit for bit (see
    :data:`DEFAULT_PARITY_LIMIT`).

:class:`ShardedAggregator`
    Partitions the cohort round-robin into sub-aggregators that are reduced
    in parallel (threads; NumPy releases the GIL inside the axpy kernels)
    before a deterministic ascending-shard final fold.

:class:`GemvAggregator`
    The historical (K, P) GEMV, wrapped in the same accumulator interface so
    every algorithm round loop folds updates one at a time regardless of
    mode — ``gemv`` simply buffers them.

Summation-order rules
---------------------
``weighted_average`` normalizes weights first and computes
``(w / total) @ matrix`` — a normalize-then-sum order.  The streaming
accumulators compute ``sum(w_k * v_k) / total`` — sum-then-normalize — which
differs in the last few ulps.  While an accumulator holds at most
``parity_limit`` updates it therefore *buffers* them and delegates to
``weighted_average`` on :meth:`~UpdateAccumulator.result`, reproducing the
GEMV bitwise; beyond the limit it spills into the O(P) running form and
agrees with the GEMV to ~1e-12 relative error (property-tested).
"""

from repro.fl.aggregation.sharded import ShardedAccumulator, ShardedAggregator
from repro.fl.aggregation.streaming import (
    AGGREGATION_CHOICES,
    DEFAULT_PARITY_LIMIT,
    Aggregator,
    GemvAccumulator,
    GemvAggregator,
    StreamingAccumulator,
    StreamingAggregator,
    StreamingDeltaAccumulator,
    UpdateAccumulator,
    create_aggregator,
)

__all__ = [
    "AGGREGATION_CHOICES",
    "DEFAULT_PARITY_LIMIT",
    "Aggregator",
    "GemvAccumulator",
    "GemvAggregator",
    "ShardedAccumulator",
    "ShardedAggregator",
    "StreamingAccumulator",
    "StreamingAggregator",
    "StreamingDeltaAccumulator",
    "UpdateAccumulator",
    "create_aggregator",
]
